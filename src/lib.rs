//! Umbrella crate for the MAPG reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so that the repository's
//! root-level `examples/` and `tests/` can exercise the full public API the
//! way a downstream user would:
//!
//! ```
//! use mapg_repro::prelude::*;
//!
//! let profile = WorkloadProfile::mem_bound("demo");
//! let config = SimConfig::default().with_profile(profile);
//! let report = Simulation::new(config, PolicyKind::Mapg).run();
//! assert!(report.total_cycles() > 0);
//! ```
//!
//! See the individual crates for the real documentation:
//! - [`mapg`] — the paper's contribution (policies, controller, simulation)
//! - [`mapg_cpu`] / [`mapg_mem`] — the architectural substrate
//! - [`mapg_power`] — technology, power-gating circuit and energy models
//! - [`mapg_trace`] — synthetic workload generation
//! - [`mapg_units`] — strongly-typed physical quantities

pub use mapg;
pub use mapg_cpu;
pub use mapg_mem;
pub use mapg_power;
pub use mapg_trace;
pub use mapg_units;

/// Convenience prelude with the names used by virtually every program built
/// on this workspace.
pub mod prelude {
    pub use mapg::{GatingPolicy, PolicyKind, RunReport, SimConfig, Simulation, SuiteRunner};
    pub use mapg_power::{PgCircuitDesign, TechnologyParams};
    pub use mapg_trace::{WorkloadProfile, WorkloadSuite};
    pub use mapg_units::{Cycles, Joules, Watts};
}
