//! Integration tests for the observability determinism contract: traces
//! and metrics captured through the parallel suite runner are
//! byte-identical to the serial reference, and trace-derived gated
//! cycles reconcile exactly with the run reports.

#![deny(unused)]

use mapg::{FaultPlan, PolicyKind, SimConfig, Simulation, SuiteRunner};
use mapg_trace::WorkloadSuite;

fn observed_base() -> SimConfig {
    SimConfig::default()
        .with_instructions(20_000)
        .with_trace()
        .with_metrics()
        .with_fault_plan(FaultPlan::moderate())
        .with_tokens(2)
        .with_safe_mode_default()
}

#[test]
fn suite_traces_are_byte_identical_across_job_counts() {
    let policies = [PolicyKind::Mapg, PolicyKind::NaiveOnMiss];
    let serial = SuiteRunner::new(WorkloadSuite::extremes(), observed_base())
        .with_jobs(1)
        .run(&policies);
    let parallel = SuiteRunner::new(WorkloadSuite::extremes(), observed_base())
        .with_jobs(4)
        .run(&policies);
    assert_eq!(serial.reports().len(), parallel.reports().len());
    for (a, b) in serial.reports().iter().zip(parallel.reports()) {
        let ta = a.trace.as_ref().expect("trace requested").to_chrome_trace();
        let tb = b.trace.as_ref().expect("trace requested").to_chrome_trace();
        assert_eq!(
            ta.as_bytes(),
            tb.as_bytes(),
            "[{} / {}] trace diverged between --jobs 1 and --jobs 4",
            a.workload,
            a.policy
        );
        assert_eq!(a.metrics, b.metrics, "[{} / {}]", a.workload, a.policy);
    }
}

#[test]
fn suite_traces_reconcile_with_their_reports() {
    let matrix = SuiteRunner::new(WorkloadSuite::extremes(), observed_base())
        .with_jobs(4)
        .run(&[PolicyKind::Mapg]);
    for report in matrix.reports() {
        let trace = report.trace.as_ref().expect("trace requested");
        assert_eq!(trace.dropped(), 0, "ring wrapped at this scale");
        let traced: u64 = trace.gated_cycles_per_core().values().sum();
        assert_eq!(
            traced, report.gating.gated_cycles,
            "[{}] trace does not reconcile with the gating ledger",
            report.workload
        );
    }
}

#[test]
fn disabled_observability_produces_no_artifacts() {
    let config = SimConfig::default().with_instructions(20_000);
    let report = Simulation::new(config, PolicyKind::Mapg).run();
    assert!(report.trace.is_none());
    assert!(report.metrics.is_none());
}

#[test]
fn observation_does_not_perturb_the_simulation() {
    let plain = Simulation::new(
        SimConfig::default()
            .with_instructions(20_000)
            .with_fault_plan(FaultPlan::moderate())
            .with_safe_mode_default(),
        PolicyKind::Mapg,
    )
    .run();
    let observed = Simulation::new(
        SimConfig::default()
            .with_instructions(20_000)
            .with_fault_plan(FaultPlan::moderate())
            .with_safe_mode_default()
            .with_trace()
            .with_metrics(),
        PolicyKind::Mapg,
    )
    .run();
    assert_eq!(plain.makespan_cycles, observed.makespan_cycles);
    assert_eq!(plain.gating, observed.gating);
    assert_eq!(plain.energy, observed.energy);
    assert_eq!(plain.faults, observed.faults);
}
