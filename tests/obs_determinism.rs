//! Integration tests for the observability determinism contract: traces
//! and metrics captured through the parallel suite runner are
//! byte-identical to the serial reference, and trace-derived gated
//! cycles reconcile exactly with the run reports.

#![deny(unused)]

use mapg::{FaultPlan, PolicyKind, SimConfig, Simulation, SuiteRunner};
use mapg_trace::WorkloadSuite;

fn observed_base() -> SimConfig {
    SimConfig::default()
        .with_instructions(20_000)
        .with_trace()
        .with_metrics()
        .with_fault_plan(FaultPlan::moderate())
        .with_tokens(2)
        .with_safe_mode_default()
}

#[test]
fn suite_traces_are_byte_identical_across_job_counts() {
    let policies = [PolicyKind::Mapg, PolicyKind::NaiveOnMiss];
    let serial = SuiteRunner::new(WorkloadSuite::extremes(), observed_base())
        .with_jobs(1)
        .run(&policies);
    let parallel = SuiteRunner::new(WorkloadSuite::extremes(), observed_base())
        .with_jobs(4)
        .run(&policies);
    assert_eq!(serial.reports().len(), parallel.reports().len());
    for (a, b) in serial.reports().iter().zip(parallel.reports()) {
        let ta = a.trace.as_ref().expect("trace requested").to_chrome_trace();
        let tb = b.trace.as_ref().expect("trace requested").to_chrome_trace();
        assert_eq!(
            ta.as_bytes(),
            tb.as_bytes(),
            "[{} / {}] trace diverged between --jobs 1 and --jobs 4",
            a.workload,
            a.policy
        );
        assert_eq!(a.metrics, b.metrics, "[{} / {}]", a.workload, a.policy);
    }
}

#[test]
fn suite_traces_reconcile_with_their_reports() {
    let matrix = SuiteRunner::new(WorkloadSuite::extremes(), observed_base())
        .with_jobs(4)
        .run(&[PolicyKind::Mapg]);
    for report in matrix.reports() {
        let trace = report.trace.as_ref().expect("trace requested");
        assert_eq!(trace.dropped(), 0, "ring wrapped at this scale");
        let traced: u64 = trace.gated_cycles_per_core().values().sum();
        assert_eq!(
            traced, report.gating.gated_cycles,
            "[{}] trace does not reconcile with the gating ledger",
            report.workload
        );
    }
}

/// Shards are an execution-strategy knob: every one of the 20 experiment
/// registry entries must render byte-identical CSV at shard counts
/// {1, 3, 8}. This is the no-golden-re-bless contract — `--shards` can
/// never force a re-bless of `tests/goldens/`, because the shard count
/// is not allowed to reach any reported number.
#[test]
fn experiment_csvs_are_byte_identical_across_shard_counts() {
    let render = |shards: usize| -> Vec<(String, String)> {
        mapg::with_ambient_shards(shards, || {
            mapg_bench::experiments::all()
                .into_iter()
                .map(|experiment| {
                    let csv: String = (experiment.run)(mapg_bench::Scale::Smoke)
                        .iter()
                        .map(mapg_bench::Table::to_csv)
                        .collect();
                    (experiment.id.to_owned(), csv)
                })
                .collect()
        })
    };
    let baseline = render(1);
    assert_eq!(baseline.len(), 20, "experiment registry changed size");
    for shards in [3usize, 8] {
        let sharded = render(shards);
        for ((id, csv), (other_id, other_csv)) in baseline.iter().zip(&sharded) {
            assert_eq!(id, other_id);
            assert_eq!(
                csv.as_bytes(),
                other_csv.as_bytes(),
                "[{id}] CSV diverged between shards=1 and shards={shards}"
            );
        }
    }
}

/// Traces and metrics captured through the suite runner are likewise
/// byte-identical at any shard count.
#[test]
fn suite_traces_are_byte_identical_across_shard_counts() {
    let policies = [PolicyKind::Mapg, PolicyKind::NaiveOnMiss];
    let run = |shards: usize| {
        SuiteRunner::new(
            WorkloadSuite::extremes(),
            observed_base().with_shards(shards),
        )
        .with_jobs(2)
        .run(&policies)
    };
    let baseline = run(1);
    for shards in [3usize, 8] {
        let sharded = run(shards);
        assert_eq!(baseline.reports().len(), sharded.reports().len());
        for (a, b) in baseline.reports().iter().zip(sharded.reports()) {
            let ta = a.trace.as_ref().expect("trace requested").to_chrome_trace();
            let tb = b.trace.as_ref().expect("trace requested").to_chrome_trace();
            assert_eq!(
                ta.as_bytes(),
                tb.as_bytes(),
                "[{} / {}] trace diverged between shards=1 and shards={shards}",
                a.workload,
                a.policy
            );
            assert_eq!(a.metrics, b.metrics, "[{} / {}]", a.workload, a.policy);
            assert_eq!(a.gating, b.gating, "[{} / {}]", a.workload, a.policy);
        }
    }
}

/// The substrate-level guarantee behind the two tests above: on a
/// multi-channel topology with observability on, the sharded engine's
/// stats, trace, and metrics are bit-identical to the global wheel's at
/// every shard count worth distinguishing.
#[test]
fn sharded_substrate_crosschecks_cleanly_with_observability() {
    for shards in [1usize, 3, 8] {
        let config = SimConfig::default()
            .with_instructions(20_000)
            .with_cores(6)
            .with_channels(3)
            .with_shards(shards)
            .with_trace()
            .with_metrics()
            .with_fault_plan(FaultPlan::moderate());
        match config.crosscheck_sharded() {
            Ok(None) => {}
            Ok(Some(detail)) => panic!("shards={shards}: {detail}"),
            Err(error) => panic!("shards={shards}: {error}"),
        }
    }
}

#[test]
fn disabled_observability_produces_no_artifacts() {
    let config = SimConfig::default().with_instructions(20_000);
    let report = Simulation::new(config, PolicyKind::Mapg).run();
    assert!(report.trace.is_none());
    assert!(report.metrics.is_none());
}

#[test]
fn observation_does_not_perturb_the_simulation() {
    let plain = Simulation::new(
        SimConfig::default()
            .with_instructions(20_000)
            .with_fault_plan(FaultPlan::moderate())
            .with_safe_mode_default(),
        PolicyKind::Mapg,
    )
    .run();
    let observed = Simulation::new(
        SimConfig::default()
            .with_instructions(20_000)
            .with_fault_plan(FaultPlan::moderate())
            .with_safe_mode_default()
            .with_trace()
            .with_metrics(),
        PolicyKind::Mapg,
    )
    .run();
    assert_eq!(plain.makespan_cycles, observed.makespan_cycles);
    assert_eq!(plain.gating, observed.gating);
    assert_eq!(plain.energy, observed.energy);
    assert_eq!(plain.faults, observed.faults);
}
