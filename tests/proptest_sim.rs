//! Property-based tests over the full simulation stack: for *any* valid
//! workload/configuration point, the core invariants of the report must
//! hold.

#![deny(unused)]

use proptest::prelude::*;

use mapg::{PolicyKind, SimConfig, Simulation};
use mapg_trace::{Phase, PhaseSchedule, WorkloadProfile};

/// Strategy over valid workload profiles.
fn profiles() -> impl Strategy<Value = WorkloadProfile> {
    (
        10.0f64..400.0, // mem refs per kilo-instruction
        18u32..28,      // log2 working set (256 KiB .. 128 MiB)
        0.0f64..0.99,   // spatial locality
        1u32..12,       // hot regions
        0.0f64..0.8,    // pointer-chase fraction
        0.0f64..0.6,    // write fraction
        0.5f64..4.0,    // compute IPC
        0usize..3,      // phase schedule selector
    )
        .prop_map(|(rate, ws_log2, loc, regions, chase, wr, ipc, phase_sel)| {
            let phases = match phase_sel {
                0 => PhaseSchedule::mostly_memory(),
                1 => PhaseSchedule::alternating(),
                _ => PhaseSchedule::stationary(Phase::Balanced),
            };
            WorkloadProfile::builder("prop")
                .mem_refs_per_kilo_inst(rate)
                .working_set_bytes(1u64 << ws_log2)
                .spatial_locality(loc)
                .hot_regions(regions)
                .pointer_chase_fraction(chase)
                .write_fraction(wr)
                .compute_ipc(ipc)
                .phases(phases)
                .build()
        })
}

fn policies() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::NoGating),
        Just(PolicyKind::ClockGating),
        Just(PolicyKind::DvfsStall),
        Just(PolicyKind::NaiveOnMiss),
        Just(PolicyKind::Timeout { idle_cycles: 80 }),
        Just(PolicyKind::Mapg),
        Just(PolicyKind::MapgOracle),
        Just(PolicyKind::MapgAlwaysGate),
        Just(PolicyKind::MapgNoEarlyWake),
    ]
}

proptest! {
    // Each case is a full simulation; keep the budget sane.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn report_invariants_hold_for_any_workload_and_policy(
        profile in profiles(),
        policy in policies(),
        seed in 0u64..1_000,
    ) {
        let config = SimConfig::default()
            .with_profile(profile)
            .with_instructions(20_000)
            .with_seed(seed);
        let report = Simulation::new(config, policy).run();

        // Work conservation.
        prop_assert!(report.instructions >= 20_000);
        prop_assert!(report.makespan_cycles > 0);

        // Stall accounting.
        let core = &report.core_stats[0];
        prop_assert!(core.stall_cycles <= core.total_cycles);
        prop_assert_eq!(
            core.active_cycles() + core.stall_cycles,
            core.total_cycles
        );
        prop_assert!(report.gating.gated <= report.gating.stalls);
        prop_assert_eq!(core.stall_durations.count(), core.stall_count);

        // Energy sanity: strictly positive, and the ledger partitions.
        prop_assert!(report.total_energy().as_joules() > 0.0);
        prop_assert!(report.core_energy() <= report.total_energy());
        prop_assert!(report.leakage_energy() <= report.core_energy());

        // Gated time can never exceed stalled time.
        prop_assert!(
            report.gating.gated_cycles <= core.stall_cycles,
            "gated {} > stalled {}",
            report.gating.gated_cycles,
            core.stall_cycles
        );
    }

    #[test]
    fn determinism_for_any_configuration(
        profile in profiles(),
        policy in policies(),
        seed in 0u64..1_000,
    ) {
        let config = SimConfig::default()
            .with_profile(profile)
            .with_instructions(10_000)
            .with_seed(seed);
        let a = Simulation::new(config.clone(), policy).run();
        let b = Simulation::new(config, policy).run();
        prop_assert_eq!(a.makespan_cycles, b.makespan_cycles);
        prop_assert_eq!(a.total_energy(), b.total_energy());
        prop_assert_eq!(a.gating, b.gating);
    }

    #[test]
    fn gating_never_reorders_the_instruction_stream(
        profile in profiles(),
        seed in 0u64..1_000,
    ) {
        // Gating may slow a run down but must retire exactly the same
        // instruction count as the ungated run for the same target.
        let config = SimConfig::default()
            .with_profile(profile)
            .with_instructions(10_000)
            .with_seed(seed);
        let ungated =
            Simulation::new(config.clone(), PolicyKind::NoGating).run();
        let gated = Simulation::new(config, PolicyKind::Mapg).run();
        prop_assert_eq!(ungated.instructions, gated.instructions);
        prop_assert!(gated.makespan_cycles >= ungated.makespan_cycles);
    }
}
