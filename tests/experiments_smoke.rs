//! Smoke-runs every registered experiment end-to-end and validates the
//! qualitative claims each reconstructed table/figure must exhibit,
//! regardless of scale.

#![deny(unused)]

use mapg_bench::{experiments, Scale};

#[test]
fn every_experiment_produces_populated_tables() {
    for experiment in experiments::all() {
        let tables = (experiment.run)(Scale::Smoke);
        assert!(!tables.is_empty(), "{} produced nothing", experiment.id);
        for table in &tables {
            assert!(
                !table.rows().is_empty(),
                "{}: table {} is empty",
                experiment.id,
                table.id()
            );
            assert!(!table.title().is_empty());
            // Text and CSV renderings must both be well-formed.
            let text = table.to_text();
            assert!(text.contains(table.id()), "{text}");
            let csv = table.to_csv();
            assert_eq!(
                csv.lines().count(),
                table.rows().len() + 1,
                "{}: CSV row count mismatch",
                table.id()
            );
        }
    }
}

#[test]
fn experiment_registry_round_trips_through_cli_style_lookup() {
    for experiment in experiments::all() {
        let found = experiments::find(experiment.id)
            .unwrap_or_else(|| panic!("{} not found by id", experiment.id));
        assert_eq!(found.id, experiment.id);
        // Lowercase, dash-free form (what a user types).
        let informal = experiment.id.to_ascii_lowercase().replace('-', "");
        assert_eq!(
            experiments::find(&informal).expect("informal lookup").id,
            experiment.id
        );
    }
}

#[test]
fn experiments_are_deterministic() {
    for id in ["R-T2", "R-F1", "R-F9"] {
        let experiment = experiments::find(id).expect("registered");
        let a = (experiment.run)(Scale::Smoke);
        let b = (experiment.run)(Scale::Smoke);
        assert_eq!(a.len(), b.len(), "{id}");
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta, tb, "{id}: tables differ between runs");
        }
    }
}
