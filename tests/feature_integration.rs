//! Integration tests for the extension features, driven end-to-end
//! through the public API the way a downstream user would: timelines +
//! VCD, retention styles, nap chaining, workload mixes, recorded traces,
//! replication, idle injection, prefetching, and substrate design-space
//! options.

#![deny(unused)]

use mapg::{PolicyKind, Replication, SimConfig, Simulation};
use mapg_cpu::{Core, CoreConfig, CoreId, PassiveHandler};
use mapg_mem::{DramConfig, HierarchyConfig, MemoryHierarchy, PagePolicy, ReplacementPolicy};
use mapg_power::RetentionStyle;
use mapg_trace::{IdleInjection, RecordedTrace, SyntheticWorkload, WorkloadProfile};

fn quick() -> SimConfig {
    SimConfig::default().with_instructions(60_000)
}

#[test]
fn timeline_round_trips_to_vcd_through_the_public_api() {
    let report = Simulation::new(quick().with_cores(2).with_timeline(), PolicyKind::Mapg).run();
    let timeline = report.timeline.as_ref().expect("recording was enabled");
    assert!(!timeline.is_empty());
    assert_eq!(timeline.cores(), 2);

    // Gated cycles from the timeline must agree with the gating stats.
    let from_timeline: u64 = (0..timeline.cores())
        .map(|c| timeline.sleeping_cycles(CoreId(c)))
        .sum();
    assert_eq!(from_timeline, report.gating.gated_cycles);

    let mut vcd = Vec::new();
    timeline.to_vcd(&mut vcd).expect("in-memory write");
    let text = String::from_utf8(vcd).expect("vcd is ascii");
    assert!(text.contains("core0_pg_state"));
    assert!(text.contains("core1_pg_state"));
    assert!(text.lines().filter(|l| l.starts_with('#')).count() > 10);
}

#[test]
fn timeline_is_absent_unless_requested() {
    let report = Simulation::new(quick(), PolicyKind::Mapg).run();
    assert!(report.timeline.is_none());
}

#[test]
fn retention_style_trades_energy_for_runtime_end_to_end() {
    let baseline = Simulation::new(quick(), PolicyKind::NoGating).run();
    let retentive = Simulation::new(
        quick().with_retention(RetentionStyle::Retentive),
        PolicyKind::Mapg,
    )
    .run();
    let flushing = Simulation::new(
        quick().with_retention(RetentionStyle::NonRetentive),
        PolicyKind::Mapg,
    )
    .run();
    assert!(
        flushing.perf_overhead_vs(&baseline) > retentive.perf_overhead_vs(&baseline),
        "cold starts must cost runtime"
    );
}

#[test]
fn nap_chaining_recovers_underpredicted_stalls() {
    // Idle-heavy workload: the predictor's seed estimate wakes the core
    // hundreds of thousands of cycles early; nap chaining must recover.
    let profile = WorkloadProfile::builder("nap")
        .mem_refs_per_kilo_inst(30.0)
        .idle_injection(IdleInjection::new(5_000, 200_000))
        .build();
    let config = quick().with_profile(profile);
    let with_naps = Simulation::new(config.clone(), PolicyKind::Mapg).run();
    let without = Simulation::new(config.without_regate(), PolicyKind::Mapg).run();
    assert!(with_naps.gating.regates > 0, "naps must fire");
    assert_eq!(without.gating.regates, 0);
    assert!(
        with_naps.core_energy() < without.core_energy(),
        "re-gating must recover tail leakage"
    );
}

#[test]
fn recorded_trace_drives_the_core_identically_to_the_live_source() {
    let profile = WorkloadProfile::mixed("record_integration");
    let mut live_source = SyntheticWorkload::new(&profile, 321);
    let trace = RecordedTrace::record(&mut live_source, 40_000);

    let run_live = || {
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut core = Core::new(
            CoreConfig::baseline(),
            SyntheticWorkload::new(&profile, 321),
        );
        core.run(trace.instructions(), &mut memory, &mut PassiveHandler);
        core.stats().total_cycles
    };
    let run_replay = || {
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut core = Core::new(CoreConfig::baseline(), trace.replay());
        core.run(trace.instructions(), &mut memory, &mut PassiveHandler);
        core.stats().total_cycles
    };
    assert_eq!(run_live(), run_replay(), "replay must match the live run");
}

#[test]
fn replication_separates_policy_effect_from_seed_noise() {
    let config = quick().with_instructions(25_000);
    let baseline = Replication::run(config.clone(), PolicyKind::NoGating, 5);
    let mapg = Replication::run(config, PolicyKind::Mapg, 5);
    let savings = mapg.summarize_paired(&baseline, |m, b| m.core_energy_savings_vs(b));
    assert!(savings.min > 0.0, "MAPG wins on every seed");
    assert!(
        savings.ci95_halfwidth() < savings.mean,
        "the effect must dominate its confidence interval"
    );
}

#[test]
fn idle_injection_flows_through_the_full_simulation() {
    let profile = WorkloadProfile::builder("interactive_int")
        .mem_refs_per_kilo_inst(40.0)
        .idle_injection(IdleInjection::new(10_000, 150_000))
        .build();
    let report = Simulation::new(
        quick().with_profile(profile),
        PolicyKind::Timeout { idle_cycles: 200 },
    )
    .run();
    let idles: u64 = report.core_stats.iter().map(|c| c.idle_periods).sum();
    assert!(idles > 0, "injection must reach the core");
    let idle_cycles: u64 = report.core_stats.iter().map(|c| c.idle_stall_cycles).sum();
    assert!(idle_cycles >= idles * 150_000);
    // Timeout gating must harvest those long idles.
    assert!(report.gating.gated > 0);
}

#[test]
fn substrate_design_space_options_compose() {
    // Closed-page DRAM + FIFO LLC + stream prefetcher, all at once,
    // through the simulation facade.
    let memory = HierarchyConfig {
        dram: DramConfig::ddr3_1333().with_page_policy(PagePolicy::Closed),
        l2: mapg_mem::CacheConfig::l2().with_replacement(ReplacementPolicy::Fifo),
        ..HierarchyConfig::with_stream_prefetcher()
    };
    let report = Simulation::new(quick().with_memory(memory), PolicyKind::Mapg).run();
    assert!(report.instructions >= 60_000);
    assert!(report.total_energy().as_joules() > 0.0);
    // Closed-page policy means no row-buffer hits at all.
    assert_eq!(report.memory.dram.row_hits, 0);
}

#[test]
fn workload_mix_reports_are_stable_and_deterministic() {
    let run = || {
        Simulation::new(
            quick().with_workload_mix(vec![
                WorkloadProfile::mem_bound("a"),
                WorkloadProfile::mixed("b"),
                WorkloadProfile::compute_bound("c"),
            ]),
            PolicyKind::Mapg,
        )
        .run()
    };
    let first = run();
    let second = run();
    assert_eq!(first.makespan_cycles, second.makespan_cycles);
    assert_eq!(first.workload, "mix[a+b+c]");
    assert_eq!(first.core_stats.len(), 3);
}
