//! Cross-crate integration tests: the full pipeline from workload profile
//! to run report, exercised the way a downstream user would.

#![deny(unused)]

use mapg::{PolicyKind, PredictorKind, SimConfig, Simulation};
use mapg_repro::prelude::*;

fn quick(profile: WorkloadProfile) -> SimConfig {
    SimConfig::default()
        .with_profile(profile)
        .with_instructions(100_000)
}

#[test]
fn full_stack_is_deterministic_across_processes_worth_of_state() {
    // Two complete, independent pipelines must agree bit-for-bit on every
    // reported metric.
    let run = || {
        Simulation::new(
            quick(WorkloadProfile::mem_bound("det")).with_seed(1234),
            PolicyKind::Mapg,
        )
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan_cycles, b.makespan_cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.gating, b.gating);
    assert_eq!(a.total_energy(), b.total_energy());
    assert_eq!(a.memory.l1.accesses, b.memory.l1.accesses);
    assert_eq!(a.memory.dram.accesses(), b.memory.dram.accesses());
}

#[test]
fn policy_ordering_invariants_hold_on_memory_bound() {
    let config = quick(WorkloadProfile::mem_bound("ordering"));
    let baseline = Simulation::new(config.clone(), PolicyKind::NoGating).run();
    let clock = Simulation::new(config.clone(), PolicyKind::ClockGating).run();
    let mapg = Simulation::new(config.clone(), PolicyKind::Mapg).run();
    let oracle = Simulation::new(config, PolicyKind::MapgOracle).run();

    // Energy: oracle <= mapg < clock-gating < no-gating.
    assert!(oracle.core_energy() <= mapg.core_energy() * 1.01);
    assert!(mapg.core_energy() < clock.core_energy());
    assert!(clock.core_energy() < baseline.core_energy());

    // Runtime: the zero-latency policies change nothing; the oracle adds
    // nothing; predictive MAPG adds a small bounded overhead.
    assert_eq!(clock.makespan_cycles, baseline.makespan_cycles);
    assert_eq!(oracle.makespan_cycles, baseline.makespan_cycles);
    assert!(mapg.perf_overhead_vs(&baseline) < 0.05);
}

#[test]
fn gating_leaves_compute_bound_workloads_almost_untouched() {
    let config = quick(WorkloadProfile::compute_bound("calm"));
    let baseline = Simulation::new(config.clone(), PolicyKind::NoGating).run();
    let mapg = Simulation::new(config, PolicyKind::Mapg).run();
    assert!(mapg.perf_overhead_vs(&baseline).abs() < 0.01);
    // Nothing to harvest, but nothing lost either (clock-gated stalls may
    // even save a little).
    assert!(mapg.core_energy() <= baseline.core_energy() * 1.01);
}

#[test]
fn every_policy_kind_produces_a_coherent_report() {
    let mut kinds = vec![
        PolicyKind::MapgAlwaysGate,
        PolicyKind::MapgNoEarlyWake,
        PolicyKind::Timeout { idle_cycles: 50 },
    ];
    kinds.extend(PolicyKind::COMPARISON_SET);
    kinds.extend(
        PredictorKind::ALL
            .into_iter()
            .map(|predictor| PolicyKind::MapgWith { predictor }),
    );
    for kind in kinds {
        let report = Simulation::new(quick(WorkloadProfile::mixed("coherent")), kind).run();
        assert_eq!(report.policy, kind.name());
        assert!(report.instructions >= 100_000, "{}", kind.name());
        assert!(report.total_energy().as_joules() > 0.0, "{}", kind.name());
        assert!(
            report.gating.gated <= report.gating.stalls,
            "{}",
            kind.name()
        );
        assert!(
            report.gating.penalty_cycles <= report.core_stats[0].penalty_cycles,
            "{}: controller penalty exceeds core-observed penalty",
            kind.name()
        );
    }
}

#[test]
fn suite_runner_matches_individual_runs() {
    let suite = WorkloadSuite::extremes();
    let base = SimConfig::default().with_instructions(50_000);
    let matrix = SuiteRunner::new(suite.clone(), base.clone()).run(&[PolicyKind::Mapg]);
    for profile in suite.iter() {
        let solo =
            Simulation::new(base.clone().with_profile(profile.clone()), PolicyKind::Mapg).run();
        let from_matrix = matrix
            .get(profile.name(), "mapg")
            .expect("matrix entry exists");
        assert_eq!(solo.makespan_cycles, from_matrix.makespan_cycles);
        assert_eq!(solo.total_energy(), from_matrix.total_energy());
    }
}

#[test]
fn multicore_contention_is_visible_and_tokens_bound_wakes() {
    let base = quick(WorkloadProfile::mem_bound("mc")).with_instructions(25_000);
    let solo = Simulation::new(base.clone(), PolicyKind::NoGating).run();
    let quad = Simulation::new(base.clone().with_cores(4), PolicyKind::NoGating).run();
    assert!(
        quad.memory.miss_latency.mean() > solo.memory.miss_latency.mean(),
        "shared DRAM must inflate miss latency"
    );

    let tokened = Simulation::new(base.with_cores(4).with_tokens(1), PolicyKind::Mapg).run();
    assert!(tokened.peak_concurrent_wakes <= 1);
}

#[test]
fn report_energy_breakdown_is_complete() {
    use mapg_power::EnergyCategory;
    let report = Simulation::new(
        quick(WorkloadProfile::mem_bound("ledger")),
        PolicyKind::Mapg,
    )
    .run();
    let summed: f64 = EnergyCategory::ALL
        .into_iter()
        .map(|c| report.energy.get(c).as_joules())
        .sum();
    assert!(
        (summed - report.total_energy().as_joules()).abs() < 1e-12,
        "ledger buckets must partition the total"
    );
}
