//! Policy shoot-out over the SPEC-like workload suite.
//!
//! Runs every policy in the comparison set over every suite profile and
//! prints per-workload savings/overhead plus suite geomeans — the data
//! behind experiments R-T3/R-F2/R-F3, driven through the public API.
//!
//! ```bash
//! cargo run --release --example policy_comparison
//! ```

use mapg::PolicyKind;
use mapg_repro::prelude::*;

fn main() {
    let instructions = 300_000;
    let suite = WorkloadSuite::spec_like();
    let runner = SuiteRunner::new(suite, SimConfig::default().with_instructions(instructions));
    println!(
        "running {} policies x 12 workloads x {instructions} instructions...",
        PolicyKind::COMPARISON_SET.len()
    );
    let matrix = runner.run(&PolicyKind::COMPARISON_SET);

    // Per-workload MAPG numbers.
    println!(
        "\n{:<18} {:>10} {:>10} {:>10}",
        "workload", "savings", "overhead", "gated%"
    );
    for workload in matrix.workloads() {
        let baseline = matrix
            .get(workload, "no-gating")
            .expect("baseline always present");
        let mapg = matrix.get(workload, "mapg").expect("mapg always present");
        println!(
            "{:<18} {:>9.1}% {:>9.2}% {:>9.1}%",
            workload,
            mapg.core_energy_savings_vs(baseline) * 100.0,
            mapg.perf_overhead_vs(baseline) * 100.0,
            mapg.gated_stall_coverage() * 100.0,
        );
    }

    // Geomean summary per policy.
    println!(
        "\n{:<16} {:>12} {:>13} {:>10}",
        "policy", "norm energy", "norm runtime", "norm EDP"
    );
    for policy in matrix.policies() {
        println!(
            "{:<16} {:>12.3} {:>13.4} {:>10.3}",
            policy,
            matrix.geomean_normalized_energy(policy, "no-gating"),
            matrix.geomean_normalized_runtime(policy, "no-gating"),
            matrix.geomean_normalized_edp(policy, "no-gating"),
        );
    }
    println!("\n(norm < 1.0 is better; baseline = no-gating)");
}
