//! Record a workload once, replay it exactly, and pin it to disk as a
//! regression artifact.
//!
//! The text format is deliberately trivial (`C cycles insts` / `L addr pc`)
//! so traces recorded by an external pintool can be fed into this harness
//! the same way.
//!
//! ```bash
//! cargo run --release --example trace_replay
//! ```

use std::error::Error;

use mapg_cpu::{Core, CoreConfig, PassiveHandler};
use mapg_mem::{HierarchyConfig, MemoryHierarchy};
use mapg_trace::{RecordedTrace, SyntheticWorkload, WorkloadProfile};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Record 100k instructions of a memory-bound workload.
    let profile = WorkloadProfile::mem_bound("replay_demo");
    let mut live = SyntheticWorkload::new(&profile, 2024);
    let trace = RecordedTrace::record(&mut live, 100_000);
    println!(
        "recorded {} events / {} instructions from '{}'",
        trace.events().len(),
        trace.instructions(),
        trace.name()
    );

    // 2. Run the recording through the core model twice; identical stats.
    let run = |trace: &RecordedTrace| {
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut core = Core::new(CoreConfig::baseline(), trace.replay());
        core.run(trace.instructions(), &mut memory, &mut PassiveHandler);
        (core.stats().total_cycles, core.stats().stall_cycles)
    };
    let first = run(&trace);
    let second = run(&trace);
    assert_eq!(first, second, "replays are bit-identical");
    println!(
        "replay: {} cycles, {} stalled — reproduced exactly on re-run",
        first.0, first.1
    );

    // 3. Round-trip through the text format.
    let path = std::env::temp_dir().join("mapg_replay_demo.trc");
    trace.save(&path)?;
    let loaded = RecordedTrace::load(&path)?;
    assert_eq!(loaded, trace, "disk round-trip is lossless");
    let size = std::fs::metadata(&path)?.len();
    println!(
        "saved + reloaded {} ({size} bytes) — lossless",
        path.display()
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
