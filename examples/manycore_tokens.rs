//! Many-core gating with token-limited wake-ups.
//!
//! Sixteen memory-bound cores share one DRAM. Unthrottled, their wake
//! ramps can coincide and the combined inrush current threatens the power
//! delivery network; a token budget caps concurrent wake-ups at the price
//! of token-wait latency. This example sweeps the budget and prints the
//! trade — the TAP companion mechanism (experiment R-F8).
//!
//! ```bash
//! cargo run --release --example manycore_tokens
//! ```

use mapg::{PolicyKind, SimConfig, Simulation};
use mapg_power::{PgCircuitDesign, TechnologyParams};
use mapg_trace::WorkloadProfile;

fn main() {
    const CORES: usize = 16;
    let tech = TechnologyParams::bulk_45nm();
    let per_core_rush = PgCircuitDesign::fast_wakeup(&tech).rush_current();

    let base = SimConfig::default()
        .with_profile(WorkloadProfile::mem_bound("manycore"))
        .with_cores(CORES)
        .with_instructions(100_000);
    let baseline = Simulation::new(base.clone(), PolicyKind::NoGating).run();
    println!("{CORES} cores sharing one DRAM channel; per-core inrush {per_core_rush}");
    println!(
        "\n{:>8} {:>11} {:>11} {:>12} {:>10} {:>10}",
        "tokens", "peak_wakes", "peak_rush", "token_wait", "savings", "overhead"
    );
    for budget in [CORES, 8, 4, 2, 1] {
        let config = base.clone().with_tokens(budget);
        let report = Simulation::new(config, PolicyKind::Mapg).run();
        let peak = report.peak_concurrent_wakes;
        println!(
            "{:>8} {:>11} {:>11} {:>12} {:>9.1}% {:>9.2}%",
            budget,
            peak,
            (per_core_rush * peak as f64).to_string(),
            report.gating.token_delay_cycles,
            report.core_energy_savings_vs(&baseline) * 100.0,
            report.perf_overhead_vs(&baseline) * 100.0,
        );
    }
    println!(
        "\nshrinking the budget bounds the worst-case di/dt; the savings \
         barely move until the budget drops below the natural wake overlap"
    );
}
