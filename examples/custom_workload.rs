//! Building and characterizing a custom workload.
//!
//! Shows the full workload-authoring path a downstream user would take:
//! define a profile with the builder, sanity-check what the generator
//! actually emits with [`TraceStats`], then measure how much a gating
//! policy can extract from it.
//!
//! ```bash
//! cargo run --release --example custom_workload
//! ```

use mapg::{PolicyKind, SimConfig, Simulation};
use mapg_trace::{Phase, PhaseSchedule, SyntheticWorkload, TraceStats, WorkloadProfile};

fn main() {
    // A hypothetical in-memory database scan: large working set, highly
    // sequential, bursts of hash probing (the pointer-chase fraction).
    let profile = WorkloadProfile::builder("db_scan")
        .mem_refs_per_kilo_inst(160.0)
        .working_set_bytes(128 << 20)
        .spatial_locality(0.9)
        .hot_regions(4)
        .pointer_chase_fraction(0.15)
        .write_fraction(0.1)
        .compute_ipc(1.8)
        .phases(PhaseSchedule::stationary(Phase::MemoryIntensive))
        .build();
    println!("profile: {profile}");

    // What does the generator actually emit?
    let mut workload = SyntheticWorkload::new(&profile, 99);
    let stats = TraceStats::collect(&mut workload, 1_000_000);
    println!("\n=== trace statistics over 1M instructions ===");
    println!("memory refs / ki  : {:.1}", stats.refs_per_kilo_inst());
    println!("loads / stores    : {} / {}", stats.loads, stats.stores);
    println!(
        "dependent fraction: {:.1}%",
        stats.dependent_fraction() * 100.0
    );
    println!("footprint touched : {} MiB", stats.footprint_bytes() >> 20);

    // And what can gating extract from it?
    let config = SimConfig::default()
        .with_profile(profile)
        .with_instructions(1_000_000);
    let baseline = Simulation::new(config.clone(), PolicyKind::NoGating).run();
    let mapg = Simulation::new(config, PolicyKind::Mapg).run();
    println!("\n=== gating outcome ===");
    println!(
        "stall fraction    : {:.1}%",
        baseline.stall_fraction() * 100.0
    );
    println!(
        "LLC MPKI          : {:.1}",
        baseline.memory.llc_mpki(baseline.instructions)
    );
    println!(
        "core energy saved : {:+.1}%",
        mapg.core_energy_savings_vs(&baseline) * 100.0
    );
    println!(
        "runtime overhead  : {:+.2}%",
        mapg.perf_overhead_vs(&baseline) * 100.0
    );
    if let Some(score) = &mapg.predictor {
        println!("predictor         : {score}");
    }
}
