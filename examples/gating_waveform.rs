//! Export a gating waveform: run MAPG over a 4-core cluster with timeline
//! recording on and dump a VCD you can open in GTKWave next to any other
//! chip signal.
//!
//! ```bash
//! cargo run --release --example gating_waveform
//! gtkwave mapg_gating.vcd   # one 2-bit pg_state wire per core
//! ```

use std::error::Error;
use std::fs::File;

use mapg::{PolicyKind, SimConfig, Simulation};
use mapg_cpu::CoreId;
use mapg_trace::WorkloadProfile;

fn main() -> Result<(), Box<dyn Error>> {
    let config = SimConfig::default()
        .with_profile(WorkloadProfile::mem_bound("waveform"))
        .with_cores(4)
        .with_instructions(20_000)
        .with_timeline();
    let report = Simulation::new(config, PolicyKind::Mapg).run();

    let timeline = report
        .timeline
        .as_ref()
        .expect("timeline recording was enabled");
    println!(
        "recorded {} power-state transitions across {} cores over {} cycles",
        timeline.len(),
        timeline.cores(),
        report.makespan_cycles
    );
    for core in 0..timeline.cores() {
        let sleeping = timeline.sleeping_cycles(CoreId(core));
        println!(
            "  core{core}: {sleeping} cycles collapsed ({:.1}% of makespan)",
            sleeping as f64 * 100.0 / report.makespan_cycles as f64
        );
    }

    let path = "mapg_gating.vcd";
    timeline.to_vcd(File::create(path)?)?;
    println!("\nwrote {path} — open with any VCD waveform viewer");
    Ok(())
}
