//! Sleep-transistor design-space exploration.
//!
//! Walks the switch-width design space, prints every figure of merit, then
//! runs MAPG with three representative design points on a memory-bound
//! workload to show how the circuit choice lands at the system level —
//! the reasoning behind the paper's fast-wakeup design point.
//!
//! ```bash
//! cargo run --release --example circuit_design
//! ```

use mapg::{PolicyKind, SimConfig, Simulation};
use mapg_power::{PgCircuitDesign, TechnologyParams};
use mapg_trace::WorkloadProfile;

fn main() {
    let tech = TechnologyParams::bulk_45nm();
    let clock = tech.nominal_clock();

    println!("=== circuit design space (45 nm, 1.0 V, 2 GHz) ===");
    println!(
        "{:>7} {:>9} {:>9} {:>10} {:>9} {:>9} {:>8}",
        "width%", "t_wake", "resid%", "E_trans", "rush", "area%", "BET"
    );
    let ratios = [0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.2];
    for design in PgCircuitDesign::design_space(&tech, &ratios) {
        println!(
            "{:>7.1} {:>7.1}ns {:>9.1} {:>8.1}nJ {:>9} {:>9.1} {:>8}",
            design.switch_width_ratio() * 100.0,
            design.wakeup_time().as_nanos(),
            design.residual_leakage().as_percent(),
            design.transition_energy().as_joules() * 1e9,
            design.rush_current().to_string(),
            design.area_overhead().as_percent(),
            design.break_even_cycles(&tech, clock).to_string(),
        );
    }

    println!("\n=== system-level impact of three design points ===");
    let profile = WorkloadProfile::mem_bound("design_probe");
    let base = SimConfig::default()
        .with_profile(profile)
        .with_instructions(500_000);
    let baseline = Simulation::new(base.clone(), PolicyKind::NoGating).run();
    println!(
        "{:<14} {:>10} {:>10} {:>12}",
        "design", "savings", "overhead", "penalty_cyc"
    );
    for (label, ratio) in [
        ("conservative", 0.01),
        ("fast-wakeup", 0.03), // the MAPG point
        ("aggressive", 0.08),
    ] {
        let config = base.clone().with_switch_width(ratio);
        let report = Simulation::new(config, PolicyKind::Mapg).run();
        println!(
            "{:<14} {:>9.1}% {:>9.2}% {:>12}",
            label,
            report.core_energy_savings_vs(&baseline) * 100.0,
            report.perf_overhead_vs(&baseline) * 100.0,
            report.gating.penalty_cycles,
        );
    }
    println!(
        "\nthe 3% fast-wakeup point buys most of the aggressive design's \
         speed at a fraction of its residual leakage — the MAPG choice"
    );
}
