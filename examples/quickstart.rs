//! Quickstart: gate one memory-bound workload and compare against the
//! no-power-management baseline.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use mapg_repro::prelude::*;

fn main() {
    // A memory-bound workload (mcf-class behaviour), 1 M instructions on
    // one 2 GHz core over the default 32K/2M/DDR3 hierarchy.
    let config = SimConfig::default()
        .with_profile(WorkloadProfile::mem_bound("quickstart"))
        .with_instructions(1_000_000)
        .with_seed(7);

    println!("=== baseline: no power management ===");
    let baseline = Simulation::new(config.clone(), PolicyKind::NoGating).run();
    print!("{baseline}");

    println!("\n=== MAPG: predictive memory-access power gating ===");
    let mapg = Simulation::new(config, PolicyKind::Mapg).run();
    print!("{mapg}");

    println!("\n=== verdict ===");
    println!(
        "core energy savings : {:+.1}%",
        mapg.core_energy_savings_vs(&baseline) * 100.0
    );
    println!(
        "leakage savings     : {:+.1}%",
        mapg.leakage_savings_vs(&baseline) * 100.0
    );
    println!(
        "runtime overhead    : {:+.2}%",
        mapg.perf_overhead_vs(&baseline) * 100.0
    );
    println!(
        "EDP improvement     : {:+.1}%",
        -mapg.edp_delta_vs(&baseline) * 100.0
    );
    println!(
        "stall time gated    : {:.1}%",
        mapg.gated_stall_coverage() * 100.0
    );
}
