//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this minimal shim instead of the upstream crate. It keeps the property
//! style of the test suites — `proptest! { fn prop(x in strategy) { .. } }`
//! with composable [`Strategy`] values — but samples deterministically from
//! a seed derived from the test name and case index. There is no shrinking
//! and no persistence of failing cases; a failing property reports the
//! sampled values through the normal assertion message instead.
//!
//! Covered API: `proptest!` (with optional `#![proptest_config(..)]`),
//! `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`, `Just`, `any::<T>()`,
//! integer/float `Range`/`RangeInclusive` strategies, tuple strategies up to
//! arity 10, `Strategy::prop_map`, and `prop::collection::vec` with either a
//! fixed size or a `Range<usize>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of values for a property test.
///
/// Unlike upstream proptest there is no value tree or shrinking: a strategy
/// simply draws one value per test case from the deterministic per-case RNG.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice between boxed strategies; result of [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let index = rng.gen_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

/// Types with a canonical "whole domain" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain of the type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u32>()
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (rng.gen::<u32>() >> 16) as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (rng.gen::<u32>() >> 24) as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u32>() as i32
    }
}

/// Strategy over the full domain of `T` (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the canonical strategy for `T`, mirroring `proptest::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

/// Number of elements a collection strategy may produce.
#[derive(Debug, Clone)]
pub struct SizeRange {
    range: core::ops::Range<usize>,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { range: n..n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        SizeRange { range }
    }
}

/// The `prop` namespace re-exported by the prelude (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy producing `Vec`s of values drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Builds a strategy for `Vec`s with `size` elements (a fixed
        /// `usize` or a `Range<usize>`) drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let range = self.size.range.clone();
                let len = if range.len() <= 1 {
                    range.start
                } else {
                    rng.gen_range(range)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Test-runner configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to sample per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property (upstream-compatible
    /// constructor).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases per property — lower than upstream's 256 to keep the suite
    /// quick; heavyweight properties override this explicitly anyway.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Builds the deterministic RNG for one test case.
///
/// The seed mixes an FNV-1a hash of the test name with the case index so
/// every property sees a distinct but reproducible stream; reruns are
/// bit-identical.
pub fn test_rng(test_name: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Defines property tests. Mirrors upstream's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a property condition; forwards to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property; forwards to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among strategies yielding a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $($crate::Strategy::boxed($strat)),+ ])
    };
}

/// One-stop import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn test_rng_is_deterministic_per_name_and_case() {
        use rand::Rng;
        let mut a = super::test_rng("prop", 3);
        let mut b = super::test_rng("prop", 3);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c = super::test_rng("prop", 4);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_bounds(
            items in prop::collection::vec((0u64..100, any::<bool>()), 1..20),
            fixed in prop::collection::vec(any::<u64>(), 7),
        ) {
            prop_assert!(!items.is_empty() && items.len() < 20);
            prop_assert_eq!(fixed.len(), 7);
            for (v, _flag) in items {
                prop_assert!(v < 100);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            label in prop_oneof![Just("a"), Just("b")],
            doubled in (1u32..50).prop_map(|v| v * 2),
        ) {
            prop_assert!(label == "a" || label == "b");
            prop_assert!(doubled % 2 == 0 && doubled < 100);
        }
    }
}
