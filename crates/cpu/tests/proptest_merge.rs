//! The k-way merge oracle: [`KwayMerger`] must be byte-identical to the
//! concatenate-in-stream-order + stable `sort_by_key` it replaced, for
//! *every* input — adversarial cross-stream key duplicates, empty
//! channels, extreme keys — and the sharded engine built on it must stay
//! bit-identical to the global wheel across cancelled/resumed segments
//! at any worker count.
//!
//! Values are tagged `(stream, sequence)` so the assertions pin
//! *stability*, not just key order: equal keys must come out in stream
//! order, and within one stream in arrival order — exactly where a
//! stable sort of the concatenation leaves them.

use proptest::prelude::*;

use mapg_cpu::{Cluster, CoreConfig, KwayMerger, PassiveHandler};
use mapg_mem::HierarchyConfig;
use mapg_pool::CancelToken;
use mapg_trace::{SyntheticWorkload, WorkloadProfile};

/// A value that makes ordering violations visible: which stream it came
/// from and its position there.
type Tag = (usize, usize);

/// The reference implementation the merge replaced.
fn oracle(streams: &[Vec<(u128, Tag)>]) -> Vec<(u128, Tag)> {
    let mut merged: Vec<(u128, Tag)> = streams.iter().flatten().copied().collect();
    merged.sort_by_key(|(key, _)| *key);
    merged
}

/// Strategy: up to 9 streams of sorted keys drawn mostly from a *small*
/// range so cross-stream collisions are the norm, with occasional
/// extreme keys (`0`, `u128::MAX`) mixed in. Some streams come out
/// empty.
fn sorted_streams() -> impl Strategy<Value = Vec<Vec<(u128, Tag)>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 0..9).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(stream, codes)| {
                let mut keys: Vec<u128> = codes
                    .into_iter()
                    .map(|code| match code {
                        0..=239 => u128::from(code % 32),
                        240..=247 => 0,
                        _ => u128::MAX,
                    })
                    .collect();
                keys.sort_unstable();
                keys.into_iter()
                    .enumerate()
                    .map(|(seq, key)| (key, (stream, seq)))
                    .collect()
            })
            .collect()
    })
}

fn sources(n: usize) -> Vec<SyntheticWorkload> {
    let profile = WorkloadProfile::mem_bound("merge_prop");
    (0..n)
        .map(|i| SyntheticWorkload::new(&profile, 9000 + i as u64))
        .collect()
}

fn cluster(cores: usize, channels: usize) -> Cluster<SyntheticWorkload> {
    Cluster::try_new_with_channels(
        CoreConfig::baseline(),
        HierarchyConfig::baseline(),
        sources(cores),
        channels,
    )
    .expect("valid topology")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The merge is the stable sort, record for record, and drains every
    /// input vector (the sharded engine recycles them as next segment's
    /// capture buffers).
    #[test]
    fn merge_is_byte_identical_to_concat_stable_sort(
        streams in sorted_streams(),
    ) {
        let mut streams = streams;
        let expected = oracle(&streams);
        let mut merger = KwayMerger::new();
        let mut out = Vec::with_capacity(expected.len());
        merger.merge(&mut streams, |key, value| out.push((key, value)));
        prop_assert_eq!(out, expected);
        prop_assert!(streams.iter().all(Vec::is_empty));
    }

    /// One merger instance across many calls of varying widths (the
    /// session reuses its merger every segment) never carries state over.
    #[test]
    fn merger_reuse_carries_no_state_between_segments(
        segments in prop::collection::vec(sorted_streams(), 1..5),
    ) {
        let mut merger = KwayMerger::new();
        for mut streams in segments {
            let expected = oracle(&streams);
            let mut out = Vec::with_capacity(expected.len());
            merger.merge(&mut streams, |key, value| out.push((key, value)));
            prop_assert_eq!(out, expected);
        }
    }

    /// End-to-end through the engine that feeds the merge real streams:
    /// a session of segments — some cancelled mid-way and resumed — is
    /// bit-identical (stats, trace, ring drops, metrics) to the same
    /// segments on the global wheel, at every worker count.
    #[test]
    fn cancelled_and_resumed_segments_merge_identically(
        cores in 2usize..7,
        segments in prop::collection::vec((200u64..900, any::<bool>()), 1..4),
        shards in 2usize..5,
        jobs in 1usize..5,
    ) {
        let channels = cores.div_ceil(2);
        let reference = {
            let mut c = cluster(cores, channels);
            let obs = mapg_obs::ObsHandle::enabled(Some(64), true);
            c.set_obs(obs.clone());
            for &(budget, _) in &segments {
                c.try_run(budget, &mut PassiveHandler).expect("wheel segment");
            }
            (c.stats(), obs.collect())
        };

        let mut c = cluster(cores, channels);
        let obs = mapg_obs::ObsHandle::enabled(Some(64), true);
        c.set_obs(obs.clone());
        mapg_pool::with_default_jobs(jobs, || {
            c.shard_session(shards, &PassiveHandler, |session| {
                for &(budget, interrupt) in &segments {
                    if interrupt {
                        let cancel = CancelToken::new();
                        cancel.cancel();
                        let cancelled = session.try_run_with_cancel(budget, &cancel);
                        assert!(cancelled.is_err(), "pre-fired token cancels");
                        session.try_resume().expect("resume");
                    } else {
                        session.try_run(budget).expect("segment");
                    }
                }
            })
            .expect("session")
        });

        prop_assert_eq!(c.stats(), reference.0);
        prop_assert_eq!(obs.collect(), reference.1);
    }
}
