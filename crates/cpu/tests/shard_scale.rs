//! Scale smoke: the sharded engine at the paper-scale extreme — 65 536
//! cores over 512 memory channels (128 cores per channel) — must still
//! be bit-identical to the single global wheel. The per-core budget is
//! tiny so this stays a smoke test in debug builds; the point is the
//! topology (arena grouping, 512-stream merge, index bookkeeping at
//! u32-scale core counts), not the instruction volume.

use mapg_cpu::{Cluster, CoreConfig, PassiveHandler};
use mapg_mem::HierarchyConfig;
use mapg_trace::{SyntheticWorkload, WorkloadProfile};

const CORES: usize = 65_536;
const CHANNELS: usize = 512;
const BUDGET: u64 = 24;

fn cluster() -> Cluster<SyntheticWorkload> {
    let profile = WorkloadProfile::mem_bound("shard_64k");
    let sources: Vec<SyntheticWorkload> = (0..CORES)
        .map(|i| SyntheticWorkload::new(&profile, 40_000 + i as u64))
        .collect();
    Cluster::try_new_with_channels(
        CoreConfig::baseline(),
        HierarchyConfig::baseline(),
        sources,
        CHANNELS,
    )
    .expect("valid topology")
}

#[test]
fn sharded_64k_cores_matches_the_global_wheel() {
    let mut wheel = cluster();
    wheel.run(BUDGET, &mut PassiveHandler);
    let reference = wheel.stats();
    assert_eq!(reference.per_core.len(), CORES);

    let mut sharded = cluster();
    sharded
        .try_run_sharded(BUDGET, &PassiveHandler, CHANNELS)
        .expect("sharded run");
    assert_eq!(sharded.stats(), reference);
    assert!(!sharded.has_pending_segment());
}
