//! The sharded-engine equivalence oracle: `try_run_sharded` must be
//! observationally identical to the single global wheel (`try_run`) and
//! to the retained seed stack ([`ReferenceCluster`]) for arbitrary core
//! counts, channel counts, shard counts, seeds, budgets, and fault
//! plans — and at any worker-pool size, because determinism may not
//! depend on how shard wheels interleave on the host.
//!
//! "Identical" is checked at two levels:
//!
//! - **Per-core stall streams**: a sharded run resolves stalls through a
//!   `Sync` handler that may be called from any worker, so the *global*
//!   call order is an execution detail. What is pinned is every core's
//!   own stall sequence (which stalls, at what times, waiting on what,
//!   resolved when): each core's stream must be byte-for-byte the
//!   sequence the global wheel produces. Cores only couple through
//!   their channel's shared hierarchy, and cores of one channel run on
//!   one wheel, so identical per-core streams pin the whole history.
//! - **End state**: full [`ClusterStats`] equality — per-core counts and
//!   timestamps plus every hierarchy counter, merged in channel order.

use std::sync::Mutex;

use proptest::prelude::*;

use mapg_cpu::{
    Cluster, CoreConfig, PassiveHandler, ReferenceCluster, StallInfo, SyncStallHandler,
};
use mapg_mem::{DramFaultConfig, HierarchyConfig};
use mapg_pool::CancelToken;
use mapg_trace::{SyntheticWorkload, WorkloadProfile};
use mapg_units::{Cycle, Cycles};

/// One observed stall: `(core, start, data_ready, outstanding, wake)`.
type Entry = (usize, u64, u64, usize, u64);

/// Logs every stall decision behind a mutex so the sharded engine (whose
/// workers share the handler by `&`) and the serial wheels (driven via
/// the `&mut &H` blanket impl) record through the identical code path.
/// Resolution is a pure function of the stall, so logging is purely
/// observational.
#[derive(Default)]
struct SyncLog {
    entries: Mutex<Vec<Entry>>,
    /// Wake penalty hash seed; `None` resumes passively at data arrival.
    faulty_seed: Option<u64>,
}

impl SyncLog {
    fn faulty(seed: u64) -> Self {
        SyncLog {
            entries: Mutex::new(Vec::new()),
            faulty_seed: Some(seed),
        }
    }

    /// SplitMix64-style finalizer over `(seed, core, start)` — the same
    /// misbehaving-wake model as `proptest_scheduler.rs`, made pure so a
    /// `Sync` handler can compute it without state.
    fn penalty(&self, core: usize, start: u64) -> u64 {
        let Some(seed) = self.faulty_seed else {
            return 0;
        };
        let mut x = seed
            .wrapping_add((core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(start.wrapping_mul(0xD1B5_4A32_D192_ED03));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        let roll = x ^ (x >> 31);
        match roll % 10 {
            0 => 400 + roll % 256,
            1..=3 => 20 + roll % 64,
            _ => 0,
        }
    }

    /// Entries projected to per-core streams: `streams[core]` is that
    /// core's stall sequence in its own program order, which is invariant
    /// across engines and worker interleavings. Each core's entries
    /// arrive in order even under sharding (a core lives on exactly one
    /// channel wheel), so a stable partition of the log reconstructs
    /// every stream regardless of how channels interleaved globally.
    fn streams(&self, cores: usize) -> Vec<Vec<Entry>> {
        let entries = self.entries.lock().expect("log poisoned");
        let mut streams = vec![Vec::new(); cores];
        for entry in entries.iter() {
            streams[entry.0].push(*entry);
        }
        streams
    }
}

impl SyncStallHandler for SyncLog {
    fn resolve(&self, info: &StallInfo) -> Cycle {
        let wake = info.data_ready + Cycles::new(self.penalty(info.core.0, info.start.raw()));
        self.entries.lock().expect("log poisoned").push((
            info.core.0,
            info.start.raw(),
            info.data_ready.raw(),
            info.outstanding,
            wake.raw(),
        ));
        wake
    }
}

/// An always-active DRAM fault plan (as in `proptest_scheduler.rs`).
fn spiky_hierarchy(seed: u64) -> HierarchyConfig {
    HierarchyConfig::baseline().with_dram_faults(DramFaultConfig {
        spike_prob: 0.35,
        spike_cycles: Cycles::new(150),
        window_cycles: 500,
        seed,
    })
}

fn profile_for(mix: u8, name: &str) -> WorkloadProfile {
    match mix % 3 {
        0 => WorkloadProfile::mem_bound(name),
        1 => WorkloadProfile::mixed(name),
        _ => WorkloadProfile::compute_bound(name),
    }
}

fn sources(mixes: &[u8], seed_base: u64) -> Vec<SyntheticWorkload> {
    mixes
        .iter()
        .enumerate()
        .map(|(i, &mix)| SyntheticWorkload::new(&profile_for(mix, "sharded"), seed_base + i as u64))
        .collect()
}

fn cluster(
    mixes: &[u8],
    seed_base: u64,
    channels: usize,
    hierarchy: HierarchyConfig,
) -> Cluster<SyntheticWorkload> {
    Cluster::try_new_with_channels(
        CoreConfig::baseline(),
        hierarchy,
        sources(mixes, seed_base),
        channels,
    )
    .expect("valid topology")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random topologies under random worker-pool sizes: the sharded
    /// engine, the global wheel, and the seed reference agree on the
    /// full end-state statistics and on every core's stall stream.
    #[test]
    fn sharded_matches_wheel_and_reference(
        mixes in prop::collection::vec(0u8..3, 1..8),
        seed_base in 0u64..1_000,
        channels in 1usize..5,
        shards in 1usize..6,
        jobs in 1usize..5,
        budget in 500u64..3_000,
    ) {
        let mut wheel = cluster(&mixes, seed_base, channels, HierarchyConfig::baseline());
        let wheel_log = SyncLog::default();
        wheel.try_run(budget, &mut &wheel_log).expect("wheel run");

        let mut sharded = cluster(&mixes, seed_base, channels, HierarchyConfig::baseline());
        let sharded_log = SyncLog::default();
        mapg_pool::with_default_jobs(jobs, || {
            sharded.try_run_sharded(budget, &sharded_log, shards)
        }).expect("sharded run");

        let mut reference = ReferenceCluster::try_new_with_channels(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            sources(&mixes, seed_base),
            channels,
        ).expect("valid topology");
        let reference_log = SyncLog::default();
        reference.try_run(budget, &mut &reference_log).expect("reference run");

        prop_assert_eq!(sharded.stats(), wheel.stats());
        prop_assert_eq!(sharded.stats(), reference.stats());
        let cores = mixes.len();
        prop_assert_eq!(sharded_log.streams(cores), wheel_log.streams(cores));
        prop_assert_eq!(wheel_log.streams(cores), reference_log.streams(cores));
    }

    /// Equivalence must survive both fault dimensions at once: spiking
    /// DRAM (which shifts the whole event order) under misbehaving
    /// wake-ups (dropped grants, stuck-slow switches).
    #[test]
    fn faults_preserve_sharded_equivalence(
        mixes in prop::collection::vec(0u8..3, 1..6),
        seed_base in 0u64..1_000,
        fault_seed in 0u64..1_000,
        channels in 1usize..5,
        shards in 1usize..6,
        budget in 500u64..3_000,
    ) {
        let mut wheel = cluster(&mixes, seed_base, channels, spiky_hierarchy(fault_seed));
        let wheel_log = SyncLog::faulty(fault_seed);
        wheel.try_run(budget, &mut &wheel_log).expect("wheel run");

        let mut sharded = cluster(&mixes, seed_base, channels, spiky_hierarchy(fault_seed));
        let sharded_log = SyncLog::faulty(fault_seed);
        sharded.try_run_sharded(budget, &sharded_log, shards).expect("sharded run");

        let mut reference = ReferenceCluster::try_new_with_channels(
            CoreConfig::baseline(),
            spiky_hierarchy(fault_seed),
            sources(&mixes, seed_base),
            channels,
        ).expect("valid topology");
        let reference_log = SyncLog::faulty(fault_seed);
        reference.try_run(budget, &mut &reference_log).expect("reference run");

        prop_assert_eq!(sharded.stats(), wheel.stats());
        prop_assert_eq!(sharded.stats(), reference.stats());
        let cores = mixes.len();
        prop_assert_eq!(sharded_log.streams(cores), wheel_log.streams(cores));
        prop_assert_eq!(wheel_log.streams(cores), reference_log.streams(cores));
    }

    /// Incremental sharded budgets accumulate like the wheel's: running
    /// in two segments (which re-admits finished cores at their earlier
    /// timestamps and re-partitions the channels) equals one wheel run
    /// of the total, even when the two segments use different shard
    /// counts.
    #[test]
    fn incremental_sharded_runs_accumulate(
        mixes in prop::collection::vec(0u8..3, 1..6),
        seed_base in 0u64..1_000,
        channels in 1usize..4,
        first_shards in 1usize..5,
        second_shards in 1usize..5,
        first in 300u64..1_500,
        second in 300u64..1_500,
    ) {
        let mut sharded = cluster(&mixes, seed_base, channels, HierarchyConfig::baseline());
        sharded.try_run_sharded(first, &PassiveHandler, first_shards).expect("first");
        sharded.try_run_sharded(second, &PassiveHandler, second_shards).expect("second");

        let mut wheel = cluster(&mixes, seed_base, channels, HierarchyConfig::baseline());
        wheel.try_run(first, &mut PassiveHandler).expect("first");
        wheel.try_run(second, &mut PassiveHandler).expect("second");

        prop_assert_eq!(sharded.stats(), wheel.stats());
    }

    /// Kill/resume: a run cancelled before any channel starts loses no
    /// work — resuming (explicitly, or implicitly via the next sharded
    /// call) lands on exactly the state an uncancelled run reaches, and
    /// a later segment still matches the wheel.
    #[test]
    fn cancelled_runs_resume_to_the_uncancelled_result(
        mixes in prop::collection::vec(0u8..3, 1..6),
        seed_base in 0u64..1_000,
        channels in 1usize..4,
        shards in 2usize..5,
        explicit_resume in any::<bool>(),
        first in 300u64..1_500,
        second in 300u64..1_500,
    ) {
        let cancel = CancelToken::default();
        cancel.cancel();

        let mut sharded = cluster(&mixes, seed_base, channels, HierarchyConfig::baseline());
        let cancelled = sharded
            .try_run_sharded_with_cancel(first, &PassiveHandler, shards, &cancel);
        prop_assert!(cancelled.is_err(), "pre-fired token must cancel the segment");
        prop_assert!(sharded.has_pending_segment());

        if explicit_resume {
            sharded.try_resume_sharded(&PassiveHandler, shards).expect("resume");
            prop_assert!(!sharded.has_pending_segment());
            sharded.try_run_sharded(second, &PassiveHandler, shards).expect("second");
        } else {
            // The next sharded run auto-resumes the interrupted segment
            // before admitting its own budget.
            sharded.try_run_sharded(second, &PassiveHandler, shards).expect("second");
        }

        let mut wheel = cluster(&mixes, seed_base, channels, HierarchyConfig::baseline());
        wheel.try_run(first, &mut PassiveHandler).expect("first");
        wheel.try_run(second, &mut PassiveHandler).expect("second");

        prop_assert_eq!(sharded.stats(), wheel.stats());
    }
}
