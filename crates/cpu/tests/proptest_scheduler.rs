//! The scheduler equivalence oracle: the event-wheel [`Cluster`] must be
//! observationally identical to the retained seed stack
//! ([`ReferenceCluster`]: linear min-scan, per-event stepping, seed
//! memory hierarchy) for arbitrary core counts, workload mixes, seeds,
//! and budgets.
//!
//! "Identical" is checked at two levels:
//!
//! - **Interleaving**: every stall callback (which core, at what time,
//!   waiting on what) is logged in order by a recording handler; the two
//!   stacks must produce byte-for-byte the same sequence. Stalls are the
//!   points where cores interact through the shared hierarchy, so an
//!   identical stall log pins the global event order.
//! - **End state**: full [`ClusterStats`] equality — per-core instruction
//!   counts, timestamps, stall breakdowns, histograms, and every shared
//!   hierarchy counter (cache hits, writebacks, DRAM row hits, refresh
//!   stalls, MSHR stalls, miss-latency histogram).

use proptest::prelude::*;

use mapg_cpu::{Cluster, CoreConfig, PassiveHandler, ReferenceCluster, StallHandler, StallInfo};
use mapg_mem::{DramFaultConfig, HierarchyConfig};
use mapg_trace::{RecordedTrace, SyntheticWorkload, WorkloadProfile};
use mapg_units::{Cycle, Cycles};

/// Logs every stall decision; resumes passively (at data arrival), so the
/// log is purely observational.
#[derive(Default)]
struct InterleavingLog {
    entries: Vec<(usize, u64, u64, usize)>,
}

impl StallHandler for InterleavingLog {
    fn on_stall(&mut self, info: &StallInfo) -> Cycle {
        self.entries.push((
            info.core.0,
            info.start.raw(),
            info.data_ready.raw(),
            info.outstanding,
        ));
        info.data_ready
    }
}

/// A power-gating controller behaving badly, modelled at the stall
/// boundary: wake-ups come back **late** (stuck or slow sleep switches)
/// and occasionally a wake grant is **dropped** entirely, forcing the core
/// to sit through a full retry interval. Decisions are a pure hash of
/// `(seed, core, stall start)`, so both stacks — which present stalls in
/// potentially different call orders but with identical content — see
/// exactly the same faults.
struct FaultyWakeLog {
    seed: u64,
    entries: Vec<(usize, u64, u64, usize, u64)>,
}

impl FaultyWakeLog {
    fn new(seed: u64) -> Self {
        FaultyWakeLog {
            seed,
            entries: Vec::new(),
        }
    }

    /// SplitMix64-style finalizer over `(seed, core, start)`.
    fn hash(&self, core: usize, start: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_add((core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(start.wrapping_mul(0xD1B5_4A32_D192_ED03));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

impl StallHandler for FaultyWakeLog {
    fn on_stall(&mut self, info: &StallInfo) -> Cycle {
        let roll = self.hash(info.core.0, info.start.raw());
        let penalty = match roll % 10 {
            // Dropped grant: the wake request is lost and only a retry
            // long after data arrival brings the core back.
            0 => 400 + roll % 256,
            // Stuck-slow wake: the sleep switch takes far longer than the
            // nominal wake latency.
            1..=3 => 20 + roll % 64,
            // Healthy wake at data arrival.
            _ => 0,
        };
        let wake = info.data_ready + Cycles::new(penalty);
        self.entries.push((
            info.core.0,
            info.start.raw(),
            info.data_ready.raw(),
            info.outstanding,
            wake.raw(),
        ));
        wake
    }
}

/// An always-active DRAM fault plan: short windows and a high spike
/// probability so even small proptest budgets cross several faulty
/// (bank, window) pairs.
fn spiky_hierarchy(seed: u64) -> HierarchyConfig {
    HierarchyConfig::baseline().with_dram_faults(DramFaultConfig {
        spike_prob: 0.35,
        spike_cycles: Cycles::new(150),
        window_cycles: 500,
        seed,
    })
}

fn profile_for(mix: u8, name: &str) -> WorkloadProfile {
    match mix % 3 {
        0 => WorkloadProfile::mem_bound(name),
        1 => WorkloadProfile::mixed(name),
        _ => WorkloadProfile::compute_bound(name),
    }
}

fn sources(mixes: &[u8], seed_base: u64) -> Vec<SyntheticWorkload> {
    mixes
        .iter()
        .enumerate()
        .map(|(i, &mix)| SyntheticWorkload::new(&profile_for(mix, "oracle"), seed_base + i as u64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random clusters of synthetic workloads: identical interleaving and
    /// identical end-state statistics.
    #[test]
    fn heap_cluster_matches_reference_cluster(
        mixes in prop::collection::vec(0u8..3, 1..6),
        seed_base in 0u64..1_000,
        budget in 500u64..4_000,
    ) {
        let mut live = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            sources(&mixes, seed_base),
        );
        let mut live_log = InterleavingLog::default();
        live.run(budget, &mut live_log);

        let mut reference = ReferenceCluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            sources(&mixes, seed_base),
        );
        let mut reference_log = InterleavingLog::default();
        reference.run(budget, &mut reference_log);

        prop_assert_eq!(live_log.entries, reference_log.entries);
        prop_assert_eq!(live.stats(), reference.stats());
    }

    /// Incremental budgets must accumulate identically: running the heap
    /// cluster in two chunks (which rebuilds the heap and re-admits
    /// finished cores) equals the reference's single run of the total.
    #[test]
    fn incremental_runs_match_one_shot_reference(
        mixes in prop::collection::vec(0u8..3, 1..5),
        seed_base in 0u64..1_000,
        first in 300u64..1_500,
        second in 300u64..1_500,
    ) {
        let mut live = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            sources(&mixes, seed_base),
        );
        live.run(first, &mut PassiveHandler);
        live.run(second, &mut PassiveHandler);

        let mut reference = ReferenceCluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            sources(&mixes, seed_base),
        );
        reference.run(first, &mut PassiveHandler);
        reference.run(second, &mut PassiveHandler);

        prop_assert_eq!(live.stats(), reference.stats());
    }

    /// Replayed basic-block-granularity recordings (the throughput
    /// benchmark's workload shape, where compute batching folds the most
    /// events) must also interleave identically.
    #[test]
    fn quantized_replay_matches_reference(
        mixes in prop::collection::vec(0u8..3, 1..5),
        seed_base in 0u64..1_000,
        quantum in 1u64..8,
        budget in 500u64..3_000,
    ) {
        let traces: Vec<RecordedTrace> = mixes
            .iter()
            .enumerate()
            .map(|(i, &mix)| {
                let profile = profile_for(mix, "oracle_replay");
                let mut workload =
                    SyntheticWorkload::new(&profile, seed_base + i as u64);
                RecordedTrace::record(&mut workload, budget).quantize_compute(quantum)
            })
            .collect();

        let mut live = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            traces.iter().map(|t| t.replay()).collect(),
        );
        let mut live_log = InterleavingLog::default();
        live.run(budget, &mut live_log);

        let mut reference = ReferenceCluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            traces.iter().map(|t| t.replay()).collect(),
        );
        let mut reference_log = InterleavingLog::default();
        reference.run(budget, &mut reference_log);

        prop_assert_eq!(live_log.entries, reference_log.entries);
        prop_assert_eq!(live.stats(), reference.stats());
    }

    /// Equivalence must survive active DRAM fault plans: latency spikes
    /// shift data-ready times (and therefore the whole event order), and
    /// the two stacks must shift identically.
    #[test]
    fn dram_spikes_preserve_equivalence(
        mixes in prop::collection::vec(0u8..3, 1..6),
        seed_base in 0u64..1_000,
        fault_seed in 0u64..1_000,
        budget in 500u64..4_000,
    ) {
        let mut live = Cluster::new(
            CoreConfig::baseline(),
            spiky_hierarchy(fault_seed),
            sources(&mixes, seed_base),
        );
        let mut live_log = InterleavingLog::default();
        live.run(budget, &mut live_log);

        let mut reference = ReferenceCluster::new(
            CoreConfig::baseline(),
            spiky_hierarchy(fault_seed),
            sources(&mixes, seed_base),
        );
        let mut reference_log = InterleavingLog::default();
        reference.run(budget, &mut reference_log);

        prop_assert_eq!(live_log.entries, reference_log.entries);
        prop_assert_eq!(live.stats(), reference.stats());
    }

    /// Equivalence must survive misbehaving wake-ups: when the handler
    /// injects stuck-slow wakes and dropped grants (wakes far past data
    /// arrival), the run-ahead fast path must not let a core that is
    /// sleeping through its penalty lose or gain cycles versus the
    /// reference's per-event stepping.
    #[test]
    fn faulty_wakes_preserve_equivalence(
        mixes in prop::collection::vec(0u8..3, 1..6),
        seed_base in 0u64..1_000,
        wake_seed in 0u64..1_000,
        budget in 500u64..4_000,
    ) {
        let mut live = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            sources(&mixes, seed_base),
        );
        let mut live_log = FaultyWakeLog::new(wake_seed);
        live.run(budget, &mut live_log);

        let mut reference = ReferenceCluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            sources(&mixes, seed_base),
        );
        let mut reference_log = FaultyWakeLog::new(wake_seed);
        reference.run(budget, &mut reference_log);

        prop_assert_eq!(live_log.entries, reference_log.entries);
        prop_assert_eq!(live.stats(), reference.stats());
    }

    /// Both fault dimensions at once — spiking DRAM under a misbehaving
    /// wake path — the worst case the fuzzer's FaultPlan dimension
    /// exercises end-to-end.
    #[test]
    fn combined_faults_preserve_equivalence(
        mixes in prop::collection::vec(0u8..3, 1..5),
        seed_base in 0u64..1_000,
        fault_seed in 0u64..1_000,
        budget in 500u64..3_000,
    ) {
        let mut live = Cluster::new(
            CoreConfig::baseline(),
            spiky_hierarchy(fault_seed),
            sources(&mixes, seed_base),
        );
        let mut live_log = FaultyWakeLog::new(fault_seed);
        live.run(budget, &mut live_log);

        let mut reference = ReferenceCluster::new(
            CoreConfig::baseline(),
            spiky_hierarchy(fault_seed),
            sources(&mixes, seed_base),
        );
        let mut reference_log = FaultyWakeLog::new(fault_seed);
        reference.run(budget, &mut reference_log);

        prop_assert_eq!(live_log.entries, reference_log.entries);
        prop_assert_eq!(live.stats(), reference.stats());
    }
}
