//! The scheduler equivalence oracle: the event-wheel [`Cluster`] must be
//! observationally identical to the retained seed stack
//! ([`ReferenceCluster`]: linear min-scan, per-event stepping, seed
//! memory hierarchy) for arbitrary core counts, workload mixes, seeds,
//! and budgets.
//!
//! "Identical" is checked at two levels:
//!
//! - **Interleaving**: every stall callback (which core, at what time,
//!   waiting on what) is logged in order by a recording handler; the two
//!   stacks must produce byte-for-byte the same sequence. Stalls are the
//!   points where cores interact through the shared hierarchy, so an
//!   identical stall log pins the global event order.
//! - **End state**: full [`ClusterStats`] equality — per-core instruction
//!   counts, timestamps, stall breakdowns, histograms, and every shared
//!   hierarchy counter (cache hits, writebacks, DRAM row hits, refresh
//!   stalls, MSHR stalls, miss-latency histogram).

use proptest::prelude::*;

use mapg_cpu::{Cluster, CoreConfig, PassiveHandler, ReferenceCluster, StallHandler, StallInfo};
use mapg_mem::HierarchyConfig;
use mapg_trace::{RecordedTrace, SyntheticWorkload, WorkloadProfile};
use mapg_units::Cycle;

/// Logs every stall decision; resumes passively (at data arrival), so the
/// log is purely observational.
#[derive(Default)]
struct InterleavingLog {
    entries: Vec<(usize, u64, u64, usize)>,
}

impl StallHandler for InterleavingLog {
    fn on_stall(&mut self, info: &StallInfo) -> Cycle {
        self.entries.push((
            info.core.0,
            info.start.raw(),
            info.data_ready.raw(),
            info.outstanding,
        ));
        info.data_ready
    }
}

fn profile_for(mix: u8, name: &str) -> WorkloadProfile {
    match mix % 3 {
        0 => WorkloadProfile::mem_bound(name),
        1 => WorkloadProfile::mixed(name),
        _ => WorkloadProfile::compute_bound(name),
    }
}

fn sources(mixes: &[u8], seed_base: u64) -> Vec<SyntheticWorkload> {
    mixes
        .iter()
        .enumerate()
        .map(|(i, &mix)| SyntheticWorkload::new(&profile_for(mix, "oracle"), seed_base + i as u64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random clusters of synthetic workloads: identical interleaving and
    /// identical end-state statistics.
    #[test]
    fn heap_cluster_matches_reference_cluster(
        mixes in prop::collection::vec(0u8..3, 1..6),
        seed_base in 0u64..1_000,
        budget in 500u64..4_000,
    ) {
        let mut live = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            sources(&mixes, seed_base),
        );
        let mut live_log = InterleavingLog::default();
        live.run(budget, &mut live_log);

        let mut reference = ReferenceCluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            sources(&mixes, seed_base),
        );
        let mut reference_log = InterleavingLog::default();
        reference.run(budget, &mut reference_log);

        prop_assert_eq!(live_log.entries, reference_log.entries);
        prop_assert_eq!(live.stats(), reference.stats());
    }

    /// Incremental budgets must accumulate identically: running the heap
    /// cluster in two chunks (which rebuilds the heap and re-admits
    /// finished cores) equals the reference's single run of the total.
    #[test]
    fn incremental_runs_match_one_shot_reference(
        mixes in prop::collection::vec(0u8..3, 1..5),
        seed_base in 0u64..1_000,
        first in 300u64..1_500,
        second in 300u64..1_500,
    ) {
        let mut live = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            sources(&mixes, seed_base),
        );
        live.run(first, &mut PassiveHandler);
        live.run(second, &mut PassiveHandler);

        let mut reference = ReferenceCluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            sources(&mixes, seed_base),
        );
        reference.run(first, &mut PassiveHandler);
        reference.run(second, &mut PassiveHandler);

        prop_assert_eq!(live.stats(), reference.stats());
    }

    /// Replayed basic-block-granularity recordings (the throughput
    /// benchmark's workload shape, where compute batching folds the most
    /// events) must also interleave identically.
    #[test]
    fn quantized_replay_matches_reference(
        mixes in prop::collection::vec(0u8..3, 1..5),
        seed_base in 0u64..1_000,
        quantum in 1u64..8,
        budget in 500u64..3_000,
    ) {
        let traces: Vec<RecordedTrace> = mixes
            .iter()
            .enumerate()
            .map(|(i, &mix)| {
                let profile = profile_for(mix, "oracle_replay");
                let mut workload =
                    SyntheticWorkload::new(&profile, seed_base + i as u64);
                RecordedTrace::record(&mut workload, budget).quantize_compute(quantum)
            })
            .collect();

        let mut live = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            traces.iter().map(|t| t.replay()).collect(),
        );
        let mut live_log = InterleavingLog::default();
        live.run(budget, &mut live_log);

        let mut reference = ReferenceCluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            traces.iter().map(|t| t.replay()).collect(),
        );
        let mut reference_log = InterleavingLog::default();
        reference.run(budget, &mut reference_log);

        prop_assert_eq!(live_log.entries, reference_log.entries);
        prop_assert_eq!(live.stats(), reference.stats());
    }
}
