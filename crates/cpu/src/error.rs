//! Fallible-entry-point errors for front-ends that must not abort.
//!
//! The panicking constructors and run methods keep their documented
//! behaviour (a bad hard-coded config in a benchmark *should* abort), but
//! each user-reachable validation also exists as a `try_*` method
//! returning [`RunError`], which CLI front-ends convert into error
//! messages instead of release-binary aborts.

use core::fmt;

/// Why a cluster/core construction or run request was rejected. The
/// corresponding panicking entry points abort with the same message text.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A run was asked to retire zero instructions.
    ZeroInstructions,
    /// A cluster was built from an empty source list.
    NoCores,
    /// A cluster was asked for zero memory channels.
    ZeroChannels,
    /// A sharded run was asked for zero shards.
    ZeroShards,
    /// A sharded run observed its cancellation token before completing.
    /// The cluster is left in a consistent state — every channel either
    /// fully reached the current target or was not started — and can be
    /// finished with `Cluster::try_resume_sharded`.
    Cancelled,
    /// The shared memory hierarchy's configuration was rejected (bad DRAM
    /// geometry, zero MSHRs, inconsistent fault plan, ...).
    Memory(mapg_mem::ConfigError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::ZeroInstructions => f.write_str("must run at least one instruction"),
            RunError::NoCores => f.write_str("a cluster needs at least one core"),
            RunError::ZeroChannels => f.write_str("a cluster needs at least one memory channel"),
            RunError::ZeroShards => f.write_str("a sharded run needs at least one shard"),
            RunError::Cancelled => f.write_str("sharded run cancelled before completion"),
            RunError::Memory(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RunError {}

impl From<mapg_mem::ConfigError> for RunError {
    fn from(e: mapg_mem::ConfigError) -> Self {
        RunError::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_match_the_panicking_paths() {
        assert!(RunError::ZeroInstructions
            .to_string()
            .contains("at least one instruction"));
        assert!(RunError::NoCores.to_string().contains("at least one core"));
        assert!(RunError::ZeroChannels
            .to_string()
            .contains("at least one memory channel"));
        assert!(RunError::ZeroShards
            .to_string()
            .contains("at least one shard"));
        assert!(RunError::Cancelled.to_string().contains("cancelled"));
        let memory = RunError::from(mapg_mem::ConfigError::ZeroMshrs);
        assert!(memory
            .to_string()
            .contains("MSHR capacity must be non-zero"));
    }
}
