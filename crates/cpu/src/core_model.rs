//! The bounded-MLP core.

use mapg_mem::{LatencyHistogram, MemoryHierarchy, ServiceLevel};
use mapg_obs::{EventKind, ObsHandle, Scope};
use mapg_trace::{AccessKind, EventSource, TraceEvent};
use mapg_units::{Cycle, Cycles, Hertz};

use crate::error::RunError;
use crate::stall::{CoreId, StallCause, StallHandler, StallInfo};

/// Static core parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Maximum LLC misses the core can overlap before blocking (the
    /// ROB/issue-queue-imposed MLP bound).
    pub mlp_limit: usize,
    /// Extra cycles charged for a load served by L2 (the un-hidable part of
    /// the LLC hit latency in an out-of-order pipeline).
    pub l2_hit_penalty: Cycles,
    /// Core clock frequency (converts cycle counts to wall-clock time and
    /// energy downstream).
    pub clock: Hertz,
}

impl CoreConfig {
    /// The workspace default: 8-deep MLP, 10-cycle exposed L2 penalty,
    /// 2 GHz clock.
    pub fn baseline() -> Self {
        CoreConfig {
            mlp_limit: 8,
            l2_hit_penalty: Cycles::new(10),
            clock: Hertz::from_ghz(2.0),
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::baseline()
    }
}

/// Execution statistics for one core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Final core timestamp (total elapsed cycles).
    pub total_cycles: u64,
    /// Cycles spent blocked in stalls (including wake-up penalties added by
    /// the handler).
    pub stall_cycles: u64,
    /// Number of distinct stall intervals.
    pub stall_count: u64,
    /// Cycles of stall time added *beyond* data arrival by the handler
    /// (wake-up penalties; zero for the passive baseline).
    pub penalty_cycles: u64,
    /// Distribution of natural stall durations (before penalties).
    pub stall_durations: LatencyHistogram,
    /// Loads served by DRAM (LLC misses the core observed).
    pub dram_loads: u64,
    /// Injected long-idle periods observed.
    pub idle_periods: u64,
    /// Stall cycles attributed to the MLP limit.
    pub mlp_stall_cycles: u64,
    /// Stall cycles attributed to dependent (pointer-chase) waits.
    pub dependency_stall_cycles: u64,
    /// Stall cycles attributed to injected idle periods.
    pub idle_stall_cycles: u64,
}

impl CoreStats {
    pub(crate) fn new() -> Self {
        CoreStats {
            instructions: 0,
            total_cycles: 0,
            stall_cycles: 0,
            stall_count: 0,
            penalty_cycles: 0,
            stall_durations: LatencyHistogram::new(),
            dram_loads: 0,
            idle_periods: 0,
            mlp_stall_cycles: 0,
            dependency_stall_cycles: 0,
            idle_stall_cycles: 0,
        }
    }

    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.total_cycles as f64
        }
    }

    /// Fraction of time spent blocked on memory.
    pub fn stall_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Cycles the core was actively executing.
    pub fn active_cycles(&self) -> u64 {
        self.total_cycles - self.stall_cycles
    }

    /// Audits internal consistency: stall time is bounded by total time,
    /// the per-cause breakdown partitions the stall total, and penalties
    /// are part of the stall time. Returns one message per broken law.
    pub fn audit(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.stall_cycles > self.total_cycles {
            problems.push(format!(
                "core accounting: stall {} exceeds total {} cycles",
                self.stall_cycles, self.total_cycles
            ));
        }
        let breakdown =
            self.mlp_stall_cycles + self.dependency_stall_cycles + self.idle_stall_cycles;
        if breakdown != self.stall_cycles {
            problems.push(format!(
                "core accounting: cause breakdown {} != stall total {}",
                breakdown, self.stall_cycles
            ));
        }
        if self.penalty_cycles > self.stall_cycles {
            problems.push(format!(
                "core accounting: penalty {} exceeds stall {} cycles",
                self.penalty_cycles, self.stall_cycles
            ));
        }
        problems
    }
}

/// A single core executing an event stream against a shared hierarchy.
///
/// See the [crate-level docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Core<S> {
    id: CoreId,
    config: CoreConfig,
    source: S,
    now: Cycle,
    /// Completion times of in-flight DRAM loads, unordered.
    outstanding: Vec<Cycle>,
    /// Exact minimum of `outstanding`, `u64::MAX` when empty. `prune` runs
    /// after every time hop, so the nothing-completed-yet case must be one
    /// compare instead of a `retain` sweep.
    earliest_outstanding: Cycle,
    /// Completion of the most recently issued DRAM load (dependency target).
    last_miss_completion: Cycle,
    /// One-event lookahead used by compute batching: when
    /// [`Core::step_batched`] folds a run of consecutive `Compute` events,
    /// the first non-compute event it pulls is parked here and consumed by
    /// the next step.
    pending: Option<TraceEvent>,
    stats: CoreStats,
    obs: ObsHandle,
}

impl<S: EventSource> Core<S> {
    /// Creates a core with id 0; use [`Core::with_id`] inside clusters.
    pub fn new(config: CoreConfig, source: S) -> Self {
        Core::with_id(CoreId(0), config, source)
    }

    /// Creates a core with an explicit id.
    ///
    /// # Panics
    ///
    /// Panics if `config.mlp_limit` is zero — a core that cannot tolerate a
    /// single outstanding miss cannot make progress past its first one.
    pub fn with_id(id: CoreId, config: CoreConfig, source: S) -> Self {
        assert!(config.mlp_limit > 0, "mlp_limit must be at least 1");
        Core {
            id,
            config,
            source,
            now: Cycle::ZERO,
            outstanding: Vec::with_capacity(config.mlp_limit),
            earliest_outstanding: Cycle::new(u64::MAX),
            last_miss_completion: Cycle::ZERO,
            pending: None,
            stats: CoreStats::new(),
            obs: ObsHandle::disabled(),
        }
    }

    /// Attaches an observability handle; stall begin/end events and
    /// stall-length metrics flow through it from now on.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The core's current timestamp.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Runs until at least `instructions` have retired.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero.
    pub fn run<H: StallHandler>(
        &mut self,
        instructions: u64,
        memory: &mut MemoryHierarchy,
        handler: &mut H,
    ) {
        assert!(instructions > 0, "must run at least one instruction");
        self.try_run(instructions, memory, handler)
            .expect("instruction count validated above");
    }

    /// Fallible form of [`Core::run`] for user-supplied budgets.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ZeroInstructions`] if `instructions` is zero.
    pub fn try_run<H: StallHandler>(
        &mut self,
        instructions: u64,
        memory: &mut MemoryHierarchy,
        handler: &mut H,
    ) -> Result<(), RunError> {
        if instructions == 0 {
            return Err(RunError::ZeroInstructions);
        }
        let target = self.stats.instructions + instructions;
        while self.stats.instructions < target {
            self.step_batched(target, memory, handler);
        }
        self.stats.total_cycles = self.now.raw();
        Ok(())
    }

    /// The next event to execute: the parked lookahead if batching stashed
    /// one, otherwise a fresh event from the source.
    fn next_event(&mut self) -> TraceEvent {
        self.pending
            .take()
            .unwrap_or_else(|| self.source.next_event())
    }

    /// Processes exactly one trace event. Exposed so clusters can interleave
    /// cores in global time order.
    pub fn step<H: StallHandler>(&mut self, memory: &mut MemoryHierarchy, handler: &mut H) {
        let event = self.next_event();
        self.process(event, memory, handler);
    }

    /// Processes one *batched* step: a run of consecutive `Compute` events
    /// is folded into a single time hop, stopping at the first non-compute
    /// event (which is parked in `pending`) or once the folded batch reaches
    /// `target` retired instructions.
    ///
    /// Equivalent to calling [`Core::step`] per event: compute events touch
    /// no shared state (no memory access, no stall callback, no obs
    /// events), so only their summed `cycles`/`instructions` are
    /// observable, and the target bound makes the batch consume exactly
    /// the events a per-event loop bounded by `target` would. In
    /// particular batching can never skip a stall boundary — the event
    /// that *would* stall ends the batch and runs on the next step.
    pub fn step_batched<H: StallHandler>(
        &mut self,
        target: u64,
        memory: &mut MemoryHierarchy,
        handler: &mut H,
    ) {
        let mut event = self.next_event();
        if let TraceEvent::Compute {
            mut cycles,
            mut instructions,
        } = event
        {
            while self.stats.instructions + instructions < target {
                match self.source.next_event() {
                    TraceEvent::Compute {
                        cycles: c,
                        instructions: i,
                    } => {
                        cycles += c;
                        instructions += i;
                    }
                    other => {
                        self.pending = Some(other);
                        break;
                    }
                }
            }
            event = TraceEvent::Compute {
                cycles,
                instructions,
            };
        }
        self.process(event, memory, handler);
    }

    /// Executes one (possibly folded) trace event against the hierarchy.
    fn process<H: StallHandler>(
        &mut self,
        event: TraceEvent,
        memory: &mut MemoryHierarchy,
        handler: &mut H,
    ) {
        self.stats.instructions += event.instructions();
        match event {
            TraceEvent::Compute { cycles, .. } => {
                self.now += Cycles::new(cycles);
                self.prune();
            }
            TraceEvent::Idle { cycles } => {
                // The program blocks: surface the interval to the power
                // controller exactly like a memory stall (it is the
                // classic idle-gating opportunity). `pc = 0` marks the
                // idle class for predictors.
                self.stats.idle_periods += 1;
                let resume_at = self.now + Cycles::new(cycles.max(1));
                self.stall(StallCause::Idle, resume_at, 0, handler);
            }
            TraceEvent::MemAccess(access) => {
                // A dependent access cannot issue while its producer miss is
                // in flight.
                if access.dependent {
                    self.prune();
                    if !self.outstanding.is_empty() && self.last_miss_completion > self.now {
                        self.stall(
                            StallCause::Dependency,
                            self.last_miss_completion,
                            access.pc,
                            handler,
                        );
                    }
                }
                let response = memory.access(self.now, &access);
                match (access.kind, response.level) {
                    (AccessKind::Store, _) => {
                        // Posted: one issue cycle, never blocks.
                        self.now += Cycles::new(1);
                    }
                    (AccessKind::Load, ServiceLevel::L1) => {
                        self.now += Cycles::new(1);
                    }
                    (AccessKind::Load, ServiceLevel::L2) => {
                        self.now += self.config.l2_hit_penalty;
                    }
                    (AccessKind::Load, ServiceLevel::Dram) => {
                        self.stats.dram_loads += 1;
                        self.outstanding.push(response.completion);
                        self.earliest_outstanding =
                            self.earliest_outstanding.min(response.completion);
                        self.last_miss_completion = response.completion;
                        self.now += Cycles::new(1);
                        self.prune();
                        if self.outstanding.len() >= self.config.mlp_limit {
                            // `earliest_outstanding` is exact (push
                            // min-folds it, prune recomputes it), so it is
                            // the oldest in-flight completion.
                            self.stall(
                                StallCause::MlpLimit,
                                self.earliest_outstanding,
                                access.pc,
                                handler,
                            );
                        }
                    }
                }
            }
        }
        self.stats.total_cycles = self.now.raw();
    }

    /// Blocks the core until `data_ready` (plus whatever penalty the
    /// handler adds) and accounts the stall.
    fn stall<H: StallHandler>(
        &mut self,
        cause: StallCause,
        data_ready: Cycle,
        pc: u64,
        handler: &mut H,
    ) {
        debug_assert!(data_ready > self.now, "stall must have positive length");
        let info = StallInfo {
            core: self.id,
            start: self.now,
            data_ready,
            pc,
            outstanding: self.outstanding.len(),
            cause,
        };
        let scope = Scope::Core(self.id.0 as u32);
        self.obs.emit(self.now.raw(), scope, EventKind::StallBegin);
        self.obs.count("core_stalls", 1);
        self.obs
            .observe("stall_length", info.natural_duration().raw());
        let resume = handler.on_stall(&info);
        debug_assert!(
            resume >= data_ready,
            "handler resumed before data arrival: {resume} < {data_ready}"
        );
        let resume = resume.max(data_ready);
        self.stats.stall_count += 1;
        let span = (resume - self.now).raw();
        self.stats.stall_cycles += span;
        match cause {
            StallCause::MlpLimit => self.stats.mlp_stall_cycles += span,
            StallCause::Dependency => {
                self.stats.dependency_stall_cycles += span;
            }
            StallCause::Idle => self.stats.idle_stall_cycles += span,
        }
        self.stats.penalty_cycles += (resume - data_ready).raw();
        self.stats.stall_durations.record(info.natural_duration());
        self.obs.emit(resume.raw(), scope, EventKind::StallEnd);
        self.now = resume;
        self.prune();
    }

    /// Retires outstanding misses that have completed.
    fn prune(&mut self) {
        let now = self.now;
        if self.earliest_outstanding > now {
            return;
        }
        let mut earliest = Cycle::new(u64::MAX);
        self.outstanding.retain(|&c| {
            if c > now {
                earliest = earliest.min(c);
                true
            } else {
                false
            }
        });
        self.earliest_outstanding = earliest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stall::PassiveHandler;
    use mapg_mem::HierarchyConfig;
    use mapg_trace::{MemAccess, SyntheticWorkload, WorkloadProfile};

    /// A scripted event source for precise tests.
    struct Script {
        events: std::vec::IntoIter<TraceEvent>,
    }

    impl Script {
        fn new(events: Vec<TraceEvent>) -> Self {
            Script {
                events: events.into_iter(),
            }
        }
    }

    impl EventSource for Script {
        fn next_event(&mut self) -> TraceEvent {
            self.events.next().unwrap_or(TraceEvent::Compute {
                cycles: 1,
                instructions: 1,
            })
        }

        fn name(&self) -> &str {
            "script"
        }
    }

    fn dep_load(addr: u64) -> TraceEvent {
        TraceEvent::MemAccess(MemAccess {
            addr,
            pc: 0x400,
            kind: AccessKind::Load,
            dependent: true,
        })
    }

    fn load(addr: u64) -> TraceEvent {
        TraceEvent::MemAccess(MemAccess {
            addr,
            pc: 0x404,
            kind: AccessKind::Load,
            dependent: false,
        })
    }

    #[test]
    fn compute_advances_time_without_stalls() {
        let script = Script::new(vec![
            TraceEvent::Compute {
                cycles: 100,
                instructions: 200,
            };
            5
        ]);
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut core = Core::new(CoreConfig::baseline(), script);
        core.run(1000, &mut memory, &mut PassiveHandler);
        assert_eq!(core.stats().stall_count, 0);
        assert_eq!(core.stats().instructions, 1000);
        assert_eq!(core.stats().total_cycles, 500);
        assert!((core.stats().ipc() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dependent_load_chain_stalls_per_miss() {
        // Two dependent loads to distinct cold lines: the second must wait
        // for the first's DRAM fill.
        let script = Script::new(vec![dep_load(0x10_0000), dep_load(0x20_0000)]);
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut core = Core::new(CoreConfig::baseline(), script);
        core.run(2, &mut memory, &mut PassiveHandler);
        assert_eq!(core.stats().stall_count, 1);
        assert!(core.stats().stall_cycles > 50, "DRAM latency is long");
        assert_eq!(core.stats().penalty_cycles, 0, "passive adds no penalty");
    }

    #[test]
    fn independent_loads_overlap_until_mlp_limit() {
        // mlp_limit = 2: the third independent miss trips the limit.
        let config = CoreConfig {
            mlp_limit: 2,
            ..CoreConfig::baseline()
        };
        let script = Script::new(vec![load(0x10_0000), load(0x20_0000), load(0x30_0000)]);
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut core = Core::new(config, script);
        core.run(3, &mut memory, &mut PassiveHandler);
        assert_eq!(core.stats().stall_count, 2, "2nd and 3rd trip the limit");
        assert_eq!(core.stats().dram_loads, 3);
    }

    #[test]
    fn handler_penalty_lands_on_critical_path() {
        struct PenaltyHandler;
        impl StallHandler for PenaltyHandler {
            fn on_stall(&mut self, info: &StallInfo) -> Cycle {
                info.data_ready + Cycles::new(25)
            }
        }
        let script = Script::new(vec![dep_load(0x10_0000), dep_load(0x20_0000)]);
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut core = Core::new(CoreConfig::baseline(), script);
        core.run(2, &mut memory, &mut PenaltyHandler);
        assert_eq!(core.stats().penalty_cycles, 25);
        assert_eq!(core.stats().stall_count, 1);
    }

    #[test]
    fn mem_bound_profile_stalls_heavily_compute_bound_barely() {
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mem_profile = WorkloadProfile::mem_bound("m");
        let mut mem_core = Core::new(
            CoreConfig::baseline(),
            SyntheticWorkload::new(&mem_profile, 3),
        );
        mem_core.run(300_000, &mut memory, &mut PassiveHandler);

        let mut memory2 = MemoryHierarchy::new(HierarchyConfig::baseline());
        let cpu_profile = WorkloadProfile::compute_bound("c");
        let mut cpu_core = Core::new(
            CoreConfig::baseline(),
            SyntheticWorkload::new(&cpu_profile, 3),
        );
        cpu_core.run(300_000, &mut memory2, &mut PassiveHandler);

        let mem_stall = mem_core.stats().stall_fraction();
        let cpu_stall = cpu_core.stats().stall_fraction();
        assert!(
            mem_stall > 0.3,
            "memory-bound stall fraction too low: {mem_stall}"
        );
        assert!(
            cpu_stall < mem_stall / 2.0,
            "compute-bound ({cpu_stall}) should stall far less than memory-bound ({mem_stall})"
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let profile = WorkloadProfile::mixed("consistency");
        let mut core = Core::new(CoreConfig::baseline(), SyntheticWorkload::new(&profile, 11));
        core.run(200_000, &mut memory, &mut PassiveHandler);
        let stats = core.stats();
        assert!(stats.instructions >= 200_000);
        assert!(stats.stall_cycles <= stats.total_cycles);
        assert_eq!(
            stats.active_cycles() + stats.stall_cycles,
            stats.total_cycles
        );
        assert_eq!(stats.stall_durations.count(), stats.stall_count);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    #[should_panic(expected = "mlp_limit")]
    fn zero_mlp_rejected() {
        let script = Script::new(vec![]);
        let _ = Core::new(
            CoreConfig {
                mlp_limit: 0,
                ..CoreConfig::baseline()
            },
            script,
        );
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn zero_instruction_run_rejected() {
        let script = Script::new(vec![]);
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut core = Core::new(CoreConfig::baseline(), script);
        core.run(0, &mut memory, &mut PassiveHandler);
    }

    #[test]
    fn zero_instruction_try_run_errors() {
        let script = Script::new(vec![]);
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut core = Core::new(CoreConfig::baseline(), script);
        assert_eq!(
            core.try_run(0, &mut memory, &mut PassiveHandler),
            Err(crate::error::RunError::ZeroInstructions)
        );
    }

    #[test]
    fn batching_stops_at_stall_boundary() {
        // Two computes, then a dependent-load pair that must stall: the
        // batch may fold the computes but must not swallow the loads.
        let script = Script::new(vec![
            TraceEvent::Compute {
                cycles: 10,
                instructions: 10,
            },
            TraceEvent::Compute {
                cycles: 20,
                instructions: 10,
            },
            dep_load(0x10_0000),
            dep_load(0x20_0000),
        ]);
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut core = Core::new(CoreConfig::baseline(), script);
        core.run(22, &mut memory, &mut PassiveHandler);
        assert_eq!(core.stats().instructions, 22);
        assert_eq!(core.stats().stall_count, 1, "the second load must stall");
        assert_eq!(core.stats().dram_loads, 2);
    }

    #[test]
    fn batching_respects_instruction_target() {
        // An endless compute stream (the Script fallback): the batch must
        // stop folding exactly at the target, not run away.
        let script = Script::new(vec![]);
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let mut core = Core::new(CoreConfig::baseline(), script);
        core.run(1_000, &mut memory, &mut PassiveHandler);
        assert_eq!(core.stats().instructions, 1_000);
        assert_eq!(core.stats().total_cycles, 1_000);
    }

    #[test]
    fn batched_and_single_stepping_agree() {
        let events = vec![
            TraceEvent::Compute {
                cycles: 5,
                instructions: 8,
            },
            TraceEvent::Compute {
                cycles: 7,
                instructions: 4,
            },
            load(0x10_0000),
            TraceEvent::Compute {
                cycles: 3,
                instructions: 6,
            },
            dep_load(0x20_0000),
            TraceEvent::Idle { cycles: 50 },
        ];
        let run = |batched: bool| {
            let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
            let mut core = Core::new(CoreConfig::baseline(), Script::new(events.clone()));
            let target = 40;
            while core.stats().instructions < target {
                if batched {
                    core.step_batched(target, &mut memory, &mut PassiveHandler);
                } else {
                    core.step(&mut memory, &mut PassiveHandler);
                }
            }
            core.stats().clone()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn stall_cause_breakdown_partitions_stall_cycles() {
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let profile = WorkloadProfile::mem_bound("breakdown");
        let mut core = Core::new(CoreConfig::baseline(), SyntheticWorkload::new(&profile, 13));
        core.run(200_000, &mut memory, &mut PassiveHandler);
        let stats = core.stats();
        assert_eq!(
            stats.mlp_stall_cycles + stats.dependency_stall_cycles + stats.idle_stall_cycles,
            stats.stall_cycles,
            "cause breakdown must partition the stall total"
        );
        // A pointer-chasing profile has both MLP and dependency stalls,
        // and no injected idle.
        assert!(stats.dependency_stall_cycles > 0);
        assert!(stats.mlp_stall_cycles > 0);
        assert_eq!(stats.idle_stall_cycles, 0);
    }

    #[test]
    fn idle_events_surface_as_idle_stalls() {
        use mapg_trace::IdleInjection;
        let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
        let profile = WorkloadProfile::builder("idle_surface")
            .mem_refs_per_kilo_inst(20.0)
            .idle_injection(IdleInjection::new(5_000, 100_000))
            .build();
        let mut core = Core::new(CoreConfig::baseline(), SyntheticWorkload::new(&profile, 3));
        core.run(50_000, &mut memory, &mut PassiveHandler);
        let stats = core.stats();
        assert!(stats.idle_periods > 0, "injection must fire");
        assert!(stats.idle_stall_cycles >= stats.idle_periods * 100_000);
    }

    #[test]
    fn determinism_full_stack() {
        let profile = WorkloadProfile::mem_bound("det");
        let run = |seed| {
            let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
            let mut core = Core::new(
                CoreConfig::baseline(),
                SyntheticWorkload::new(&profile, seed),
            );
            core.run(100_000, &mut memory, &mut PassiveHandler);
            (
                core.stats().total_cycles,
                core.stats().stall_cycles,
                core.stats().stall_count,
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should differ");
    }
}
