//! Stable k-way merge of key-sorted streams — the sharded engine's trace
//! recombiner.
//!
//! Each shard channel produces its trace capture already sorted by the
//! per-step scheduling key (it is a subsequence of the global wheel's
//! `(time, core)` order; DESIGN.md §13.2), so reconstructing global
//! emission order is a *merge*, not a sort. The previous implementation
//! concatenated all channels and ran a global stable `sort_by_key` —
//! O(N log N) per segment with N total records; [`KwayMerger`] replaces
//! that with a tournament tree over the C channel streams, O(N log C),
//! and emits records straight into the parent sink so no merged
//! intermediate vector ever exists.
//!
//! # Equivalence to concat + stable sort
//!
//! The tree picks, at every step, the minimum `(key, stream_index)` pair
//! among the stream fronts. Within a stream, records come out in stream
//! order (streams are consumed front to back). Across streams, equal keys
//! resolve to the lower stream index — exactly where a *stable* sort of
//! the concatenation (stream 0 first, then stream 1, …) would have placed
//! them. So the emitted sequence is identical to the old
//! `concat-in-channel-order` + `sort_by_key` for every input, including
//! adversarial cross-stream key duplicates — a property pinned by
//! `tests/proptest_merge.rs`. (In the sharded engine cross-channel keys
//! never tie anyway — the key embeds the unique core index — so the
//! tie-break is belt and braces.)

use std::iter::Peekable;
use std::vec::Drain;

/// Sentinel stream index for an empty tournament subtree.
const EXHAUSTED: u32 = u32::MAX;

/// A reusable k-way tournament merger for key-sorted `(u128, T)` streams.
///
/// The only persistent state is the tournament tree's index buffer, so
/// one merger amortizes across segments: a steady-state
/// [`merge`](KwayMerger::merge) call allocates nothing beyond a
/// k-element iterator list. Input vectors are drained in place — their
/// capacity survives for the caller to recycle as next segment's capture
/// buffers.
#[derive(Debug, Default)]
pub struct KwayMerger {
    /// `winners[n]` is the stream index winning node `n`'s
    /// sub-tournament (`EXHAUSTED` when the subtree is empty). Leaves sit
    /// at `width..width + k` for `width = k.next_power_of_two()`; node 1
    /// is the root.
    winners: Vec<u32>,
}

impl KwayMerger {
    /// A merger with no tree capacity yet (grown on first use).
    pub fn new() -> Self {
        KwayMerger::default()
    }

    /// Merges the key-sorted `streams` into a single nondecreasing-key
    /// sequence, calling `emit` once per record. Equal keys order by
    /// stream index (then by within-stream position), which makes the
    /// output byte-identical to concatenating the streams in order and
    /// stable-sorting by key.
    ///
    /// Every stream is drained: the vectors come back empty with their
    /// allocations intact.
    ///
    /// # Panics
    ///
    /// Debug builds assert each stream is key-sorted; release builds
    /// silently produce garbage on unsorted input, like `sort_by_key`
    /// misuse would.
    pub fn merge<T>(&mut self, streams: &mut [Vec<(u128, T)>], mut emit: impl FnMut(u128, T)) {
        debug_assert!(streams
            .iter()
            .all(|s| s.windows(2).all(|w| w[0].0 <= w[1].0)));
        let k = streams.len();
        if k == 0 {
            return;
        }
        if k == 1 {
            for (key, value) in streams[0].drain(..) {
                emit(key, value);
            }
            return;
        }

        let mut drains: Vec<Peekable<Drain<'_, (u128, T)>>> =
            streams.iter_mut().map(|s| s.drain(..).peekable()).collect();
        let width = k.next_power_of_two();
        self.winners.clear();
        self.winners.resize(2 * width, EXHAUSTED);
        for i in 0..k {
            self.winners[width + i] = i as u32;
        }
        for node in (1..width).rev() {
            self.winners[node] = play(
                &mut drains,
                self.winners[2 * node],
                self.winners[2 * node + 1],
            );
        }

        loop {
            let winner = self.winners[1];
            if front(&mut drains, winner).is_none() {
                return;
            }
            let (key, value) = drains[winner as usize]
                .next()
                .expect("winner stream has a front record");
            emit(key, value);
            // Replay the matches along the winner's leaf-to-root path;
            // every other node's outcome is unchanged.
            let mut node = (width + winner as usize) / 2;
            while node >= 1 {
                self.winners[node] = play(
                    &mut drains,
                    self.winners[2 * node],
                    self.winners[2 * node + 1],
                );
                node /= 2;
            }
        }
    }
}

/// The front key of `stream`, `None` when the stream (or subtree) is
/// exhausted.
fn front<T>(drains: &mut [Peekable<Drain<'_, (u128, T)>>], stream: u32) -> Option<u128> {
    if stream == EXHAUSTED {
        return None;
    }
    drains[stream as usize].peek().map(|(key, _)| *key)
}

/// One tournament match: the smaller `(key, stream_index)` pair wins,
/// exhausted subtrees lose to everything. The index tie-break is the
/// stability guarantee.
fn play<T>(drains: &mut [Peekable<Drain<'_, (u128, T)>>], a: u32, b: u32) -> u32 {
    match (front(drains, a), front(drains, b)) {
        (None, _) => b,
        (_, None) => a,
        (Some(key_a), Some(key_b)) => {
            if (key_b, b) < (key_a, a) {
                b
            } else {
                a
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: the old concat + stable sort.
    fn oracle<T: Clone>(streams: &[Vec<(u128, T)>]) -> Vec<(u128, T)> {
        let mut merged: Vec<(u128, T)> = streams.iter().flatten().cloned().collect();
        merged.sort_by_key(|(key, _)| *key);
        merged
    }

    fn run_merge(mut streams: Vec<Vec<(u128, u32)>>) -> Vec<(u128, u32)> {
        let expected = oracle(&streams);
        let mut merger = KwayMerger::new();
        let mut out = Vec::new();
        merger.merge(&mut streams, |key, value| out.push((key, value)));
        assert!(streams.iter().all(Vec::is_empty), "streams fully drained");
        assert_eq!(out, expected);
        out
    }

    #[test]
    fn empty_and_single_stream_edges() {
        run_merge(vec![]);
        run_merge(vec![vec![]]);
        run_merge(vec![vec![], vec![], vec![]]);
        run_merge(vec![vec![(1, 0), (2, 1), (2, 2)]]);
    }

    #[test]
    fn disjoint_streams_interleave_by_key() {
        let out = run_merge(vec![
            vec![(10, 0), (40, 1)],
            vec![(20, 2), (50, 3)],
            vec![(30, 4)],
        ]);
        assert_eq!(out, vec![(10, 0), (20, 2), (30, 4), (40, 1), (50, 3)]);
    }

    #[test]
    fn duplicate_keys_resolve_to_the_lower_stream() {
        // Same key everywhere: output must be stream 0's records, then
        // stream 1's, then stream 2's — concatenation order, i.e. what a
        // stable sort of the concat leaves in place.
        let out = run_merge(vec![
            vec![(7, 0), (7, 1)],
            vec![(7, 10), (7, 11)],
            vec![(7, 20)],
        ]);
        assert_eq!(out, vec![(7, 0), (7, 1), (7, 10), (7, 11), (7, 20)]);
    }

    #[test]
    fn extreme_keys_are_data_not_sentinels() {
        // u128::MAX is a legal key: exhaustion is tracked by stream
        // position, not a reserved key value.
        run_merge(vec![
            vec![(0, 0), (u128::MAX, 1)],
            vec![(u128::MAX, 2), (u128::MAX, 3)],
        ]);
    }

    #[test]
    fn non_power_of_two_stream_counts() {
        for k in 1..=9usize {
            let streams: Vec<Vec<(u128, u32)>> = (0..k)
                .map(|s| (0..5u128).map(|i| (i * 3 + s as u128, s as u32)).collect())
                .collect();
            run_merge(streams);
        }
    }

    #[test]
    fn merger_reuses_across_calls_of_different_widths() {
        let mut merger = KwayMerger::new();
        for k in [5usize, 2, 8, 1, 3] {
            let mut streams: Vec<Vec<(u128, u32)>> = (0..k)
                .map(|s| (0..4u128).map(|i| (i, s as u32)).collect())
                .collect();
            let expected = oracle(&streams);
            let mut out = Vec::new();
            merger.merge(&mut streams, |key, value| out.push((key, value)));
            assert_eq!(out, expected, "k = {k}");
        }
    }
}
