//! The retained "before" core/cluster stack, kept verbatim as an executable
//! specification.
//!
//! [`ReferenceCluster`] is the execution model exactly as this workspace
//! shipped it before the event-wheel rewrite: one trace event per step, a
//! linear `min_by_key` re-scan of every core on every event to find the next
//! core to advance, and the frozen seed memory hierarchy
//! ([`mapg_mem::ReferenceHierarchy`]) underneath. Together with that
//! hierarchy it forms the complete seed simulator, retained for two jobs:
//!
//! - **equivalence oracle** — the scheduler-equivalence suite demands that
//!   the optimized stack ([`Cluster::run`](crate::Cluster::run) with compute
//!   batching, the heap scheduler and the flattened caches) reproduces this
//!   stack's core interleaving, statistics and `RunReport`s bit-for-bit
//!   across random core counts, workload mixes and seeds;
//! - **throughput baseline** — the `bench-throughput` harness and the
//!   `scheduler` criterion bench measure the optimized stack's
//!   simulated-cycles-per-second against this one, so the committed speedup
//!   is a true before/after comparison reproducible in one binary.
//!
//! Nothing here should be optimized: its cost *is* the baseline.

use mapg_mem::{HierarchyConfig, ReferenceHierarchy, ServiceLevel};
use mapg_obs::{EventKind, ObsHandle, Scope};
use mapg_trace::{AccessKind, EventSource, TraceEvent};
use mapg_units::{Cycle, Cycles};

use crate::cluster::ClusterStats;
use crate::core_model::{CoreConfig, CoreStats};
use crate::error::RunError;
use crate::stall::{CoreId, StallCause, StallHandler, StallInfo};

/// The seed core: strictly one trace event per step, no compute batching,
/// no event lookahead.
#[derive(Debug, Clone)]
struct ReferenceCore<S> {
    id: CoreId,
    config: CoreConfig,
    source: S,
    now: Cycle,
    outstanding: Vec<Cycle>,
    last_miss_completion: Cycle,
    stats: CoreStats,
    obs: ObsHandle,
}

impl<S: EventSource> ReferenceCore<S> {
    fn with_id(id: CoreId, config: CoreConfig, source: S) -> Self {
        assert!(config.mlp_limit > 0, "mlp_limit must be at least 1");
        ReferenceCore {
            id,
            config,
            source,
            now: Cycle::ZERO,
            outstanding: Vec::with_capacity(config.mlp_limit),
            last_miss_completion: Cycle::ZERO,
            stats: CoreStats::new(),
            obs: ObsHandle::disabled(),
        }
    }

    fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    fn step<H: StallHandler>(&mut self, memory: &mut ReferenceHierarchy, handler: &mut H) {
        let event = self.source.next_event();
        self.process(event, memory, handler);
    }

    fn process<H: StallHandler>(
        &mut self,
        event: TraceEvent,
        memory: &mut ReferenceHierarchy,
        handler: &mut H,
    ) {
        self.stats.instructions += event.instructions();
        match event {
            TraceEvent::Compute { cycles, .. } => {
                self.now += Cycles::new(cycles);
                self.prune();
            }
            TraceEvent::Idle { cycles } => {
                self.stats.idle_periods += 1;
                let resume_at = self.now + Cycles::new(cycles.max(1));
                self.stall(StallCause::Idle, resume_at, 0, handler);
            }
            TraceEvent::MemAccess(access) => {
                if access.dependent {
                    self.prune();
                    if !self.outstanding.is_empty() && self.last_miss_completion > self.now {
                        self.stall(
                            StallCause::Dependency,
                            self.last_miss_completion,
                            access.pc,
                            handler,
                        );
                    }
                }
                let response = memory.access(self.now, &access);
                match (access.kind, response.level) {
                    (AccessKind::Store, _) => {
                        self.now += Cycles::new(1);
                    }
                    (AccessKind::Load, ServiceLevel::L1) => {
                        self.now += Cycles::new(1);
                    }
                    (AccessKind::Load, ServiceLevel::L2) => {
                        self.now += self.config.l2_hit_penalty;
                    }
                    (AccessKind::Load, ServiceLevel::Dram) => {
                        self.stats.dram_loads += 1;
                        self.outstanding.push(response.completion);
                        self.last_miss_completion = response.completion;
                        self.now += Cycles::new(1);
                        self.prune();
                        if self.outstanding.len() >= self.config.mlp_limit {
                            let oldest = self
                                .outstanding
                                .iter()
                                .copied()
                                .min()
                                .expect("outstanding non-empty at MLP limit");
                            self.stall(StallCause::MlpLimit, oldest, access.pc, handler);
                        }
                    }
                }
            }
        }
        self.stats.total_cycles = self.now.raw();
    }

    fn stall<H: StallHandler>(
        &mut self,
        cause: StallCause,
        data_ready: Cycle,
        pc: u64,
        handler: &mut H,
    ) {
        debug_assert!(data_ready > self.now, "stall must have positive length");
        let info = StallInfo {
            core: self.id,
            start: self.now,
            data_ready,
            pc,
            outstanding: self.outstanding.len(),
            cause,
        };
        let scope = Scope::Core(self.id.0 as u32);
        self.obs.emit(self.now.raw(), scope, EventKind::StallBegin);
        self.obs.count("core_stalls", 1);
        self.obs
            .observe("stall_length", info.natural_duration().raw());
        let resume = handler.on_stall(&info);
        debug_assert!(
            resume >= data_ready,
            "handler resumed before data arrival: {resume} < {data_ready}"
        );
        let resume = resume.max(data_ready);
        self.stats.stall_count += 1;
        let span = (resume - self.now).raw();
        self.stats.stall_cycles += span;
        match cause {
            StallCause::MlpLimit => self.stats.mlp_stall_cycles += span,
            StallCause::Dependency => {
                self.stats.dependency_stall_cycles += span;
            }
            StallCause::Idle => self.stats.idle_stall_cycles += span,
        }
        self.stats.penalty_cycles += (resume - data_ready).raw();
        self.stats.stall_durations.record(info.natural_duration());
        self.obs.emit(resume.raw(), scope, EventKind::StallEnd);
        self.now = resume;
        self.prune();
    }

    fn prune(&mut self) {
        let now = self.now;
        self.outstanding.retain(|&c| c > now);
    }
}

/// The seed cluster: a linear `min_by_key` re-scan of every core on every
/// single event step, exactly as [`Cluster::run`](crate::Cluster::run) was
/// implemented before the event-wheel rewrite, over the frozen seed memory
/// hierarchy.
///
/// The API mirrors [`Cluster`](crate::Cluster) where the equivalence suite
/// and the throughput harness need it: construction from the same configs
/// and sources, [`set_obs`](ReferenceCluster::set_obs),
/// [`run`](ReferenceCluster::run) /
/// [`try_run`](ReferenceCluster::try_run), and a [`ClusterStats`] snapshot
/// that must compare equal to the optimized cluster's.
#[derive(Debug)]
pub struct ReferenceCluster<S> {
    cores: Vec<ReferenceCore<S>>,
    memories: Vec<ReferenceHierarchy>,
    channels: usize,
    target: u64,
}

impl<S: EventSource> ReferenceCluster<S> {
    /// Builds the frozen seed cluster — one core per source, a fresh seed
    /// hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty.
    pub fn new(core_config: CoreConfig, memory_config: HierarchyConfig, sources: Vec<S>) -> Self {
        match ReferenceCluster::try_new(core_config, memory_config, sources) {
            Ok(cluster) => cluster,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`ReferenceCluster::new`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError::NoCores`] if `sources` is empty.
    pub fn try_new(
        core_config: CoreConfig,
        memory_config: HierarchyConfig,
        sources: Vec<S>,
    ) -> Result<Self, RunError> {
        ReferenceCluster::try_new_with_channels(core_config, memory_config, sources, 1)
    }

    /// The seed cluster over `channels` independent seed hierarchies
    /// (core `i` → channel `i % channels`), mirroring
    /// [`Cluster::try_new_with_channels`](crate::Cluster::try_new_with_channels)
    /// — including the clamp of `channels` to the core count — so the
    /// equivalence suite can oracle multi-channel topologies too.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::NoCores`] if `sources` is empty or
    /// [`RunError::ZeroChannels`] if `channels` is zero.
    pub fn try_new_with_channels(
        core_config: CoreConfig,
        memory_config: HierarchyConfig,
        sources: Vec<S>,
        channels: usize,
    ) -> Result<Self, RunError> {
        if sources.is_empty() {
            return Err(RunError::NoCores);
        }
        if channels == 0 {
            return Err(RunError::ZeroChannels);
        }
        let channels = channels.min(sources.len());
        let cores: Vec<_> = sources
            .into_iter()
            .enumerate()
            .map(|(i, source)| ReferenceCore::with_id(CoreId(i), core_config, source))
            .collect();
        Ok(ReferenceCluster {
            cores,
            memories: (0..channels)
                .map(|_| ReferenceHierarchy::new(memory_config))
                .collect(),
            channels,
            target: 0,
        })
    }

    /// Attaches an observability handle to every core and the hierarchy,
    /// with the same wiring as [`Cluster::set_obs`](crate::Cluster::set_obs).
    pub fn set_obs(&mut self, obs: ObsHandle) {
        for core in &mut self.cores {
            core.set_obs(obs.clone());
        }
        for memory in &mut self.memories {
            memory.set_obs(obs.clone());
        }
    }

    /// The seed scheduler loop: re-scan all cores, step the one with the
    /// smallest local timestamp, one event at a time.
    ///
    /// # Panics
    ///
    /// Panics if `instructions_per_core` is zero.
    pub fn run<H: StallHandler>(&mut self, instructions_per_core: u64, handler: &mut H) {
        assert!(
            instructions_per_core > 0,
            "must run at least one instruction per core"
        );
        self.try_run(instructions_per_core, handler)
            .expect("instruction count validated above");
    }

    /// Fallible form of [`ReferenceCluster::run`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ZeroInstructions`] if `instructions_per_core`
    /// is zero.
    pub fn try_run<H: StallHandler>(
        &mut self,
        instructions_per_core: u64,
        handler: &mut H,
    ) -> Result<(), RunError> {
        if instructions_per_core == 0 {
            return Err(RunError::ZeroInstructions);
        }
        self.target += instructions_per_core;
        loop {
            let next = self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, c)| c.stats.instructions < self.target)
                .min_by_key(|(_, c)| c.now)
                .map(|(i, _)| i);
            let Some(index) = next else { break };
            self.cores[index].step(&mut self.memories[index % self.channels], handler);
        }
        Ok(())
    }

    /// Per-core and shared-memory statistics, in the same shape as
    /// [`Cluster::stats`](crate::Cluster::stats) (memory summed across
    /// channels in channel order).
    pub fn stats(&self) -> ClusterStats {
        let mut memory = self.memories[0].stats();
        for channel in &self.memories[1..] {
            memory.merge(&channel.stats());
        }
        ClusterStats {
            per_core: self.cores.iter().map(|c| c.stats.clone()).collect(),
            memory,
        }
    }
}
