//! Multi-core clusters over one or more memory channels.

use mapg_mem::{HierarchyConfig, HierarchyStats, MemoryHierarchy};
use mapg_trace::EventSource;
use mapg_units::Cycle;

use crate::core_model::{Core, CoreConfig, CoreStats};
use crate::error::RunError;
use crate::merge::KwayMerger;
use crate::sched::{CoreKey, SchedHeap};
use crate::shard::ChannelCapture;
use crate::stall::{CoreId, StallHandler};

/// N cores in front of C independent [`MemoryHierarchy`] channels
/// (`C == 1`, the default, is the classic fully-shared topology).
///
/// Core `i` issues every access to channel `i % C`; cores on the same
/// channel contend for its caches, MSHRs, and DRAM banks exactly as the
/// single-channel cluster always has, while cores on different channels
/// never touch shared memory state. That explicit topology is what the
/// sharded engine ([`Cluster::try_run_sharded`]) exploits: a shard owns
/// whole channels, so shards are independent and can run in parallel with
/// bit-identical results.
///
/// Cores are stepped in **global time order** (always the core with the
/// smallest local timestamp advances next), so contention at a shared
/// channel — extra queueing when many cores miss together — emerges
/// naturally from the bank/bus free times rather than being modelled
/// analytically.
///
/// Scheduling uses a binary min-heap keyed by `(local_time, core_index)`
/// — O(log N) per decision instead of the O(N) re-scan the original
/// implementation paid — plus a *run-ahead* loop: the minimum core keeps
/// stepping without any heap traffic for as long as it remains the global
/// minimum. Ties in local time deterministically resolve to the lowest
/// core index, so the interleaving is bit-identical to the retained
/// linear-scan seed stack ([`ReferenceCluster`](crate::ReferenceCluster)).
///
/// ```
/// use mapg_cpu::{Cluster, CoreConfig, PassiveHandler};
/// use mapg_mem::HierarchyConfig;
/// use mapg_trace::{SyntheticWorkload, WorkloadProfile};
///
/// let profile = WorkloadProfile::mem_bound("shared");
/// let sources: Vec<_> = (0..4)
///     .map(|i| SyntheticWorkload::new(&profile, 100 + i))
///     .collect();
/// let mut cluster = Cluster::new(
///     CoreConfig::baseline(),
///     HierarchyConfig::baseline(),
///     sources,
/// );
/// cluster.run(50_000, &mut PassiveHandler);
/// assert_eq!(cluster.stats().per_core.len(), 4);
/// ```
#[derive(Debug)]
pub struct Cluster<S> {
    pub(crate) cores: Vec<Core<S>>,
    pub(crate) memories: Vec<MemoryHierarchy>,
    pub(crate) channels: usize,
    pub(crate) target: u64,
    pub(crate) obs: mapg_obs::ObsHandle,
    /// Unmerged per-channel observability captures from a cancelled
    /// sharded segment; merged (in channel order) once every channel
    /// reaches the current target. See `shard.rs`.
    pub(crate) captures: Vec<Option<ChannelCapture>>,
    /// Drained capture buffers recycled back to the shard workers, so the
    /// sharded segment loop stops allocating once warm. See `shard.rs`.
    pub(crate) trace_spares: Vec<Vec<(u128, mapg_obs::TraceRecord)>>,
    /// Reusable stream list fed to `merger` each merge.
    pub(crate) merge_streams: Vec<Vec<(u128, mapg_obs::TraceRecord)>>,
    /// The k-way tournament merger recombining shard trace captures.
    pub(crate) merger: KwayMerger,
}

/// Statistics snapshot for a whole cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Per-core execution statistics, indexed by [`CoreId`].
    pub per_core: Vec<CoreStats>,
    /// The memory counters summed over every channel (channel 0 first;
    /// the merge is deterministic in channel order).
    pub memory: HierarchyStats,
}

impl ClusterStats {
    /// Total instructions retired across cores.
    pub fn total_instructions(&self) -> u64 {
        self.per_core.iter().map(|c| c.instructions).sum()
    }

    /// The slowest core's finishing time — the cluster's makespan.
    pub fn makespan_cycles(&self) -> u64 {
        self.per_core
            .iter()
            .map(|c| c.total_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Aggregate throughput: instructions per (makespan) cycle.
    pub fn aggregate_ipc(&self) -> f64 {
        let makespan = self.makespan_cycles();
        if makespan == 0 {
            0.0
        } else {
            self.total_instructions() as f64 / makespan as f64
        }
    }
}

impl<S: EventSource> Cluster<S> {
    /// Builds a cluster with one core per event source, all sharing a
    /// single fresh hierarchy (the classic one-channel topology).
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty.
    pub fn new(core_config: CoreConfig, memory_config: HierarchyConfig, sources: Vec<S>) -> Self {
        match Cluster::try_new(core_config, memory_config, sources) {
            Ok(cluster) => cluster,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Cluster::new`] for user-supplied configurations.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::NoCores`] if `sources` is empty, or
    /// [`RunError::Memory`] if the hierarchy configuration fails
    /// validation (zero DRAM banks, zero MSHRs, bad fault plan, ...).
    pub fn try_new(
        core_config: CoreConfig,
        memory_config: HierarchyConfig,
        sources: Vec<S>,
    ) -> Result<Self, RunError> {
        Cluster::try_new_with_channels(core_config, memory_config, sources, 1)
    }

    /// Builds a cluster whose cores are spread round-robin over
    /// `channels` independent memory hierarchies (core `i` → channel
    /// `i % channels`), each constructed from the same `memory_config`.
    ///
    /// A channel count above the core count is clamped: empty channels
    /// cannot carry traffic and would only dilute the merged statistics.
    /// With `channels == 1` this is exactly [`Cluster::try_new`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError::NoCores`] if `sources` is empty,
    /// [`RunError::ZeroChannels`] if `channels` is zero, or
    /// [`RunError::Memory`] if the hierarchy configuration fails
    /// validation.
    pub fn try_new_with_channels(
        core_config: CoreConfig,
        memory_config: HierarchyConfig,
        sources: Vec<S>,
        channels: usize,
    ) -> Result<Self, RunError> {
        if sources.is_empty() {
            return Err(RunError::NoCores);
        }
        if channels == 0 {
            return Err(RunError::ZeroChannels);
        }
        let channels = channels.min(sources.len());
        let memories = (0..channels)
            .map(|_| MemoryHierarchy::try_new(memory_config))
            .collect::<Result<Vec<_>, _>>()?;
        let cores = sources
            .into_iter()
            .enumerate()
            .map(|(i, source)| Core::with_id(CoreId(i), core_config, source))
            .collect();
        Ok(Cluster {
            cores,
            memories,
            channels,
            target: 0,
            obs: mapg_obs::ObsHandle::disabled(),
            captures: (0..channels).map(|_| None).collect(),
            trace_spares: Vec::new(),
            merge_streams: Vec::new(),
            merger: KwayMerger::new(),
        })
    }

    /// Attaches an observability handle to every core and to each memory
    /// channel. Stall spans then carry per-core scopes and DRAM fault
    /// events per-bank scopes.
    pub fn set_obs(&mut self, obs: mapg_obs::ObsHandle) {
        for core in &mut self.cores {
            core.set_obs(obs.clone());
        }
        for memory in &mut self.memories {
            memory.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the cluster has no cores (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Number of independent memory channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Runs every core for at least `instructions_per_core` instructions,
    /// interleaved in global time order.
    ///
    /// # Panics
    ///
    /// Panics if `instructions_per_core` is zero.
    pub fn run<H: StallHandler>(&mut self, instructions_per_core: u64, handler: &mut H) {
        assert!(
            instructions_per_core > 0,
            "must run at least one instruction per core"
        );
        self.try_run(instructions_per_core, handler)
            .expect("instruction count validated above");
    }

    /// Fallible form of [`Cluster::run`] for user-supplied budgets.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ZeroInstructions`] if `instructions_per_core`
    /// is zero.
    pub fn try_run<H: StallHandler>(
        &mut self,
        instructions_per_core: u64,
        handler: &mut H,
    ) -> Result<(), RunError> {
        if instructions_per_core == 0 {
            return Err(RunError::ZeroInstructions);
        }
        debug_assert!(
            !self.has_pending_captures(),
            "a cancelled sharded segment must be resumed (try_resume_sharded) \
             before driving the cluster with a stateful handler"
        );
        self.target += instructions_per_core;
        let target = self.target;
        self.run_wheel(target, handler);
        Ok(())
    }

    /// The global event wheel: one heap over every core, the minimum
    /// advancing next, run to `target` retired instructions per core.
    pub(crate) fn run_wheel<H: StallHandler>(&mut self, target: u64, handler: &mut H) {
        // Heap of unfinished cores keyed by (local time, index); rebuilt
        // per call so incremental runs re-admit previously finished cores.
        let mut heap = SchedHeap::with_capacity(self.cores.len());
        for (i, core) in self.cores.iter().enumerate() {
            if core.stats().instructions < target {
                heap.push(CoreKey::new(core.now(), i as u32));
            }
        }

        let channels = self.channels;
        let mut next = heap.pop();
        while let Some(key) = next {
            let index = key.index();
            let core = &mut self.cores[index as usize];
            let memory = &mut self.memories[index as usize % channels];
            // Run-ahead: the popped core is the global minimum; keep
            // stepping it — one batched event per iteration, zero heap
            // traffic — until it either finishes or falls behind another
            // core. Only then does its key re-enter the heap, fused with
            // the extraction of the new minimum in a single sift.
            loop {
                core.step_batched(target, memory, handler);
                if core.stats().instructions >= target {
                    next = heap.pop();
                    break;
                }
                let key = CoreKey::new(core.now(), index);
                let min = heap.replace_min(key);
                if min != key {
                    next = Some(min);
                    break;
                }
            }
        }
    }

    /// Per-core and memory statistics (memory summed across channels in
    /// channel order).
    pub fn stats(&self) -> ClusterStats {
        let mut memory = self.memories[0].stats();
        for channel in &self.memories[1..] {
            memory.merge(&channel.stats());
        }
        ClusterStats {
            per_core: self.cores.iter().map(|c| c.stats().clone()).collect(),
            memory,
        }
    }

    /// The current timestamp of core `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core_now(&self, id: CoreId) -> Cycle {
        self.cores[id.0].now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stall::PassiveHandler;
    use mapg_trace::{SyntheticWorkload, WorkloadProfile};

    fn mem_sources(n: usize) -> Vec<SyntheticWorkload> {
        let profile = WorkloadProfile::mem_bound("cluster_mem");
        (0..n)
            .map(|i| SyntheticWorkload::new(&profile, 1000 + i as u64))
            .collect()
    }

    #[test]
    fn all_cores_reach_target() {
        let mut cluster = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(4),
        );
        cluster.run(20_000, &mut PassiveHandler);
        let stats = cluster.stats();
        assert_eq!(stats.per_core.len(), 4);
        for core in &stats.per_core {
            assert!(core.instructions >= 20_000);
        }
        assert!(stats.total_instructions() >= 80_000);
        assert!(stats.aggregate_ipc() > 0.0);
    }

    #[test]
    fn shared_dram_contention_slows_cores_down() {
        // One core alone vs the same core sharing DRAM with three copies.
        let solo_cycles = {
            let mut cluster = Cluster::new(
                CoreConfig::baseline(),
                HierarchyConfig::baseline(),
                mem_sources(1),
            );
            cluster.run(50_000, &mut PassiveHandler);
            cluster.stats().per_core[0].total_cycles
        };
        let shared_cycles = {
            let mut cluster = Cluster::new(
                CoreConfig::baseline(),
                HierarchyConfig::baseline(),
                mem_sources(4),
            );
            cluster.run(50_000, &mut PassiveHandler);
            cluster.stats().per_core[0].total_cycles
        };
        assert!(
            shared_cycles > solo_cycles,
            "4-way sharing ({shared_cycles}) must be slower than solo ({solo_cycles})"
        );
    }

    /// Splitting four cores over two channels halves the contention each
    /// core sees: cores must finish no later than in the fully-shared
    /// topology, and the merged access counters must cover all cores.
    #[test]
    fn extra_channels_relieve_contention() {
        let shared = {
            let mut cluster = Cluster::new(
                CoreConfig::baseline(),
                HierarchyConfig::baseline(),
                mem_sources(4),
            );
            cluster.run(30_000, &mut PassiveHandler);
            cluster.stats()
        };
        let split = {
            let mut cluster = Cluster::try_new_with_channels(
                CoreConfig::baseline(),
                HierarchyConfig::baseline(),
                mem_sources(4),
                2,
            )
            .expect("valid channel count");
            assert_eq!(cluster.channels(), 2);
            cluster.run(30_000, &mut PassiveHandler);
            cluster.stats()
        };
        assert!(
            split.makespan_cycles() < shared.makespan_cycles(),
            "two channels ({}) must beat one ({})",
            split.makespan_cycles(),
            shared.makespan_cycles()
        );
        assert_eq!(split.per_core.len(), 4);
        assert!(split.memory.l1.accesses > 0);
        // Each topology retires the same work.
        assert_eq!(
            split
                .per_core
                .iter()
                .map(|c| c.instructions)
                .collect::<Vec<_>>(),
            shared
                .per_core
                .iter()
                .map(|c| c.instructions)
                .collect::<Vec<_>>(),
        );
    }

    /// One core per channel removes cross-core memory coupling entirely:
    /// each core must behave exactly like a solo single-channel run.
    #[test]
    fn fully_channelled_cores_match_solo_runs() {
        let mut split = Cluster::try_new_with_channels(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(3),
            3,
        )
        .expect("valid channel count");
        split.run(20_000, &mut PassiveHandler);
        let split_stats = split.stats();
        for i in 0..3 {
            let mut solo = Cluster::new(
                CoreConfig::baseline(),
                HierarchyConfig::baseline(),
                vec![mem_sources(3).remove(i)],
            );
            solo.run(20_000, &mut PassiveHandler);
            let expected = solo.stats().per_core[0].clone();
            // Identity differs (solo cores are always core 0); timing and
            // work must not.
            let actual = &split_stats.per_core[i];
            assert_eq!(actual.instructions, expected.instructions, "core {i}");
            assert_eq!(actual.total_cycles, expected.total_cycles, "core {i}");
            assert_eq!(actual.stall_count, expected.stall_count, "core {i}");
        }
    }

    #[test]
    fn channel_count_is_clamped_to_cores() {
        let cluster = Cluster::try_new_with_channels(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(2),
            8,
        )
        .expect("valid");
        assert_eq!(cluster.channels(), 2);
    }

    #[test]
    fn zero_channels_rejected() {
        let err = Cluster::try_new_with_channels(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(2),
            0,
        )
        .unwrap_err();
        assert_eq!(err, RunError::ZeroChannels);
    }

    #[test]
    fn incremental_runs_accumulate() {
        let mut cluster = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(2),
        );
        cluster.run(10_000, &mut PassiveHandler);
        let first = cluster.stats().total_instructions();
        cluster.run(10_000, &mut PassiveHandler);
        let second = cluster.stats().total_instructions();
        assert!(first >= 20_000);
        assert!(second >= 40_000, "both cores must reach the raised target");
        assert!(second > first);
    }

    /// Single-core clusters drive the run-ahead loop against an *empty*
    /// heap for the whole run: `replace_min` must hand the lone core its
    /// key straight back every iteration, and the run must still hit the
    /// target exactly as a multi-core run would.
    #[test]
    fn single_core_cluster_runs_ahead_to_target() {
        let mut cluster = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(1),
        );
        cluster.run(20_000, &mut PassiveHandler);
        assert!(cluster.stats().per_core[0].instructions >= 20_000);
        // And again: re-admission of the lone finished core.
        cluster.run(20_000, &mut PassiveHandler);
        assert!(cluster.stats().per_core[0].instructions >= 40_000);
    }

    /// A zero-instruction budget would admit no cores (an empty heap from
    /// the start); `run` pins that degenerate case behind an explicit
    /// assert rather than silently doing nothing.
    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn zero_budget_run_is_rejected() {
        let mut cluster = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(2),
        );
        cluster.run(0, &mut PassiveHandler);
    }

    #[test]
    fn cluster_is_deterministic() {
        let run = || {
            let mut cluster = Cluster::new(
                CoreConfig::baseline(),
                HierarchyConfig::baseline(),
                mem_sources(3),
            );
            cluster.run(30_000, &mut PassiveHandler);
            cluster.stats().makespan_cycles()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_cluster_rejected() {
        let _ = Cluster::<SyntheticWorkload>::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            vec![],
        );
    }

    #[test]
    fn accessors() {
        let cluster = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(2),
        );
        assert_eq!(cluster.len(), 2);
        assert!(!cluster.is_empty());
        assert_eq!(cluster.channels(), 1);
        assert_eq!(cluster.core_now(CoreId(1)), Cycle::ZERO);
    }
}
