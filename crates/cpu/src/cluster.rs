//! Multi-core clusters sharing one memory hierarchy.

use mapg_mem::{HierarchyConfig, HierarchyStats, MemoryHierarchy};
use mapg_trace::EventSource;
use mapg_units::Cycle;

use crate::core_model::{Core, CoreConfig, CoreStats};
use crate::error::RunError;
use crate::sched::{CoreKey, SchedHeap};
use crate::stall::{CoreId, StallHandler};

/// N cores in front of one shared [`MemoryHierarchy`].
///
/// Cores are stepped in **global time order** (always the core with the
/// smallest local timestamp advances next), so contention at the shared
/// DRAM — extra queueing when many cores miss together — emerges naturally
/// from the bank/bus free times rather than being modelled analytically.
///
/// Scheduling uses a binary min-heap keyed by `(local_time, core_index)`
/// — O(log N) per decision instead of the O(N) re-scan the original
/// implementation paid — plus a *run-ahead* loop: the minimum core keeps
/// stepping without any heap traffic for as long as it remains the global
/// minimum. Ties in local time deterministically resolve to the lowest
/// core index, so the interleaving is bit-identical to the retained
/// linear-scan seed stack ([`ReferenceCluster`](crate::ReferenceCluster)).
///
/// ```
/// use mapg_cpu::{Cluster, CoreConfig, PassiveHandler};
/// use mapg_mem::HierarchyConfig;
/// use mapg_trace::{SyntheticWorkload, WorkloadProfile};
///
/// let profile = WorkloadProfile::mem_bound("shared");
/// let sources: Vec<_> = (0..4)
///     .map(|i| SyntheticWorkload::new(&profile, 100 + i))
///     .collect();
/// let mut cluster = Cluster::new(
///     CoreConfig::baseline(),
///     HierarchyConfig::baseline(),
///     sources,
/// );
/// cluster.run(50_000, &mut PassiveHandler);
/// assert_eq!(cluster.stats().per_core.len(), 4);
/// ```
#[derive(Debug)]
pub struct Cluster<S> {
    cores: Vec<Core<S>>,
    memory: MemoryHierarchy,
    target: u64,
}

/// Statistics snapshot for a whole cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Per-core execution statistics, indexed by [`CoreId`].
    pub per_core: Vec<CoreStats>,
    /// The shared hierarchy's counters.
    pub memory: HierarchyStats,
}

impl ClusterStats {
    /// Total instructions retired across cores.
    pub fn total_instructions(&self) -> u64 {
        self.per_core.iter().map(|c| c.instructions).sum()
    }

    /// The slowest core's finishing time — the cluster's makespan.
    pub fn makespan_cycles(&self) -> u64 {
        self.per_core
            .iter()
            .map(|c| c.total_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Aggregate throughput: instructions per (makespan) cycle.
    pub fn aggregate_ipc(&self) -> f64 {
        let makespan = self.makespan_cycles();
        if makespan == 0 {
            0.0
        } else {
            self.total_instructions() as f64 / makespan as f64
        }
    }
}

impl<S: EventSource> Cluster<S> {
    /// Builds a cluster with one core per event source, all sharing a fresh
    /// hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty.
    pub fn new(core_config: CoreConfig, memory_config: HierarchyConfig, sources: Vec<S>) -> Self {
        match Cluster::try_new(core_config, memory_config, sources) {
            Ok(cluster) => cluster,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Cluster::new`] for user-supplied configurations.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::NoCores`] if `sources` is empty, or
    /// [`RunError::Memory`] if the hierarchy configuration fails
    /// validation (zero DRAM banks, zero MSHRs, bad fault plan, ...).
    pub fn try_new(
        core_config: CoreConfig,
        memory_config: HierarchyConfig,
        sources: Vec<S>,
    ) -> Result<Self, RunError> {
        if sources.is_empty() {
            return Err(RunError::NoCores);
        }
        let memory = MemoryHierarchy::try_new(memory_config)?;
        let cores = sources
            .into_iter()
            .enumerate()
            .map(|(i, source)| Core::with_id(CoreId(i), core_config, source))
            .collect();
        Ok(Cluster {
            cores,
            memory,
            target: 0,
        })
    }

    /// Attaches an observability handle to every core and to the shared
    /// memory hierarchy. Stall spans then carry per-core scopes and DRAM
    /// fault events per-bank scopes.
    pub fn set_obs(&mut self, obs: mapg_obs::ObsHandle) {
        for core in &mut self.cores {
            core.set_obs(obs.clone());
        }
        self.memory.set_obs(obs);
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the cluster has no cores (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Runs every core for at least `instructions_per_core` instructions,
    /// interleaved in global time order.
    ///
    /// # Panics
    ///
    /// Panics if `instructions_per_core` is zero.
    pub fn run<H: StallHandler>(&mut self, instructions_per_core: u64, handler: &mut H) {
        assert!(
            instructions_per_core > 0,
            "must run at least one instruction per core"
        );
        self.try_run(instructions_per_core, handler)
            .expect("instruction count validated above");
    }

    /// Fallible form of [`Cluster::run`] for user-supplied budgets.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ZeroInstructions`] if `instructions_per_core`
    /// is zero.
    pub fn try_run<H: StallHandler>(
        &mut self,
        instructions_per_core: u64,
        handler: &mut H,
    ) -> Result<(), RunError> {
        if instructions_per_core == 0 {
            return Err(RunError::ZeroInstructions);
        }
        self.target += instructions_per_core;
        let target = self.target;

        // Heap of unfinished cores keyed by (local time, index); rebuilt
        // per call so incremental runs re-admit previously finished cores.
        let mut heap = SchedHeap::with_capacity(self.cores.len());
        for (i, core) in self.cores.iter().enumerate() {
            if core.stats().instructions < target {
                heap.push(CoreKey::new(core.now(), i as u32));
            }
        }

        let mut next = heap.pop();
        while let Some(key) = next {
            let index = key.index();
            let core = &mut self.cores[index as usize];
            // Run-ahead: the popped core is the global minimum; keep
            // stepping it — one batched event per iteration, zero heap
            // traffic — until it either finishes or falls behind another
            // core. Only then does its key re-enter the heap, fused with
            // the extraction of the new minimum in a single sift.
            loop {
                core.step_batched(target, &mut self.memory, handler);
                if core.stats().instructions >= target {
                    next = heap.pop();
                    break;
                }
                let key = CoreKey::new(core.now(), index);
                let min = heap.replace_min(key);
                if min != key {
                    next = Some(min);
                    break;
                }
            }
        }
        Ok(())
    }

    /// Per-core and shared-memory statistics.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            per_core: self.cores.iter().map(|c| c.stats().clone()).collect(),
            memory: self.memory.stats(),
        }
    }

    /// The current timestamp of core `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core_now(&self, id: CoreId) -> Cycle {
        self.cores[id.0].now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stall::PassiveHandler;
    use mapg_trace::{SyntheticWorkload, WorkloadProfile};

    fn mem_sources(n: usize) -> Vec<SyntheticWorkload> {
        let profile = WorkloadProfile::mem_bound("cluster_mem");
        (0..n)
            .map(|i| SyntheticWorkload::new(&profile, 1000 + i as u64))
            .collect()
    }

    #[test]
    fn all_cores_reach_target() {
        let mut cluster = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(4),
        );
        cluster.run(20_000, &mut PassiveHandler);
        let stats = cluster.stats();
        assert_eq!(stats.per_core.len(), 4);
        for core in &stats.per_core {
            assert!(core.instructions >= 20_000);
        }
        assert!(stats.total_instructions() >= 80_000);
        assert!(stats.aggregate_ipc() > 0.0);
    }

    #[test]
    fn shared_dram_contention_slows_cores_down() {
        // One core alone vs the same core sharing DRAM with three copies.
        let solo_cycles = {
            let mut cluster = Cluster::new(
                CoreConfig::baseline(),
                HierarchyConfig::baseline(),
                mem_sources(1),
            );
            cluster.run(50_000, &mut PassiveHandler);
            cluster.stats().per_core[0].total_cycles
        };
        let shared_cycles = {
            let mut cluster = Cluster::new(
                CoreConfig::baseline(),
                HierarchyConfig::baseline(),
                mem_sources(4),
            );
            cluster.run(50_000, &mut PassiveHandler);
            cluster.stats().per_core[0].total_cycles
        };
        assert!(
            shared_cycles > solo_cycles,
            "4-way sharing ({shared_cycles}) must be slower than solo ({solo_cycles})"
        );
    }

    #[test]
    fn incremental_runs_accumulate() {
        let mut cluster = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(2),
        );
        cluster.run(10_000, &mut PassiveHandler);
        let first = cluster.stats().total_instructions();
        cluster.run(10_000, &mut PassiveHandler);
        let second = cluster.stats().total_instructions();
        assert!(first >= 20_000);
        assert!(second >= 40_000, "both cores must reach the raised target");
        assert!(second > first);
    }

    /// Single-core clusters drive the run-ahead loop against an *empty*
    /// heap for the whole run: `replace_min` must hand the lone core its
    /// key straight back every iteration, and the run must still hit the
    /// target exactly as a multi-core run would.
    #[test]
    fn single_core_cluster_runs_ahead_to_target() {
        let mut cluster = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(1),
        );
        cluster.run(20_000, &mut PassiveHandler);
        assert!(cluster.stats().per_core[0].instructions >= 20_000);
        // And again: re-admission of the lone finished core.
        cluster.run(20_000, &mut PassiveHandler);
        assert!(cluster.stats().per_core[0].instructions >= 40_000);
    }

    /// A zero-instruction budget would admit no cores (an empty heap from
    /// the start); `run` pins that degenerate case behind an explicit
    /// assert rather than silently doing nothing.
    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn zero_budget_run_is_rejected() {
        let mut cluster = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(2),
        );
        cluster.run(0, &mut PassiveHandler);
    }

    #[test]
    fn cluster_is_deterministic() {
        let run = || {
            let mut cluster = Cluster::new(
                CoreConfig::baseline(),
                HierarchyConfig::baseline(),
                mem_sources(3),
            );
            cluster.run(30_000, &mut PassiveHandler);
            cluster.stats().makespan_cycles()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_cluster_rejected() {
        let _ = Cluster::<SyntheticWorkload>::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            vec![],
        );
    }

    #[test]
    fn accessors() {
        let cluster = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(2),
        );
        assert_eq!(cluster.len(), 2);
        assert!(!cluster.is_empty());
        assert_eq!(cluster.core_now(CoreId(1)), Cycle::ZERO);
    }
}
