//! Multi-core clusters sharing one memory hierarchy.

use mapg_mem::{HierarchyConfig, HierarchyStats, MemoryHierarchy};
use mapg_trace::EventSource;
use mapg_units::Cycle;

use crate::core_model::{Core, CoreConfig, CoreStats};
use crate::stall::{CoreId, StallHandler};

/// N cores in front of one shared [`MemoryHierarchy`].
///
/// Cores are stepped in **global time order** (always the core with the
/// smallest local timestamp advances next), so contention at the shared
/// DRAM — extra queueing when many cores miss together — emerges naturally
/// from the bank/bus free times rather than being modelled analytically.
///
/// ```
/// use mapg_cpu::{Cluster, CoreConfig, PassiveHandler};
/// use mapg_mem::HierarchyConfig;
/// use mapg_trace::{SyntheticWorkload, WorkloadProfile};
///
/// let profile = WorkloadProfile::mem_bound("shared");
/// let sources: Vec<_> = (0..4)
///     .map(|i| SyntheticWorkload::new(&profile, 100 + i))
///     .collect();
/// let mut cluster = Cluster::new(
///     CoreConfig::baseline(),
///     HierarchyConfig::baseline(),
///     sources,
/// );
/// cluster.run(50_000, &mut PassiveHandler);
/// assert_eq!(cluster.stats().per_core.len(), 4);
/// ```
#[derive(Debug)]
pub struct Cluster<S> {
    cores: Vec<Core<S>>,
    memory: MemoryHierarchy,
    target: u64,
}

/// Statistics snapshot for a whole cluster.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Per-core execution statistics, indexed by [`CoreId`].
    pub per_core: Vec<CoreStats>,
    /// The shared hierarchy's counters.
    pub memory: HierarchyStats,
}

impl ClusterStats {
    /// Total instructions retired across cores.
    pub fn total_instructions(&self) -> u64 {
        self.per_core.iter().map(|c| c.instructions).sum()
    }

    /// The slowest core's finishing time — the cluster's makespan.
    pub fn makespan_cycles(&self) -> u64 {
        self.per_core
            .iter()
            .map(|c| c.total_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Aggregate throughput: instructions per (makespan) cycle.
    pub fn aggregate_ipc(&self) -> f64 {
        let makespan = self.makespan_cycles();
        if makespan == 0 {
            0.0
        } else {
            self.total_instructions() as f64 / makespan as f64
        }
    }
}

impl<S: EventSource> Cluster<S> {
    /// Builds a cluster with one core per event source, all sharing a fresh
    /// hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty.
    pub fn new(core_config: CoreConfig, memory_config: HierarchyConfig, sources: Vec<S>) -> Self {
        assert!(!sources.is_empty(), "a cluster needs at least one core");
        let cores = sources
            .into_iter()
            .enumerate()
            .map(|(i, source)| Core::with_id(CoreId(i), core_config, source))
            .collect();
        Cluster {
            cores,
            memory: MemoryHierarchy::new(memory_config),
            target: 0,
        }
    }

    /// Attaches an observability handle to every core and to the shared
    /// memory hierarchy. Stall spans then carry per-core scopes and DRAM
    /// fault events per-bank scopes.
    pub fn set_obs(&mut self, obs: mapg_obs::ObsHandle) {
        for core in &mut self.cores {
            core.set_obs(obs.clone());
        }
        self.memory.set_obs(obs);
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the cluster has no cores (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Runs every core for at least `instructions_per_core` instructions,
    /// interleaved in global time order.
    ///
    /// # Panics
    ///
    /// Panics if `instructions_per_core` is zero.
    pub fn run<H: StallHandler>(&mut self, instructions_per_core: u64, handler: &mut H) {
        assert!(
            instructions_per_core > 0,
            "must run at least one instruction per core"
        );
        self.target += instructions_per_core;
        loop {
            // Pick the unfinished core with the smallest local time.
            let next = self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, c)| c.stats().instructions < self.target)
                .min_by_key(|(_, c)| c.now())
                .map(|(i, _)| i);
            let Some(index) = next else { break };
            self.cores[index].step(&mut self.memory, handler);
        }
    }

    /// Per-core and shared-memory statistics.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            per_core: self.cores.iter().map(|c| c.stats().clone()).collect(),
            memory: self.memory.stats(),
        }
    }

    /// The current timestamp of core `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn core_now(&self, id: CoreId) -> Cycle {
        self.cores[id.0].now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stall::PassiveHandler;
    use mapg_trace::{SyntheticWorkload, WorkloadProfile};

    fn mem_sources(n: usize) -> Vec<SyntheticWorkload> {
        let profile = WorkloadProfile::mem_bound("cluster_mem");
        (0..n)
            .map(|i| SyntheticWorkload::new(&profile, 1000 + i as u64))
            .collect()
    }

    #[test]
    fn all_cores_reach_target() {
        let mut cluster = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(4),
        );
        cluster.run(20_000, &mut PassiveHandler);
        let stats = cluster.stats();
        assert_eq!(stats.per_core.len(), 4);
        for core in &stats.per_core {
            assert!(core.instructions >= 20_000);
        }
        assert!(stats.total_instructions() >= 80_000);
        assert!(stats.aggregate_ipc() > 0.0);
    }

    #[test]
    fn shared_dram_contention_slows_cores_down() {
        // One core alone vs the same core sharing DRAM with three copies.
        let solo_cycles = {
            let mut cluster = Cluster::new(
                CoreConfig::baseline(),
                HierarchyConfig::baseline(),
                mem_sources(1),
            );
            cluster.run(50_000, &mut PassiveHandler);
            cluster.stats().per_core[0].total_cycles
        };
        let shared_cycles = {
            let mut cluster = Cluster::new(
                CoreConfig::baseline(),
                HierarchyConfig::baseline(),
                mem_sources(4),
            );
            cluster.run(50_000, &mut PassiveHandler);
            cluster.stats().per_core[0].total_cycles
        };
        assert!(
            shared_cycles > solo_cycles,
            "4-way sharing ({shared_cycles}) must be slower than solo ({solo_cycles})"
        );
    }

    #[test]
    fn incremental_runs_accumulate() {
        let mut cluster = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(2),
        );
        cluster.run(10_000, &mut PassiveHandler);
        let first = cluster.stats().total_instructions();
        cluster.run(10_000, &mut PassiveHandler);
        let second = cluster.stats().total_instructions();
        assert!(first >= 20_000);
        assert!(second >= 40_000, "both cores must reach the raised target");
        assert!(second > first);
    }

    #[test]
    fn cluster_is_deterministic() {
        let run = || {
            let mut cluster = Cluster::new(
                CoreConfig::baseline(),
                HierarchyConfig::baseline(),
                mem_sources(3),
            );
            cluster.run(30_000, &mut PassiveHandler);
            cluster.stats().makespan_cycles()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_cluster_rejected() {
        let _ = Cluster::<SyntheticWorkload>::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            vec![],
        );
    }

    #[test]
    fn accessors() {
        let cluster = Cluster::new(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            mem_sources(2),
        );
        assert_eq!(cluster.len(), 2);
        assert!(!cluster.is_empty());
        assert_eq!(cluster.core_now(CoreId(1)), Cycle::ZERO);
    }
}
