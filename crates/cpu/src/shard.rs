//! The sharded cluster engine: per-channel event wheels advanced on
//! parallel workers, merged back deterministically.
//!
//! # Why sharding is possible at all
//!
//! Cores in a [`Cluster`] couple through exactly one mechanism: the
//! memory channel they share. Core `i`'s event times depend on its own
//! workload, its own core config, the state of channel `i % C` — and
//! nothing else, *provided the stall handler's answers don't smuggle in
//! cross-core state*. That proviso is the [`SyncStallHandler`] bound:
//! `resolve(&self, ...)` cannot mutate shared state, so a core's timeline
//! is a pure function of its channel group. Whole channels are therefore
//! independent sub-simulations and can run on any worker in any order
//! with bit-identical per-core results. (Stateful controllers — token
//! ledgers, di/dt vetoes — need a total order over *all* cores' stalls
//! and stay on the exact global wheel; see DESIGN.md §13.)
//!
//! # Why the merged result is bit-identical
//!
//! The global wheel executes core steps in nondecreasing
//! `(time, core_index)` key order — the classic discrete-event-simulation
//! invariant, enforced by [`SchedHeap`]. A channel-local wheel executes
//! the *same* steps (channel independence) restricted to its own cores,
//! also in nondecreasing key order — i.e. exactly the global sequence's
//! subsequence for that channel. So:
//!
//! - **Stats** merge by summing channel counters in channel order — the
//!   same order [`Cluster::stats`] always used.
//! - **Trace records** are drained from a forked [`ObsHandle`] after each
//!   step and tagged with that step's scheduling key. Concatenating the
//!   per-channel streams and *stably* sorting by key reconstructs the
//!   global emission order: cross-channel key ties are impossible (the
//!   key embeds the unique core index) and same-core ties (several steps
//!   at one timestamp) keep their within-channel — i.e. program — order
//!   by stability.
//! - **Ring-buffer drops** stay exact: a record evicted by a fork's ring
//!   had ≥ capacity later records *in its own channel*, hence ≥ capacity
//!   later records globally, so the global ring would have evicted it
//!   too. Replaying the merged survivors through the parent ring and
//!   adding the forks' drop counts therefore reproduces the global ring's
//!   final contents and drop count byte-for-byte.
//!
//! # Cancellation
//!
//! The cancel token is consulted only at channel boundaries: a started
//! channel always runs to the segment target. A cancelled run returns
//! [`RunError::Cancelled`] with every channel either fully caught up
//! (its capture stashed) or untouched; [`Cluster::try_resume_sharded`]
//! finishes the stragglers and performs the merge. The merge must be
//! per-segment — incremental runs re-admit finished cores at earlier
//! timestamps, so keys are only sorted *within* a segment.

use mapg_mem::MemoryHierarchy;
use mapg_obs::{ObsHandle, TraceRecord};
use mapg_pool::{CancelToken, Pool};
use mapg_trace::EventSource;

use crate::cluster::Cluster;
use crate::core_model::Core;
use crate::error::RunError;
use crate::sched::{CoreKey, SchedHeap};
use crate::stall::SyncStallHandler;

/// One channel's observability output for the current target segment:
/// trace records tagged with their step's scheduling key, the fork ring's
/// eviction count, and the fork's metrics registry.
#[derive(Debug)]
pub(crate) struct ChannelCapture {
    trace: Vec<(u128, TraceRecord)>,
    dropped: u64,
    metrics: Option<mapg_obs::MetricsRegistry>,
}

/// A channel lifted out of the cluster for the parallel section: its
/// cores (tagged with their global indices), its memory, and the capture
/// produced when it runs.
#[derive(Debug)]
struct ChannelTask<S> {
    channel: usize,
    cores: Vec<(u32, Core<S>)>,
    memory: MemoryHierarchy,
    /// Channel already reached the target in a previous (cancelled)
    /// call; its capture is still stashed on the cluster.
    done: bool,
    capture: Option<ChannelCapture>,
}

/// Runs one channel's wheel from wherever its cores stand up to `target`,
/// collecting obs output into a [`ChannelCapture`]. Mirrors
/// [`Cluster::run_wheel`] exactly, plus the per-step fork drain.
fn run_channel<S: EventSource, H: SyncStallHandler>(
    task: &mut ChannelTask<S>,
    target: u64,
    channels: usize,
    handler: &H,
    parent_obs: &ObsHandle,
) -> ChannelCapture {
    let fork = parent_obs.fork();
    if fork.is_enabled() {
        for (_, core) in &mut task.cores {
            core.set_obs(fork.clone());
        }
        task.memory.set_obs(fork.clone());
    }
    let tracing = fork.trace_enabled();
    let mut capture = ChannelCapture {
        trace: Vec::new(),
        dropped: 0,
        metrics: None,
    };
    let mut scratch: Vec<TraceRecord> = Vec::new();

    // Keys carry the *global* core index so within-channel order is the
    // global order's subsequence (and merge tags are globally unique).
    let mut heap = SchedHeap::with_capacity(task.cores.len());
    for (index, core) in &task.cores {
        if core.stats().instructions < target {
            heap.push(CoreKey::new(core.now(), *index));
        }
    }
    let mut shared = handler;
    let mut next = heap.pop();
    while let Some(key) = next {
        let index = key.index();
        // Global index -> slot within this channel's round-robin stripe.
        let slot = (index as usize - task.channel) / channels;
        let core = &mut task.cores[slot].1;
        loop {
            // Tag with the key this step runs under, *before* stepping.
            let step_key = CoreKey::new(core.now(), index).raw();
            core.step_batched(target, &mut task.memory, &mut shared);
            if tracing {
                capture.dropped += fork.drain_trace(&mut scratch);
                capture
                    .trace
                    .extend(scratch.drain(..).map(|record| (step_key, record)));
            }
            if core.stats().instructions >= target {
                next = heap.pop();
                break;
            }
            let key = CoreKey::new(core.now(), index);
            let min = heap.replace_min(key);
            if min != key {
                next = Some(min);
                break;
            }
        }
    }

    capture.metrics = fork.collect().1;
    capture
}

impl<S: EventSource> Cluster<S> {
    /// Whether a cancelled sharded segment is waiting to be resumed.
    pub fn has_pending_segment(&self) -> bool {
        self.has_pending_captures()
            || (self.target > 0
                && self
                    .cores
                    .iter()
                    .any(|core| core.stats().instructions < self.target))
    }

    pub(crate) fn has_pending_captures(&self) -> bool {
        self.captures.iter().any(Option::is_some)
    }
}

impl<S: EventSource + Send> Cluster<S> {
    /// Runs every core for at least `instructions_per_core` further
    /// instructions using the sharded engine: memory channels are grouped
    /// into `min(shards, channels)` shards and advanced on parallel
    /// workers (a [`Pool`] sized by `mapg_pool::default_jobs`, so the
    /// ambient `with_default_jobs` pinning applies), then per-core stats,
    /// merged memory counters, and observability output are reassembled
    /// in deterministic channel order.
    ///
    /// The result — [`Cluster::stats`], trace, metrics — is bit-identical
    /// to [`Cluster::try_run`] with the same handler regardless of the
    /// shard count or worker interleaving. With one effective shard this
    /// *is* the global wheel (no forking, no merge).
    ///
    /// A pending cancelled segment (see
    /// [`Cluster::try_run_sharded_with_cancel`]) is resumed first.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ZeroInstructions`] if `instructions_per_core`
    /// is zero, or [`RunError::ZeroShards`] if `shards` is zero.
    pub fn try_run_sharded<H: SyncStallHandler>(
        &mut self,
        instructions_per_core: u64,
        handler: &H,
        shards: usize,
    ) -> Result<(), RunError> {
        if instructions_per_core == 0 {
            return Err(RunError::ZeroInstructions);
        }
        if shards == 0 {
            return Err(RunError::ZeroShards);
        }
        self.try_resume_sharded(handler, shards)?;
        self.target += instructions_per_core;
        self.run_sharded_segment(handler, shards, None)
    }

    /// [`Cluster::try_run_sharded`] with cooperative cancellation checked
    /// at channel boundaries (a started channel always completes its
    /// segment, so the cluster never holds a half-run channel).
    ///
    /// # Errors
    ///
    /// In addition to [`Cluster::try_run_sharded`]'s errors, returns
    /// [`RunError::Cancelled`] if `cancel` fired before every channel
    /// reached the target. The cluster remains consistent; finish the
    /// segment with [`Cluster::try_resume_sharded`].
    pub fn try_run_sharded_with_cancel<H: SyncStallHandler>(
        &mut self,
        instructions_per_core: u64,
        handler: &H,
        shards: usize,
        cancel: &CancelToken,
    ) -> Result<(), RunError> {
        if instructions_per_core == 0 {
            return Err(RunError::ZeroInstructions);
        }
        if shards == 0 {
            return Err(RunError::ZeroShards);
        }
        self.try_resume_sharded(handler, shards)?;
        self.target += instructions_per_core;
        self.run_sharded_segment(handler, shards, Some(cancel))
    }

    /// Finishes a segment interrupted by cancellation: channels that
    /// never started run now, already-captured channels are left alone,
    /// and once every channel has reached the target the observability
    /// merge happens exactly as it would have in the uncancelled run. A
    /// no-op when nothing is pending.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ZeroShards`] if `shards` is zero.
    pub fn try_resume_sharded<H: SyncStallHandler>(
        &mut self,
        handler: &H,
        shards: usize,
    ) -> Result<(), RunError> {
        if shards == 0 {
            return Err(RunError::ZeroShards);
        }
        if !self.has_pending_segment() {
            return Ok(());
        }
        self.run_sharded_segment(handler, shards, None)
    }

    /// Advances every channel to the current `self.target` (skipping
    /// channels whose capture is already stashed), then — unless
    /// cancelled first — merges captures back into the parent handle.
    fn run_sharded_segment<H: SyncStallHandler>(
        &mut self,
        handler: &H,
        shards: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<(), RunError> {
        let target = self.target;
        let channels = self.channels;
        let effective = shards.min(channels);

        // One effective shard, nothing stashed, no cancellation to
        // honour: the sharded engine degenerates to the global wheel —
        // obs emits straight into the parent, no fork/merge at all. This
        // is also the only path the default one-channel topology can
        // take, which is what keeps every existing golden byte-stable.
        if effective == 1 && cancel.is_none() && !self.has_pending_captures() {
            let mut shared = handler;
            self.run_wheel(target, &mut shared);
            return Ok(());
        }

        // Lift cores and memories out of the cluster into per-channel
        // tasks (core i rides channel i % C, preserving global indices).
        let cores = std::mem::take(&mut self.cores);
        let memories = std::mem::take(&mut self.memories);
        let mut tasks: Vec<ChannelTask<S>> = memories
            .into_iter()
            .enumerate()
            .map(|(c, memory)| ChannelTask {
                channel: c,
                cores: Vec::new(),
                memory,
                done: self.captures[c].is_some(),
                capture: None,
            })
            .collect();
        for (i, core) in cores.into_iter().enumerate() {
            tasks[i % channels].cores.push((i as u32, core));
        }

        // Group channels round-robin over shards and run each shard's
        // channels sequentially on one worker. Results come back in
        // submission order, so reassembly order is deterministic no
        // matter which worker finished first.
        let mut groups: Vec<Vec<ChannelTask<S>>> = (0..effective).map(|_| Vec::new()).collect();
        for task in tasks {
            let shard = task.channel % effective;
            groups[shard].push(task);
        }
        let obs = &self.obs;
        let groups = Pool::with_default_jobs().map(groups, |mut group: Vec<ChannelTask<S>>| {
            for task in &mut group {
                if task.done {
                    continue;
                }
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    break;
                }
                task.capture = Some(run_channel(task, target, channels, handler, obs));
            }
            group
        });

        // Reassemble the cluster (and restore the parent obs handle on
        // every component that ran under a fork).
        let core_count = groups
            .iter()
            .flatten()
            .map(|t| t.cores.len())
            .sum::<usize>();
        let mut cores: Vec<Option<Core<S>>> = (0..core_count).map(|_| None).collect();
        let mut memories: Vec<Option<MemoryHierarchy>> = (0..channels).map(|_| None).collect();
        let mut cancelled = false;
        for mut task in groups.into_iter().flatten() {
            let ran = task.capture.is_some();
            if !task.done && !ran {
                cancelled = true;
            }
            if ran {
                self.captures[task.channel] = task.capture.take();
            }
            if self.obs.is_enabled() && ran {
                task.memory.set_obs(self.obs.clone());
            }
            memories[task.channel] = Some(task.memory);
            for (index, mut core) in task.cores {
                if self.obs.is_enabled() && ran {
                    core.set_obs(self.obs.clone());
                }
                cores[index as usize] = Some(core);
            }
        }
        self.cores = cores
            .into_iter()
            .map(|c| c.expect("every core returned by its channel task"))
            .collect();
        self.memories = memories
            .into_iter()
            .map(|m| m.expect("every channel returned its memory"))
            .collect();

        if cancelled {
            return Err(RunError::Cancelled);
        }
        self.merge_captures();
        Ok(())
    }

    /// Folds every channel's stashed capture back into the parent
    /// [`ObsHandle`]: drop counts and metrics in channel order, trace
    /// records replayed in global emission order (stable sort on the
    /// per-step scheduling key).
    fn merge_captures(&mut self) {
        let mut merged: Vec<(u128, TraceRecord)> = Vec::new();
        let mut dropped = 0u64;
        for slot in &mut self.captures {
            let capture = slot.take().expect("merge requires every channel captured");
            dropped += capture.dropped;
            merged.extend(capture.trace);
            if let Some(metrics) = &capture.metrics {
                self.obs.absorb_metrics(metrics);
            }
        }
        if merged.is_empty() && dropped == 0 {
            return;
        }
        // Stable: same-key records (one core, one timestamp, several
        // steps or several records per step) keep channel-stream — i.e.
        // program — order. Cross-channel keys never tie (unique index).
        merged.sort_by_key(|(key, _)| *key);
        self.obs.note_trace_dropped(dropped);
        for (_, record) in merged {
            self.obs.emit(record.at, record.scope, record.kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterStats;
    use crate::core_model::CoreConfig;
    use crate::stall::PassiveHandler;
    use mapg_mem::HierarchyConfig;
    use mapg_trace::{SyntheticWorkload, WorkloadProfile};

    fn sources(n: usize) -> Vec<SyntheticWorkload> {
        let profile = WorkloadProfile::mem_bound("shard_mem");
        (0..n)
            .map(|i| SyntheticWorkload::new(&profile, 7000 + i as u64))
            .collect()
    }

    fn cluster(cores: usize, channels: usize) -> Cluster<SyntheticWorkload> {
        Cluster::try_new_with_channels(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            sources(cores),
            channels,
        )
        .expect("valid cluster")
    }

    fn wheel_run(cores: usize, channels: usize, budget: u64) -> ClusterStats {
        let mut c = cluster(cores, channels);
        c.run(budget, &mut PassiveHandler);
        c.stats()
    }

    #[test]
    fn sharded_matches_global_wheel_across_shard_counts() {
        let reference = wheel_run(6, 3, 15_000);
        for shards in [1, 2, 3, 5, 16] {
            let mut c = cluster(6, 3);
            c.try_run_sharded(15_000, &PassiveHandler, shards)
                .expect("sharded run");
            assert_eq!(c.stats(), reference, "shards = {shards}");
            assert!(!c.has_pending_segment());
        }
    }

    #[test]
    fn sharded_obs_output_is_bit_identical_to_wheel() {
        // Small ring (forces eviction accounting through the merge) plus
        // metrics, compared against the direct global-wheel emission.
        let run = |shards: Option<usize>| {
            let mut c = cluster(8, 4);
            let obs = mapg_obs::ObsHandle::enabled(Some(64), true);
            c.set_obs(obs.clone());
            match shards {
                None => c.run(8_000, &mut PassiveHandler),
                Some(s) => c
                    .try_run_sharded(8_000, &PassiveHandler, s)
                    .expect("sharded run"),
            }
            obs.collect()
        };
        let (wheel_trace, wheel_metrics) = run(None);
        let wheel_trace = wheel_trace.expect("trace enabled");
        assert!(wheel_trace.dropped() > 0, "ring small enough to overflow");
        for shards in [1, 2, 4] {
            let (trace, metrics) = run(Some(shards));
            assert_eq!(
                trace.expect("trace enabled"),
                wheel_trace,
                "shards = {shards}"
            );
            assert_eq!(metrics, wheel_metrics, "shards = {shards}");
        }
    }

    #[test]
    fn incremental_sharded_runs_accumulate_like_the_wheel() {
        let mut wheel = cluster(4, 2);
        wheel.run(5_000, &mut PassiveHandler);
        wheel.run(5_000, &mut PassiveHandler);
        let mut sharded = cluster(4, 2);
        sharded
            .try_run_sharded(5_000, &PassiveHandler, 2)
            .expect("first segment");
        sharded
            .try_run_sharded(5_000, &PassiveHandler, 2)
            .expect("second segment");
        assert_eq!(sharded.stats(), wheel.stats());
    }

    #[test]
    fn cancelled_run_resumes_to_the_same_result() {
        let reference = {
            let mut c = cluster(6, 3);
            let obs = mapg_obs::ObsHandle::enabled(Some(128), true);
            c.set_obs(obs.clone());
            c.run(6_000, &mut PassiveHandler);
            (c.stats(), obs.collect())
        };

        let mut c = cluster(6, 3);
        let obs = mapg_obs::ObsHandle::enabled(Some(128), true);
        c.set_obs(obs.clone());
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = c
            .try_run_sharded_with_cancel(6_000, &PassiveHandler, 3, &cancel)
            .unwrap_err();
        assert_eq!(err, RunError::Cancelled);
        assert!(c.has_pending_segment());
        // Nothing merged yet: the parent handle saw no records.
        assert_eq!(obs.collect().0.expect("trace enabled").len(), 0);

        c.try_resume_sharded(&PassiveHandler, 3)
            .expect("resume completes the segment");
        assert!(!c.has_pending_segment());
        assert_eq!(c.stats(), reference.0);
        assert_eq!(obs.collect(), reference.1);
        // Resuming again is a no-op.
        c.try_resume_sharded(&PassiveHandler, 3)
            .expect("idempotent");
        assert_eq!(obs.collect(), reference.1);
    }

    #[test]
    fn next_sharded_run_auto_resumes_a_cancelled_segment() {
        let mut wheel = cluster(4, 2);
        wheel.run(4_000, &mut PassiveHandler);
        wheel.run(4_000, &mut PassiveHandler);

        let mut c = cluster(4, 2);
        let cancel = CancelToken::new();
        cancel.cancel();
        assert_eq!(
            c.try_run_sharded_with_cancel(4_000, &PassiveHandler, 2, &cancel),
            Err(RunError::Cancelled)
        );
        c.try_run_sharded(4_000, &PassiveHandler, 2)
            .expect("auto-resume then run the next segment");
        assert_eq!(c.stats(), wheel.stats());
    }

    #[test]
    fn unfired_token_behaves_like_no_token() {
        let mut plain = cluster(4, 2);
        plain
            .try_run_sharded(5_000, &PassiveHandler, 2)
            .expect("plain");
        let mut watched = cluster(4, 2);
        let cancel = CancelToken::new();
        watched
            .try_run_sharded_with_cancel(5_000, &PassiveHandler, 2, &cancel)
            .expect("token never fires");
        assert_eq!(plain.stats(), watched.stats());
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let mut c = cluster(2, 2);
        assert_eq!(
            c.try_run_sharded(0, &PassiveHandler, 2),
            Err(RunError::ZeroInstructions)
        );
        assert_eq!(
            c.try_run_sharded(1_000, &PassiveHandler, 0),
            Err(RunError::ZeroShards)
        );
        assert_eq!(
            c.try_resume_sharded(&PassiveHandler, 0),
            Err(RunError::ZeroShards)
        );
        let cancel = CancelToken::new();
        assert_eq!(
            c.try_run_sharded_with_cancel(0, &PassiveHandler, 2, &cancel),
            Err(RunError::ZeroInstructions)
        );
        assert_eq!(
            c.try_run_sharded_with_cancel(1_000, &PassiveHandler, 0, &cancel),
            Err(RunError::ZeroShards)
        );
    }

    #[test]
    fn single_channel_cluster_shards_to_the_wheel_path() {
        // channels == 1: any shard count collapses to the global wheel.
        let reference = wheel_run(4, 1, 10_000);
        let mut c = cluster(4, 1);
        c.try_run_sharded(10_000, &PassiveHandler, 8)
            .expect("sharded run");
        assert_eq!(c.stats(), reference);
    }
}
