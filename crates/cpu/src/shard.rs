//! The sharded cluster engine: per-channel event wheels advanced on
//! parallel workers, merged back deterministically.
//!
//! # Why sharding is possible at all
//!
//! Cores in a [`Cluster`] couple through exactly one mechanism: the
//! memory channel they share. Core `i`'s event times depend on its own
//! workload, its own core config, the state of channel `i % C` — and
//! nothing else, *provided the stall handler's answers don't smuggle in
//! cross-core state*. That proviso is the [`SyncStallHandler`] bound:
//! `resolve(&self, ...)` cannot mutate shared state, so a core's timeline
//! is a pure function of its channel group. Whole channels are therefore
//! independent sub-simulations and can run on any worker in any order
//! with bit-identical per-core results. (Stateful controllers — token
//! ledgers, di/dt vetoes — need a total order over *all* cores' stalls
//! and stay on the exact global wheel; see DESIGN.md §13.)
//!
//! # Why the merged result is bit-identical
//!
//! The global wheel executes core steps in nondecreasing
//! `(time, core_index)` key order — the classic discrete-event-simulation
//! invariant, enforced by [`SchedHeap`]. A channel-local wheel executes
//! the *same* steps (channel independence) restricted to its own cores,
//! also in nondecreasing key order — i.e. exactly the global sequence's
//! subsequence for that channel. So:
//!
//! - **Stats** merge by summing channel counters in channel order — the
//!   same order [`Cluster::stats`] always used.
//! - **Trace records** are drained from a forked [`ObsHandle`] after each
//!   step and tagged with that step's scheduling key. Since each channel
//!   stream is already key-sorted (a subsequence of global order), a
//!   stable k-way merge on the key ([`KwayMerger`](crate::merge::KwayMerger),
//!   O(N log C))
//!   reconstructs the global emission order — byte-identical to the
//!   concat + stable-sort it replaced: cross-channel key ties are
//!   impossible (the key embeds the unique core index) and same-core
//!   ties (several steps at one timestamp) keep their within-channel —
//!   i.e. program — order.
//! - **Ring-buffer drops** stay exact: a record evicted by a fork's ring
//!   had ≥ capacity later records *in its own channel*, hence ≥ capacity
//!   later records globally, so the global ring would have evicted it
//!   too. Replaying the merged survivors through the parent ring and
//!   adding the forks' drop counts therefore reproduces the global ring's
//!   final contents and drop count byte-for-byte.
//!
//! # Sessions: persistent pool, resident arenas
//!
//! A controller-driven run advances the cluster one *segment* per epoch.
//! Doing that through [`Cluster::try_run_sharded`] costs, per segment:
//! an OS-thread spawn/teardown, a full lift of every core and memory into
//! fresh per-channel tasks, per-channel obs forks, and a reassembly pass.
//! [`Cluster::shard_session`] hoists all of it to session scope: workers
//! come from one persistent [`mapg_pool::ScopedPool`]; channels are
//! lifted once into per-shard **arenas** (round-robin, channel
//! `c % effective` → arena); forks, scheduler heaps, and drain scratch
//! live in the arena across segments; capture buffers recycle through
//! the merge. Dispatching a segment is pure index bookkeeping — refresh
//! `done` flags, set the target, move the arenas through the pool queue
//! — so the steady-state segment loop performs no allocation and spawns
//! no threads. The one-shot entry points remain as single-segment
//! sessions.
//!
//! # Cancellation
//!
//! The cancel token is consulted only at channel boundaries: a started
//! channel always runs to the segment target. A cancelled run returns
//! [`RunError::Cancelled`] with every channel either fully caught up
//! (its capture stashed) or untouched; [`Cluster::try_resume_sharded`]
//! (or the session's [`ShardSession::try_resume`]) finishes the
//! stragglers and performs the merge. The merge must be per-segment —
//! incremental runs re-admit finished cores at earlier timestamps, so
//! keys are only sorted *within* a segment.

use mapg_mem::MemoryHierarchy;
use mapg_obs::{ObsHandle, TraceRecord};
use mapg_pool::{CancelToken, Pool, ScopedPool};
use mapg_trace::EventSource;

use crate::cluster::Cluster;
use crate::core_model::Core;
use crate::error::RunError;
use crate::sched::{CoreKey, SchedHeap};
use crate::stall::SyncStallHandler;

/// One channel's observability output for the current target segment:
/// trace records tagged with their step's scheduling key, the fork ring's
/// eviction count, and the fork's metrics registry.
#[derive(Debug)]
pub(crate) struct ChannelCapture {
    trace: Vec<(u128, TraceRecord)>,
    dropped: u64,
    metrics: Option<mapg_obs::MetricsRegistry>,
}

/// A channel resident in a shard arena for the whole session: its cores
/// (tagged with their global indices), its memory, its session-lifetime
/// obs fork, and the per-segment scheduler/scratch state reused in place.
#[derive(Debug)]
struct ChannelTask<S> {
    channel: usize,
    cores: Vec<(u32, Core<S>)>,
    memory: MemoryHierarchy,
    /// Session-lifetime fork of the parent handle; cores and memory emit
    /// into it on the worker, [`ObsHandle::take_metrics`] drains the
    /// per-segment metric delta at each capture.
    fork: ObsHandle,
    tracing: bool,
    /// Channel-local wheel, cleared and refilled each segment.
    heap: SchedHeap,
    /// Per-step fork drain scratch.
    scratch: Vec<TraceRecord>,
    /// Recycled capture buffer the next segment's records land in.
    spare: Vec<(u128, TraceRecord)>,
    /// Channel already reached the target in a previous (cancelled)
    /// segment; its capture is still stashed on the cluster.
    done: bool,
    capture: Option<ChannelCapture>,
}

/// One worker's resident slice of the cluster: the channels it advances
/// every segment, plus the segment parameters stamped on at dispatch.
/// Arenas move through the scoped pool's queue as owned jobs and return
/// in submission order, so reassembly is deterministic without sorting.
#[derive(Debug)]
struct ShardArena<S> {
    tasks: Vec<ChannelTask<S>>,
    target: u64,
    cancel: Option<CancelToken>,
}

/// Advances every not-yet-done channel of `arena` to the stamped target,
/// honouring the cancel token at channel boundaries.
fn run_arena<S: EventSource, H: SyncStallHandler>(
    mut arena: ShardArena<S>,
    channels: usize,
    handler: &H,
) -> ShardArena<S> {
    let target = arena.target;
    for task in &mut arena.tasks {
        if task.done {
            continue;
        }
        if arena.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            break;
        }
        run_channel(task, target, channels, handler);
    }
    arena
}

/// Runs one channel's wheel from wherever its cores stand up to `target`,
/// leaving the obs output in `task.capture`. Mirrors
/// [`Cluster::run_wheel`] exactly, plus the per-step fork drain.
fn run_channel<S: EventSource, H: SyncStallHandler>(
    task: &mut ChannelTask<S>,
    target: u64,
    channels: usize,
    handler: &H,
) {
    let ChannelTask {
        channel,
        cores,
        memory,
        fork,
        tracing,
        heap,
        scratch,
        spare,
        capture,
        ..
    } = task;
    let tracing = *tracing;
    let mut trace = std::mem::take(spare);
    debug_assert!(trace.is_empty(), "capture buffers recycle empty");
    let mut dropped = 0u64;

    // Keys carry the *global* core index so within-channel order is the
    // global order's subsequence (and merge tags are globally unique).
    heap.clear();
    for (index, core) in cores.iter() {
        if core.stats().instructions < target {
            heap.push(CoreKey::new(core.now(), *index));
        }
    }
    let mut shared = handler;
    let mut next = heap.pop();
    while let Some(key) = next {
        let index = key.index();
        // Global index -> slot within this channel's round-robin stripe.
        let slot = (index as usize - *channel) / channels;
        let core = &mut cores[slot].1;
        loop {
            // Tag with the key this step runs under, *before* stepping.
            let step_key = CoreKey::new(core.now(), index).raw();
            core.step_batched(target, memory, &mut shared);
            if tracing {
                dropped += fork.drain_trace(scratch);
                trace.extend(scratch.drain(..).map(|record| (step_key, record)));
            }
            if core.stats().instructions >= target {
                next = heap.pop();
                break;
            }
            let key = CoreKey::new(core.now(), index);
            let min = heap.replace_min(key);
            if min != key {
                next = Some(min);
                break;
            }
        }
    }

    *capture = Some(ChannelCapture {
        trace,
        dropped,
        // Drain, don't copy: the fork persists across segments and must
        // hand each segment exactly its own metric delta.
        metrics: fork.take_metrics(),
    });
}

/// How a [`ShardSession`] executes its segments.
enum SessionMode<'s, S: EventSource, H> {
    /// One effective shard, nothing stashed: the degenerate global-wheel
    /// path — obs emits straight into the parent, no fork/merge at all.
    /// This is also the only path the default one-channel topology can
    /// take, which is what keeps every existing golden byte-stable.
    Wheel { handler: &'s H },
    /// Real sharding: resident arenas dispatched through a persistent
    /// scoped pool, one capture merge per segment.
    Forked {
        pool: &'s ScopedPool<'s, ShardArena<S>, ShardArena<S>>,
        arenas: Vec<ShardArena<S>>,
    },
}

/// A multi-segment sharded run over one cluster: worker threads, arena
/// grouping, obs forks, heaps, and capture buffers all persist between
/// [`try_run`](ShardSession::try_run) calls. Created by
/// [`Cluster::shard_session`]; each segment is bit-identical to the same
/// segment on the global wheel, at any shard or worker-thread count.
pub struct ShardSession<'c, 's, S: EventSource, H: SyncStallHandler> {
    cluster: &'c mut Cluster<S>,
    mode: SessionMode<'s, S, H>,
    /// Whether a cancelled segment awaits resumption. Tracked here (not
    /// recomputed from the cluster) because the cluster's cores live in
    /// the arenas for the session's duration.
    pending: bool,
}

impl<S: EventSource + Send, H: SyncStallHandler> ShardSession<'_, '_, S, H> {
    /// Worker threads servicing this session's segments (1 when the
    /// session degenerated to the global wheel).
    pub fn workers(&self) -> usize {
        match &self.mode {
            SessionMode::Wheel { .. } => 1,
            SessionMode::Forked { pool, .. } => pool.jobs(),
        }
    }

    /// Runs every core for at least `instructions_per_core` further
    /// instructions — one sharded segment, same contract as
    /// [`Cluster::try_run_sharded`] minus the per-call setup. A pending
    /// cancelled segment is resumed first.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ZeroInstructions`] if `instructions_per_core`
    /// is zero.
    pub fn try_run(&mut self, instructions_per_core: u64) -> Result<(), RunError> {
        if instructions_per_core == 0 {
            return Err(RunError::ZeroInstructions);
        }
        self.run_pending()?;
        self.cluster.target += instructions_per_core;
        self.advance(None)
    }

    /// [`ShardSession::try_run`] with cooperative cancellation checked at
    /// channel boundaries.
    ///
    /// # Errors
    ///
    /// In addition to [`ShardSession::try_run`]'s errors, returns
    /// [`RunError::Cancelled`] if `cancel` fired before every channel
    /// reached the target; finish the segment with
    /// [`ShardSession::try_resume`] (or let the next `try_run` do it).
    pub fn try_run_with_cancel(
        &mut self,
        instructions_per_core: u64,
        cancel: &CancelToken,
    ) -> Result<(), RunError> {
        if instructions_per_core == 0 {
            return Err(RunError::ZeroInstructions);
        }
        self.run_pending()?;
        self.cluster.target += instructions_per_core;
        self.advance(Some(cancel))
    }

    /// Finishes a segment interrupted by cancellation; a no-op when
    /// nothing is pending.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; kept fallible for parity with
    /// [`Cluster::try_resume_sharded`].
    pub fn try_resume(&mut self) -> Result<(), RunError> {
        self.run_pending()
    }

    fn run_pending(&mut self) -> Result<(), RunError> {
        if !self.pending {
            return Ok(());
        }
        self.advance(None)
    }

    /// Runs one segment and keeps the pending flag honest: a cancelled
    /// (or otherwise failed) segment stays pending for the next call.
    fn advance(&mut self, cancel: Option<&CancelToken>) -> Result<(), RunError> {
        self.pending = true;
        self.run_segment(cancel)?;
        self.pending = false;
        Ok(())
    }

    /// Advances every channel to the current cluster target (skipping
    /// channels whose capture is already stashed), then — unless
    /// cancelled first — merges captures back into the parent handle.
    fn run_segment(&mut self, cancel: Option<&CancelToken>) -> Result<(), RunError> {
        let target = self.cluster.target;
        match &mut self.mode {
            SessionMode::Wheel { handler } => {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    return Err(RunError::Cancelled);
                }
                let mut shared: &H = handler;
                self.cluster.run_wheel(target, &mut shared);
                Ok(())
            }
            SessionMode::Forked { pool, arenas } => {
                // Per-segment dispatch is bookkeeping only: stamp the
                // target and token, refresh `done` from the stash, hand
                // recycled capture buffers to the channels that will run.
                for arena in arenas.iter_mut() {
                    arena.target = target;
                    arena.cancel = cancel.cloned();
                    for task in &mut arena.tasks {
                        task.done = self.cluster.captures[task.channel].is_some();
                        if !task.done && task.spare.capacity() == 0 {
                            if let Some(buffer) = self.cluster.trace_spares.pop() {
                                task.spare = buffer;
                            }
                        }
                    }
                }
                let batch = pool.map(std::mem::take(arenas));
                *arenas = batch;

                let mut cancelled = false;
                for arena in arenas.iter_mut() {
                    for task in &mut arena.tasks {
                        if let Some(capture) = task.capture.take() {
                            self.cluster.captures[task.channel] = Some(capture);
                        } else if !task.done {
                            cancelled = true;
                        }
                    }
                }
                if cancelled {
                    return Err(RunError::Cancelled);
                }
                self.cluster.merge_captures();
                Ok(())
            }
        }
    }
}

impl<S: EventSource> Cluster<S> {
    /// Whether a cancelled sharded segment is waiting to be resumed.
    pub fn has_pending_segment(&self) -> bool {
        self.has_pending_captures()
            || (self.target > 0
                && self
                    .cores
                    .iter()
                    .any(|core| core.stats().instructions < self.target))
    }

    pub(crate) fn has_pending_captures(&self) -> bool {
        self.captures.iter().any(Option::is_some)
    }
}

impl<S: EventSource + Send> Cluster<S> {
    /// Opens a sharded execution session — the amortized form of
    /// [`Cluster::try_run_sharded`] for drivers that advance the cluster
    /// segment by segment (a controller epoch loop, a benchmark sweep).
    ///
    /// Memory channels are grouped round-robin into
    /// `min(shards, channels)` arenas and lifted out of the cluster
    /// **once**; worker threads (a [`Pool`] sized by
    /// `min(mapg_pool::default_jobs(), effective_shards)`, so the ambient
    /// `with_default_jobs` pinning applies) are spawned **once**; each
    /// [`ShardSession::try_run`] then only moves the resident arenas
    /// through the pool's queue and merges the captures. The cluster is
    /// reassembled (cores, memories, parent obs handle) when `f` returns.
    ///
    /// Every segment's result — [`Cluster::stats`], trace, metrics — is
    /// bit-identical to the same sequence of [`Cluster::try_run`] calls,
    /// regardless of shard count or worker interleaving. With one
    /// effective shard and nothing stashed this *is* the global wheel.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ZeroShards`] if `shards` is zero.
    ///
    /// # Panics
    ///
    /// If `f` or a worker panics, the panic propagates and the cluster is
    /// left without its lifted cores (the same contract the per-call
    /// engine had when a pool worker panicked).
    pub fn shard_session<H: SyncStallHandler, R>(
        &mut self,
        shards: usize,
        handler: &H,
        f: impl FnOnce(&mut ShardSession<'_, '_, S, H>) -> R,
    ) -> Result<R, RunError> {
        if shards == 0 {
            return Err(RunError::ZeroShards);
        }
        let channels = self.channels;
        let effective = shards.min(channels);
        let pending = self.has_pending_segment();
        if effective == 1 && !self.has_pending_captures() {
            let mut session = ShardSession {
                cluster: self,
                mode: SessionMode::Wheel { handler },
                pending,
            };
            return Ok(f(&mut session));
        }

        let jobs = mapg_pool::default_jobs().min(effective);
        let work = |arena: ShardArena<S>| run_arena(arena, channels, handler);
        let arenas = self.lift_arenas(effective);
        let (out, arenas) = Pool::new(jobs).scoped(work, |pool| {
            let mut session = ShardSession {
                cluster: self,
                mode: SessionMode::Forked { pool, arenas },
                pending,
            };
            let out = f(&mut session);
            let SessionMode::Forked { arenas, .. } = session.mode else {
                unreachable!("forked sessions stay forked");
            };
            (out, arenas)
        });
        self.reassemble(arenas);
        Ok(out)
    }

    /// Runs every core for at least `instructions_per_core` further
    /// instructions using the sharded engine — a single-segment
    /// [`Cluster::shard_session`]; see there for the execution model.
    ///
    /// The result — [`Cluster::stats`], trace, metrics — is bit-identical
    /// to [`Cluster::try_run`] with the same handler regardless of the
    /// shard count or worker interleaving. With one effective shard this
    /// *is* the global wheel (no forking, no merge).
    ///
    /// A pending cancelled segment (see
    /// [`Cluster::try_run_sharded_with_cancel`]) is resumed first.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ZeroInstructions`] if `instructions_per_core`
    /// is zero, or [`RunError::ZeroShards`] if `shards` is zero.
    pub fn try_run_sharded<H: SyncStallHandler>(
        &mut self,
        instructions_per_core: u64,
        handler: &H,
        shards: usize,
    ) -> Result<(), RunError> {
        if instructions_per_core == 0 {
            return Err(RunError::ZeroInstructions);
        }
        self.shard_session(shards, handler, |session| {
            session.try_run(instructions_per_core)
        })?
    }

    /// [`Cluster::try_run_sharded`] with cooperative cancellation checked
    /// at channel boundaries (a started channel always completes its
    /// segment, so the cluster never holds a half-run channel).
    ///
    /// # Errors
    ///
    /// In addition to [`Cluster::try_run_sharded`]'s errors, returns
    /// [`RunError::Cancelled`] if `cancel` fired before every channel
    /// reached the target. The cluster remains consistent; finish the
    /// segment with [`Cluster::try_resume_sharded`].
    pub fn try_run_sharded_with_cancel<H: SyncStallHandler>(
        &mut self,
        instructions_per_core: u64,
        handler: &H,
        shards: usize,
        cancel: &CancelToken,
    ) -> Result<(), RunError> {
        if instructions_per_core == 0 {
            return Err(RunError::ZeroInstructions);
        }
        self.shard_session(shards, handler, |session| {
            session.try_run_with_cancel(instructions_per_core, cancel)
        })?
    }

    /// Finishes a segment interrupted by cancellation: channels that
    /// never started run now, already-captured channels are left alone,
    /// and once every channel has reached the target the observability
    /// merge happens exactly as it would have in the uncancelled run. A
    /// no-op when nothing is pending.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ZeroShards`] if `shards` is zero.
    pub fn try_resume_sharded<H: SyncStallHandler>(
        &mut self,
        handler: &H,
        shards: usize,
    ) -> Result<(), RunError> {
        if shards == 0 {
            return Err(RunError::ZeroShards);
        }
        if !self.has_pending_segment() {
            return Ok(());
        }
        self.shard_session(shards, handler, |session| session.try_resume())?
    }

    /// Lifts cores and memories out of the cluster into `effective`
    /// resident arenas (core `i` rides channel `i % C`, channel `c` rides
    /// arena `c % effective`, global indices preserved) and attaches the
    /// session-lifetime obs forks.
    fn lift_arenas(&mut self, effective: usize) -> Vec<ShardArena<S>> {
        let channels = self.channels;
        let cores = std::mem::take(&mut self.cores);
        let memories = std::mem::take(&mut self.memories);
        let mut tasks: Vec<ChannelTask<S>> = memories
            .into_iter()
            .enumerate()
            .map(|(c, memory)| ChannelTask {
                channel: c,
                cores: Vec::new(),
                memory,
                fork: ObsHandle::disabled(),
                tracing: false,
                heap: SchedHeap::default(),
                scratch: Vec::new(),
                spare: Vec::new(),
                done: false,
                capture: None,
            })
            .collect();
        for (i, core) in cores.into_iter().enumerate() {
            tasks[i % channels].cores.push((i as u32, core));
        }
        for task in &mut tasks {
            let fork = self.obs.fork();
            if fork.is_enabled() {
                for (_, core) in &mut task.cores {
                    core.set_obs(fork.clone());
                }
                task.memory.set_obs(fork.clone());
            }
            task.tracing = fork.trace_enabled();
            task.fork = fork;
            task.heap = SchedHeap::with_capacity(task.cores.len());
        }
        let mut arenas: Vec<ShardArena<S>> = (0..effective)
            .map(|_| ShardArena {
                tasks: Vec::new(),
                target: 0,
                cancel: None,
            })
            .collect();
        for task in tasks {
            let arena = task.channel % effective;
            arenas[arena].tasks.push(task);
        }
        arenas
    }

    /// Puts every core and memory back in cluster order and restores the
    /// parent obs handle on components that carried a session fork.
    fn reassemble(&mut self, arenas: Vec<ShardArena<S>>) {
        let channels = self.channels;
        let core_count: usize = arenas
            .iter()
            .flat_map(|a| a.tasks.iter())
            .map(|t| t.cores.len())
            .sum();
        let mut cores: Vec<Option<Core<S>>> = (0..core_count).map(|_| None).collect();
        let mut memories: Vec<Option<MemoryHierarchy>> = (0..channels).map(|_| None).collect();
        for arena in arenas {
            for mut task in arena.tasks {
                if self.obs.is_enabled() {
                    task.memory.set_obs(self.obs.clone());
                }
                memories[task.channel] = Some(task.memory);
                for (index, mut core) in task.cores {
                    if self.obs.is_enabled() {
                        core.set_obs(self.obs.clone());
                    }
                    cores[index as usize] = Some(core);
                }
            }
        }
        self.cores = cores
            .into_iter()
            .map(|c| c.expect("every core returned by its arena"))
            .collect();
        self.memories = memories
            .into_iter()
            .map(|m| m.expect("every channel returned its memory"))
            .collect();
    }

    /// Folds every channel's stashed capture back into the parent
    /// [`ObsHandle`]: drop counts and metrics in channel order, trace
    /// records replayed in global emission order via the k-way
    /// tournament merge ([`KwayMerger`](crate::merge::KwayMerger) —
    /// equal keys resolve to the
    /// lower channel, i.e. exactly where the old concat + stable sort
    /// put them). Drained capture buffers are recycled for the next
    /// segment.
    fn merge_captures(&mut self) {
        let mut streams = std::mem::take(&mut self.merge_streams);
        debug_assert!(streams.is_empty());
        let mut dropped = 0u64;
        for slot in &mut self.captures {
            let capture = slot.take().expect("merge requires every channel captured");
            dropped += capture.dropped;
            if let Some(metrics) = &capture.metrics {
                self.obs.absorb_metrics(metrics);
            }
            streams.push(capture.trace);
        }
        let records: usize = streams.iter().map(Vec::len).sum();
        if records > 0 || dropped > 0 {
            self.obs.note_trace_dropped(dropped);
            let obs = &self.obs;
            self.merger.merge(&mut streams, |_, record: TraceRecord| {
                obs.emit(record.at, record.scope, record.kind);
            });
        }
        for stream in streams.drain(..) {
            debug_assert!(stream.is_empty(), "merge drains every stream");
            if stream.capacity() > 0 {
                self.trace_spares.push(stream);
            }
        }
        self.merge_streams = streams;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterStats;
    use crate::core_model::CoreConfig;
    use crate::stall::PassiveHandler;
    use mapg_mem::HierarchyConfig;
    use mapg_trace::{SyntheticWorkload, WorkloadProfile};

    fn sources(n: usize) -> Vec<SyntheticWorkload> {
        let profile = WorkloadProfile::mem_bound("shard_mem");
        (0..n)
            .map(|i| SyntheticWorkload::new(&profile, 7000 + i as u64))
            .collect()
    }

    fn cluster(cores: usize, channels: usize) -> Cluster<SyntheticWorkload> {
        Cluster::try_new_with_channels(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            sources(cores),
            channels,
        )
        .expect("valid cluster")
    }

    fn wheel_run(cores: usize, channels: usize, budget: u64) -> ClusterStats {
        let mut c = cluster(cores, channels);
        c.run(budget, &mut PassiveHandler);
        c.stats()
    }

    #[test]
    fn sharded_matches_global_wheel_across_shard_counts() {
        let reference = wheel_run(6, 3, 15_000);
        for shards in [1, 2, 3, 5, 16] {
            let mut c = cluster(6, 3);
            c.try_run_sharded(15_000, &PassiveHandler, shards)
                .expect("sharded run");
            assert_eq!(c.stats(), reference, "shards = {shards}");
            assert!(!c.has_pending_segment());
        }
    }

    #[test]
    fn sharded_obs_output_is_bit_identical_to_wheel() {
        // Small ring (forces eviction accounting through the merge) plus
        // metrics, compared against the direct global-wheel emission.
        let run = |shards: Option<usize>| {
            let mut c = cluster(8, 4);
            let obs = mapg_obs::ObsHandle::enabled(Some(64), true);
            c.set_obs(obs.clone());
            match shards {
                None => c.run(8_000, &mut PassiveHandler),
                Some(s) => c
                    .try_run_sharded(8_000, &PassiveHandler, s)
                    .expect("sharded run"),
            }
            obs.collect()
        };
        let (wheel_trace, wheel_metrics) = run(None);
        let wheel_trace = wheel_trace.expect("trace enabled");
        assert!(wheel_trace.dropped() > 0, "ring small enough to overflow");
        for shards in [1, 2, 4] {
            let (trace, metrics) = run(Some(shards));
            assert_eq!(
                trace.expect("trace enabled"),
                wheel_trace,
                "shards = {shards}"
            );
            assert_eq!(metrics, wheel_metrics, "shards = {shards}");
        }
    }

    #[test]
    fn incremental_sharded_runs_accumulate_like_the_wheel() {
        let mut wheel = cluster(4, 2);
        wheel.run(5_000, &mut PassiveHandler);
        wheel.run(5_000, &mut PassiveHandler);
        let mut sharded = cluster(4, 2);
        sharded
            .try_run_sharded(5_000, &PassiveHandler, 2)
            .expect("first segment");
        sharded
            .try_run_sharded(5_000, &PassiveHandler, 2)
            .expect("second segment");
        assert_eq!(sharded.stats(), wheel.stats());
    }

    /// The session API: many segments on one set of arenas/workers must
    /// be bit-identical (stats, trace, metrics) to the same segments on
    /// the global wheel — at every worker-thread count.
    #[test]
    fn session_segments_are_bit_identical_to_wheel_at_any_thread_count() {
        let reference = {
            let mut c = cluster(8, 4);
            let obs = mapg_obs::ObsHandle::enabled(Some(64), true);
            c.set_obs(obs.clone());
            for _ in 0..3 {
                c.run(3_000, &mut PassiveHandler);
            }
            (c.stats(), obs.collect())
        };
        for jobs in [1, 2, 4, 8] {
            let mut c = cluster(8, 4);
            let obs = mapg_obs::ObsHandle::enabled(Some(64), true);
            c.set_obs(obs.clone());
            mapg_pool::with_default_jobs(jobs, || {
                c.shard_session(4, &PassiveHandler, |session| {
                    assert!(session.workers() >= 1);
                    for _ in 0..3 {
                        session.try_run(3_000).expect("segment");
                    }
                })
                .expect("session");
            });
            assert_eq!(c.stats(), reference.0, "jobs = {jobs}");
            assert_eq!(obs.collect(), reference.1, "jobs = {jobs}");
            // The cluster is fully reassembled: the wheel still drives it.
            c.run(1_000, &mut PassiveHandler);
        }
    }

    /// Cancellation and resume inside one session: the stash/merge
    /// machinery must work without tearing the session down.
    #[test]
    fn session_cancel_and_resume_within_one_session() {
        let reference = {
            let mut c = cluster(6, 3);
            let obs = mapg_obs::ObsHandle::enabled(Some(128), true);
            c.set_obs(obs.clone());
            c.run(6_000, &mut PassiveHandler);
            c.run(6_000, &mut PassiveHandler);
            (c.stats(), obs.collect())
        };
        let mut c = cluster(6, 3);
        let obs = mapg_obs::ObsHandle::enabled(Some(128), true);
        c.set_obs(obs.clone());
        c.shard_session(3, &PassiveHandler, |session| {
            let cancel = CancelToken::new();
            cancel.cancel();
            assert_eq!(
                session.try_run_with_cancel(6_000, &cancel),
                Err(RunError::Cancelled)
            );
            session.try_resume().expect("resume");
            // The next segment auto-resumes cleanly (nothing pending).
            session.try_run(6_000).expect("second segment");
        })
        .expect("session");
        assert!(!c.has_pending_segment());
        assert_eq!(c.stats(), reference.0);
        assert_eq!(obs.collect(), reference.1);
    }

    #[test]
    fn cancelled_run_resumes_to_the_same_result() {
        let reference = {
            let mut c = cluster(6, 3);
            let obs = mapg_obs::ObsHandle::enabled(Some(128), true);
            c.set_obs(obs.clone());
            c.run(6_000, &mut PassiveHandler);
            (c.stats(), obs.collect())
        };

        let mut c = cluster(6, 3);
        let obs = mapg_obs::ObsHandle::enabled(Some(128), true);
        c.set_obs(obs.clone());
        let cancel = CancelToken::new();
        cancel.cancel();
        let err = c
            .try_run_sharded_with_cancel(6_000, &PassiveHandler, 3, &cancel)
            .unwrap_err();
        assert_eq!(err, RunError::Cancelled);
        assert!(c.has_pending_segment());
        // Nothing merged yet: the parent handle saw no records.
        assert_eq!(obs.collect().0.expect("trace enabled").len(), 0);

        c.try_resume_sharded(&PassiveHandler, 3)
            .expect("resume completes the segment");
        assert!(!c.has_pending_segment());
        assert_eq!(c.stats(), reference.0);
        assert_eq!(obs.collect(), reference.1);
        // Resuming again is a no-op.
        c.try_resume_sharded(&PassiveHandler, 3)
            .expect("idempotent");
        assert_eq!(obs.collect(), reference.1);
    }

    #[test]
    fn next_sharded_run_auto_resumes_a_cancelled_segment() {
        let mut wheel = cluster(4, 2);
        wheel.run(4_000, &mut PassiveHandler);
        wheel.run(4_000, &mut PassiveHandler);

        let mut c = cluster(4, 2);
        let cancel = CancelToken::new();
        cancel.cancel();
        assert_eq!(
            c.try_run_sharded_with_cancel(4_000, &PassiveHandler, 2, &cancel),
            Err(RunError::Cancelled)
        );
        c.try_run_sharded(4_000, &PassiveHandler, 2)
            .expect("auto-resume then run the next segment");
        assert_eq!(c.stats(), wheel.stats());
    }

    #[test]
    fn unfired_token_behaves_like_no_token() {
        let mut plain = cluster(4, 2);
        plain
            .try_run_sharded(5_000, &PassiveHandler, 2)
            .expect("plain");
        let mut watched = cluster(4, 2);
        let cancel = CancelToken::new();
        watched
            .try_run_sharded_with_cancel(5_000, &PassiveHandler, 2, &cancel)
            .expect("token never fires");
        assert_eq!(plain.stats(), watched.stats());
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let mut c = cluster(2, 2);
        assert_eq!(
            c.try_run_sharded(0, &PassiveHandler, 2),
            Err(RunError::ZeroInstructions)
        );
        assert_eq!(
            c.try_run_sharded(1_000, &PassiveHandler, 0),
            Err(RunError::ZeroShards)
        );
        assert_eq!(
            c.try_resume_sharded(&PassiveHandler, 0),
            Err(RunError::ZeroShards)
        );
        assert!(c
            .shard_session(0, &PassiveHandler, |_| ())
            .is_err_and(|e| e == RunError::ZeroShards));
        let cancel = CancelToken::new();
        assert_eq!(
            c.try_run_sharded_with_cancel(0, &PassiveHandler, 2, &cancel),
            Err(RunError::ZeroInstructions)
        );
        assert_eq!(
            c.try_run_sharded_with_cancel(1_000, &PassiveHandler, 0, &cancel),
            Err(RunError::ZeroShards)
        );
        c.shard_session(2, &PassiveHandler, |session| {
            assert_eq!(session.try_run(0), Err(RunError::ZeroInstructions));
        })
        .expect("session opens");
    }

    #[test]
    fn single_channel_cluster_shards_to_the_wheel_path() {
        // channels == 1: any shard count collapses to the global wheel.
        let reference = wheel_run(4, 1, 10_000);
        let mut c = cluster(4, 1);
        c.try_run_sharded(10_000, &PassiveHandler, 8)
            .expect("sharded run");
        assert_eq!(c.stats(), reference);
    }

    /// Capture buffers must actually recycle: after the first merged
    /// segment with tracing on, the steady-state segment loop reuses the
    /// drained vectors instead of growing fresh ones.
    #[test]
    fn capture_buffers_recycle_across_segments() {
        let mut c = cluster(4, 2);
        let obs = mapg_obs::ObsHandle::enabled(Some(1 << 16), false);
        c.set_obs(obs);
        c.shard_session(2, &PassiveHandler, |session| {
            for _ in 0..4 {
                session.try_run(2_000).expect("segment");
            }
        })
        .expect("session");
        assert!(
            !c.trace_spares.is_empty(),
            "merged capture buffers return to the spare pool"
        );
        assert!(c.trace_spares.iter().all(|s| s.capacity() > 0));
    }
}
