//! Core model for the MAPG reproduction.
//!
//! The gating policy under study needs exactly one thing from the core
//! model: a faithful stream of **stall intervals** — "the core went idle at
//! cycle *t* waiting for data that arrives at cycle *t+d*" — together with
//! enough context (PC, outstanding-miss count, stall cause) for a predictor
//! to act on. This crate provides:
//!
//! - [`Core`] — a bounded-MLP core that consumes a
//!   [`mapg_trace::EventSource`], issues references into a
//!   [`mapg_mem::MemoryHierarchy`], and *calls out* to a [`StallHandler`]
//!   whenever it blocks;
//! - [`StallHandler`] — the hook a power-gating controller implements; the
//!   handler may *extend* a stall (wake-up penalty) by returning a resume
//!   time later than the data-ready time;
//! - [`Cluster`] — N cores sharing one hierarchy, stepped in global time
//!   order so DRAM contention between cores is honoured.
//!
//! # Model summary
//!
//! - Compute quanta advance core time directly.
//! - Stores are posted (write-buffered): they occupy the hierarchy but never
//!   block retirement.
//! - Loads served by L1/L2 charge a small pipelined penalty.
//! - Loads served by DRAM become *outstanding misses*. The core keeps
//!   executing ("runahead" under the miss) until either (a) it reaches its
//!   MLP limit, or (b) it needs the value of an in-flight miss (a
//!   `dependent` access). Both block the core and surface as stalls.
//!
//! # Example
//!
//! ```
//! use mapg_cpu::{Core, CoreConfig, PassiveHandler};
//! use mapg_mem::{HierarchyConfig, MemoryHierarchy};
//! use mapg_trace::{SyntheticWorkload, WorkloadProfile};
//!
//! let profile = WorkloadProfile::mem_bound("demo");
//! let workload = SyntheticWorkload::new(&profile, 1);
//! let mut memory = MemoryHierarchy::new(HierarchyConfig::baseline());
//! let mut core = Core::new(CoreConfig::default(), workload);
//! let mut handler = PassiveHandler;
//! core.run(1_000_000, &mut memory, &mut handler);
//! let stats = core.stats();
//! assert!(stats.stall_cycles > 0, "memory-bound workloads stall");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod core_model;
mod error;
pub mod merge;
mod reference;
mod sched;
mod shard;
mod stall;

pub use cluster::{Cluster, ClusterStats};
pub use core_model::{Core, CoreConfig, CoreStats};
pub use error::RunError;
pub use merge::KwayMerger;
pub use reference::ReferenceCluster;
pub use shard::ShardSession;
pub use stall::{CoreId, PassiveHandler, StallCause, StallHandler, StallInfo, SyncStallHandler};
