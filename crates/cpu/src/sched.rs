//! The cluster's event-wheel scheduler: a compact binary min-heap of
//! cores keyed by local time.
//!
//! [`Cluster::run`](crate::Cluster::run) must always advance the core with
//! the globally smallest timestamp so shared-DRAM contention emerges from
//! real interleaving. The original implementation re-scanned every core
//! with a linear `min_by_key` on each event step — O(steps × cores), and
//! cache-hostile because the scan strides over the full `Core` structs
//! (workload state, histograms, …) just to read two words. This heap keeps
//! exactly those two words per core — `(local_time, core_index)` — in one
//! contiguous allocation, making a scheduling decision O(log N) with all
//! key comparisons landing in a handful of cache lines.
//!
//! Determinism: keys order lexicographically by `(time, index)`, so ties
//! in local time always resolve to the lowest core index — the same core
//! the linear scan's `min_by_key` would have picked. The equivalence is
//! enforced by the proptest oracle in `tests/proptest_scheduler.rs` and
//! by the byte-identical golden tables.

use mapg_units::Cycle;

/// Scheduling key for one core: its local timestamp plus its index as the
/// deterministic tie-break.
///
/// Packed as `(time << 32) | index` in one `u128` so the lexicographic
/// `(time, index)` order is a single scalar compare. The derived
/// two-field `Ord` compiled to a compare-branch-compare chain on the
/// sift-down's critical path; a `u128` compare is a branch-free
/// `sub`/`sbb` pair, which lets the min-of-children select below run on
/// conditional moves alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct CoreKey(u128);

impl CoreKey {
    /// Packs a core's local time (primary sort key) and cluster index
    /// (tie-break, always unique).
    pub fn new(at: Cycle, index: u32) -> Self {
        CoreKey((u128::from(at.raw()) << 32) | u128::from(index))
    }

    /// The core's index within the cluster.
    pub fn index(self) -> u32 {
        self.0 as u32
    }

    /// The packed `(time, index)` scalar, used by the sharded engine as a
    /// per-step sort key when merging shard-local trace streams back into
    /// global emission order.
    pub fn raw(self) -> u128 {
        self.0
    }
}

/// A hand-rolled 4-ary min-heap of [`CoreKey`]s.
///
/// `std::collections::BinaryHeap` would do, but the scheduler's common
/// operation after the run-ahead loop is *update the minimum in place*
/// (the popped core ran ahead and merely needs its key refreshed), which
/// the standard heap can only express as pop + push — two sifts instead of
/// one. The three operations here are exactly what `Cluster::run` needs.
///
/// The branching factor is 4 rather than 2: a sift-down then touches half
/// as many levels (two for 16 cores), and the min-of-children select
/// compiles to conditional moves, so the only data-dependent branch per
/// level is the final parent-vs-child compare. Heap shape is internal —
/// every valid arrangement pops the identical `(time, index)` sequence —
/// so this cannot perturb the schedule.
#[derive(Debug, Default)]
pub(crate) struct SchedHeap {
    keys: Vec<CoreKey>,
}

impl SchedHeap {
    /// An empty heap with room for `capacity` cores.
    pub fn with_capacity(capacity: usize) -> Self {
        SchedHeap {
            keys: Vec::with_capacity(capacity),
        }
    }

    /// Number of cores currently scheduled.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// The smallest key, if any.
    pub fn peek(&self) -> Option<CoreKey> {
        self.keys.first().copied()
    }

    /// Whether `key` is still the global minimum — i.e. no *other*
    /// scheduled core beats it. The run-ahead loop itself uses the fused
    /// [`SchedHeap::replace_min`] (whose fast path is exactly this test);
    /// kept for the scheduler tests, which exercise the predicate
    /// directly.
    #[cfg(test)]
    pub fn still_min(&self, key: CoreKey) -> bool {
        match self.peek() {
            Some(top) => key < top,
            None => true,
        }
    }

    /// Removes every scheduled core, keeping the allocation. The sharded
    /// engine holds one heap per channel for a whole session and refills
    /// it each segment, so steady-state scheduling allocates nothing.
    pub fn clear(&mut self) {
        self.keys.clear();
    }

    /// Inserts a core.
    pub fn push(&mut self, key: CoreKey) {
        self.keys.push(key);
        self.sift_up(self.keys.len() - 1);
    }

    /// The fused form of push-then-pop: returns `key` untouched when it
    /// still outranks every scheduled core (the run-ahead case, no heap
    /// traffic at all), otherwise swaps `key` into the root's place and
    /// returns the old root after one sift-down — half the work of the
    /// separate push + pop the standard heap forces.
    #[inline]
    pub fn replace_min(&mut self, key: CoreKey) -> CoreKey {
        match self.peek() {
            Some(top) if top < key => {
                self.keys[0] = key;
                self.sift_down(0);
                top
            }
            _ => key,
        }
    }

    /// Removes and returns the smallest key.
    pub fn pop(&mut self) -> Option<CoreKey> {
        let min = self.peek()?;
        let last = self.keys.pop().expect("peek succeeded, heap non-empty");
        if !self.keys.is_empty() {
            self.keys[0] = last;
            self.sift_down(0);
        }
        Some(min)
    }

    fn sift_up(&mut self, mut child: usize) {
        while child > 0 {
            let parent = (child - 1) / 4;
            if self.keys[child] >= self.keys[parent] {
                break;
            }
            self.keys.swap(child, parent);
            child = parent;
        }
    }

    fn sift_down(&mut self, mut parent: usize) {
        let len = self.keys.len();
        loop {
            let first = 4 * parent + 1;
            if first >= len {
                break;
            }
            // Branchless min over the up-to-four children: each candidate
            // folds in with a conditional move.
            let mut smallest_child = first;
            let mut smallest = self.keys[first];
            let last = (first + 4).min(len);
            for child in first + 1..last {
                let key = self.keys[child];
                let better = key < smallest;
                smallest_child = if better { child } else { smallest_child };
                smallest = if better { key } else { smallest };
            }
            if self.keys[parent] <= smallest {
                break;
            }
            self.keys.swap(parent, smallest_child);
            parent = smallest_child;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(at: u64, index: u32) -> CoreKey {
        CoreKey::new(Cycle::new(at), index)
    }

    #[test]
    fn pops_in_time_order() {
        let mut heap = SchedHeap::with_capacity(4);
        for (at, index) in [(30, 0), (10, 1), (20, 2), (5, 3)] {
            heap.push(key(at, index));
        }
        let order: Vec<u32> = std::iter::from_fn(|| heap.pop())
            .map(|k| k.index())
            .collect();
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn ties_resolve_to_lowest_index() {
        let mut heap = SchedHeap::with_capacity(4);
        for index in [2, 0, 3, 1] {
            heap.push(key(100, index));
        }
        let order: Vec<u32> = std::iter::from_fn(|| heap.pop())
            .map(|k| k.index())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn still_min_consults_remaining_keys_only() {
        let mut heap = SchedHeap::with_capacity(3);
        heap.push(key(10, 1));
        heap.push(key(20, 2));
        let popped = heap.pop().expect("non-empty");
        assert_eq!(popped.index(), 1);
        // The popped core ran to t=15: still ahead of core 2 at t=20.
        assert!(heap.still_min(key(15, 1)));
        // At t=20 the times tie; index 1 < 2 keeps the runner in front.
        assert!(heap.still_min(key(20, 1)));
        // Past t=20 core 2 wins.
        assert!(!heap.still_min(key(21, 1)));
        // An empty heap never outranks the runner.
        let mut solo = SchedHeap::with_capacity(1);
        assert!(solo.still_min(key(u64::MAX, 0)));
        assert_eq!(solo.pop(), None);
        assert_eq!(solo.len(), 0);
    }

    /// The run-ahead fast path on an empty heap: a lone core must keep
    /// running (its key comes straight back) and the heap must stay
    /// untouched — this is every single-core simulation's steady state.
    #[test]
    fn replace_min_on_empty_heap_returns_key_unchanged() {
        let mut heap = SchedHeap::with_capacity(1);
        for at in [0, 7, u64::MAX] {
            let k = key(at, 0);
            assert_eq!(heap.replace_min(k), k);
            assert_eq!(heap.len(), 0);
        }
    }

    /// While the runner still outranks every scheduled core, `replace_min`
    /// must not move anything: no swap, no sift, heap bit-identical.
    #[test]
    fn replace_min_fast_path_leaves_heap_untouched() {
        let mut heap = SchedHeap::with_capacity(3);
        heap.push(key(50, 1));
        heap.push(key(60, 2));
        let runner = key(49, 0);
        assert_eq!(heap.replace_min(runner), runner);
        assert_eq!(heap.peek(), Some(key(50, 1)));
        assert_eq!(heap.len(), 2);
    }

    /// Tie-breaking through the fused path, both directions: at equal
    /// times the lower index must win, whether it is the runner or the
    /// scheduled core. A `<=` in place of `<` in either comparison would
    /// flip one of these and diverge from the reference scan.
    #[test]
    fn replace_min_resolves_ties_by_index() {
        // Scheduled core 1 ties the runner (index 2): core 1 preempts.
        let mut heap = SchedHeap::with_capacity(2);
        heap.push(key(100, 1));
        assert_eq!(heap.replace_min(key(100, 2)), key(100, 1));
        assert_eq!(heap.peek(), Some(key(100, 2)));

        // Runner (index 0) ties scheduled core 1: the runner keeps going.
        let mut heap = SchedHeap::with_capacity(2);
        heap.push(key(100, 1));
        assert_eq!(heap.replace_min(key(100, 0)), key(100, 0));
        assert_eq!(heap.peek(), Some(key(100, 1)));
    }

    /// Draining to empty and re-admitting (what incremental `Cluster::run`
    /// calls do when finished cores rejoin) must behave like a fresh heap.
    #[test]
    fn drain_then_readmit_behaves_like_fresh() {
        let mut heap = SchedHeap::with_capacity(2);
        heap.push(key(10, 0));
        assert_eq!(heap.pop(), Some(key(10, 0)));
        assert_eq!(heap.pop(), None);
        heap.push(key(5, 1));
        heap.push(key(3, 0));
        assert_eq!(heap.replace_min(key(4, 2)), key(3, 0));
        assert_eq!(heap.pop(), Some(key(4, 2)));
        assert_eq!(heap.pop(), Some(key(5, 1)));
        assert_eq!(heap.pop(), None);
    }

    /// Clearing drops every scheduled core but leaves the heap ready for
    /// refill — the per-segment reset the sharded engine's resident heaps
    /// go through.
    #[test]
    fn clear_then_refill_behaves_like_fresh() {
        let mut heap = SchedHeap::with_capacity(3);
        heap.push(key(10, 0));
        heap.push(key(20, 1));
        heap.clear();
        assert_eq!(heap.len(), 0);
        assert_eq!(heap.pop(), None);
        heap.push(key(7, 2));
        heap.push(key(3, 1));
        assert_eq!(heap.pop(), Some(key(3, 1)));
        assert_eq!(heap.pop(), Some(key(7, 2)));
        assert_eq!(heap.pop(), None);
    }

    /// Partial child families at every size around the branching factor:
    /// the sift-down child scan must clamp at `len` without skipping or
    /// over-reading (sizes 1..=6 cross the one-level/two-level boundary
    /// of the 4-ary layout).
    #[test]
    fn partial_child_families_sort_correctly() {
        for n in 1..=6u32 {
            let mut heap = SchedHeap::with_capacity(n as usize);
            // Descending pushes force a sift on every insert and leave the
            // worst-case arrangement for the pops.
            for index in 0..n {
                heap.push(key(u64::from(n - index) * 10, index));
            }
            let popped: Vec<u32> = std::iter::from_fn(|| heap.pop())
                .map(|k| k.index())
                .collect();
            let expected: Vec<u32> = (0..n).rev().collect();
            assert_eq!(popped, expected, "n = {n}");
        }
    }

    #[test]
    fn random_workout_matches_sorted_order() {
        // Deterministic xorshift stream of keys; popping must sort them.
        let mut x: u64 = 0x1234_5678_9abc_def0;
        let mut keys = Vec::new();
        for index in 0..200u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            keys.push(key(x % 50, index));
        }
        let mut heap = SchedHeap::with_capacity(keys.len());
        for &k in &keys {
            heap.push(k);
        }
        assert_eq!(heap.len(), keys.len());
        let popped: Vec<CoreKey> = std::iter::from_fn(|| heap.pop()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(popped, sorted);
    }
}
