//! The stall-notification interface between the core and a power-gating
//! controller.

use core::fmt;

use mapg_units::Cycle;

/// Identifies a core within a cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Why the core blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// The core reached its outstanding-miss (MLP) limit and must wait for
    /// the *oldest* miss to return.
    MlpLimit,
    /// A dependent access needs the value of an in-flight miss and must
    /// wait for *that* miss to return (pointer chasing).
    Dependency,
    /// The program itself has nothing to run (blocked on I/O,
    /// descheduled) — the long-idle interval classic OS-driven power
    /// gating targets.
    Idle,
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallCause::MlpLimit => f.write_str("mlp-limit"),
            StallCause::Dependency => f.write_str("dependency"),
            StallCause::Idle => f.write_str("idle"),
        }
    }
}

/// Context handed to the [`StallHandler`] at the start of a stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallInfo {
    /// Which core is stalling.
    pub core: CoreId,
    /// Cycle at which the core blocked.
    pub start: Cycle,
    /// Cycle at which the blocking data arrives. The handler may use this
    /// for *post-hoc predictor training only* — gating decisions must be
    /// made from predictions, and the split is exercised by the oracle-vs-
    /// predictive policy experiments.
    pub data_ready: Cycle,
    /// PC of the instruction that blocked (predictor index).
    pub pc: u64,
    /// Number of misses in flight at the moment of blocking (including the
    /// one being waited on).
    pub outstanding: usize,
    /// Why the core blocked.
    pub cause: StallCause,
}

impl StallInfo {
    /// The stall's intrinsic duration (before any wake-up penalty).
    pub fn natural_duration(&self) -> mapg_units::Cycles {
        self.data_ready.saturating_since(self.start)
    }
}

/// A power-management controller's view of core stalls.
///
/// The core calls [`StallHandler::on_stall`] the moment it blocks; the
/// handler decides what to do with the idle interval (nothing, clock-gate,
/// power-gate, DVFS…) and returns the cycle at which the core actually
/// resumes execution. The contract:
///
/// - the returned resume time must be `>= info.data_ready` (data cannot be
///   consumed before it arrives); the core enforces this with a debug
///   assertion;
/// - any excess over `data_ready` is a wake-up penalty and lands on the
///   program's critical path.
pub trait StallHandler {
    /// Reacts to a stall; returns the cycle at which the core resumes.
    fn on_stall(&mut self, info: &StallInfo) -> Cycle;
}

/// The do-nothing handler: the core resumes exactly when its data arrives.
/// This is the *no-power-management* baseline and the default for substrate
/// tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassiveHandler;

impl StallHandler for PassiveHandler {
    fn on_stall(&mut self, info: &StallInfo) -> Cycle {
        info.data_ready
    }
}

impl<H: StallHandler + ?Sized> StallHandler for &mut H {
    fn on_stall(&mut self, info: &StallInfo) -> Cycle {
        (**self).on_stall(info)
    }
}

/// A stall handler shard workers can share by reference.
///
/// The sharded cluster engine ([`Cluster::try_run_sharded`]
/// (crate::Cluster::try_run_sharded)) advances independent memory-channel
/// groups on parallel workers, so the handler is invoked concurrently and
/// must not carry cross-core mutable state — `resolve` takes `&self` and
/// the trait requires [`Sync`]. That restriction is exactly the
/// determinism boundary: a handler whose answer depends only on the
/// [`StallInfo`] (plus immutable or internally-ordered state) produces
/// the same resume cycle under any worker interleaving, which is what
/// makes sharded runs bit-identical to single-wheel runs. Stateful
/// controllers whose decisions couple cores (token ledgers, di/dt veto
/// windows, energy accumulation in observation order) cannot implement
/// this trait and stay on the exact global wheel — see DESIGN.md §13.
pub trait SyncStallHandler: Sync {
    /// Reacts to a stall; returns the cycle at which the core resumes.
    /// The same contract as [`StallHandler::on_stall`] applies: the
    /// returned cycle must be `>= info.data_ready`.
    fn resolve(&self, info: &StallInfo) -> Cycle;
}

impl SyncStallHandler for PassiveHandler {
    fn resolve(&self, info: &StallInfo) -> Cycle {
        info.data_ready
    }
}

/// Any shared sync handler is usable where an exclusive handler is
/// expected: `&H` implements [`StallHandler`] by delegating to
/// [`SyncStallHandler::resolve`]. This is how the per-channel wheels and
/// the serial fallback drive the existing core-stepping code with a
/// shared reference.
impl<H: SyncStallHandler> StallHandler for &H {
    fn on_stall(&mut self, info: &StallInfo) -> Cycle {
        (**self).resolve(info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapg_units::Cycles;

    #[test]
    fn natural_duration() {
        let info = StallInfo {
            core: CoreId(0),
            start: Cycle::new(100),
            data_ready: Cycle::new(350),
            pc: 0x400,
            outstanding: 2,
            cause: StallCause::Dependency,
        };
        assert_eq!(info.natural_duration(), Cycles::new(250));
    }

    #[test]
    fn passive_handler_returns_data_ready() {
        let info = StallInfo {
            core: CoreId(1),
            start: Cycle::new(0),
            data_ready: Cycle::new(42),
            pc: 0,
            outstanding: 1,
            cause: StallCause::MlpLimit,
        };
        assert_eq!(PassiveHandler.on_stall(&info), Cycle::new(42));
    }

    #[test]
    fn handler_usable_through_mut_ref() {
        fn takes_handler<H: StallHandler>(mut h: H, info: &StallInfo) -> Cycle {
            h.on_stall(info)
        }
        let info = StallInfo {
            core: CoreId(0),
            start: Cycle::new(0),
            data_ready: Cycle::new(7),
            pc: 0,
            outstanding: 1,
            cause: StallCause::MlpLimit,
        };
        let mut handler = PassiveHandler;
        assert_eq!(takes_handler(&mut handler, &info), Cycle::new(7));
    }

    #[test]
    fn display_impls() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(StallCause::MlpLimit.to_string(), "mlp-limit");
        assert_eq!(StallCause::Dependency.to_string(), "dependency");
    }
}
