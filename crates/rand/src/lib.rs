//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this minimal shim instead of the upstream crate. It provides:
//!
//! - [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator seeded via
//!   SplitMix64, matching upstream's `SeedableRng::seed_from_u64` contract
//!   (identical seeds ⇒ identical streams; the *values* differ from
//!   upstream's ChaCha-based `StdRng`, which is fine because nothing in the
//!   workspace depends on the specific stream, only on determinism);
//! - the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits with the methods the
//!   workspace calls: `gen::<f64>()`, `gen::<u64>()`, `gen::<bool>()`,
//!   `gen_range(Range<_>)`, and `gen_bool(p)`.
//!
//! Everything is implemented from scratch on stable `std`; there are no
//! external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level generator interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// Produces the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Produces the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a generator (the shim's
/// equivalent of sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is < 2^-32 for every span the workspace uses;
                // determinism, not statistical perfection, is the contract.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64)
                    .wrapping_sub(start as u64)
                    .wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64)
                    as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution (uniform
    /// bits; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Identical seeds produce
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*
    /// seeded via SplitMix64.
    ///
    /// Not the upstream ChaCha12 `StdRng` — only the determinism contract
    /// (same seed ⇒ same stream) is preserved, which is all the workspace
    /// relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_splitmix(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..100)
            .filter(|_| a.gen::<u64>() == b.gen::<u64>())
            .count();
        assert!(same < 5, "seeds 1 and 2 should diverge, {same} collisions");
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn float_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5u64..5);
    }
}
