//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this minimal shim instead of the upstream crate. It runs each benchmark
//! for the configured sample count within the configured measurement window
//! and prints mean wall-clock time per iteration — no statistical analysis,
//! outlier detection, HTML reports, or baseline comparison.
//!
//! Covered API: [`Criterion`], [`Criterion::benchmark_group`] with
//! `sample_size` / `warm_up_time` / `measurement_time` /
//! `bench_function` / `bench_with_input` / `finish`,
//! [`Criterion::bench_function`], [`Bencher::iter`], [`BenchmarkId::new`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records total elapsed wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks sharing timing configuration.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Runs a standalone benchmark with default group settings.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        // Standalone benches in this workspace are micro-benchmarks; a
        // short window keeps `cargo bench` usable without the statistics
        // machinery that would justify a longer one.
        group.sample_size(50);
        group.warm_up_time(Duration::from_millis(200));
        group.measurement_time(Duration::from_secs(1));
        group.run(&name, f);
        self
    }
}

/// A named set of benchmarks with shared sample-count and timing windows.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be positive");
        self.sample_size = samples;
        self.warm_up_time = self.warm_up_time.min(Duration::from_secs(1));
        self
    }

    /// Sets the warm-up window run before timing starts.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the measurement window the samples should roughly fill.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run(&id, f);
        self
    }

    /// Benchmarks `f`, passing it a reference to `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.to_string();
        self.run(&id, |b| f(b, input));
        self
    }

    /// Ends the group. (The shim prints per-benchmark results eagerly, so
    /// this only exists for API compatibility.)
    pub fn finish(self) {}

    fn run<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run single iterations until the window elapses, which
        // also yields a per-iteration estimate for sizing the samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            f(&mut bencher);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample so all samples together roughly fill the
        // measurement window, with at least one iteration per sample.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = if per_iter > 0.0 {
            ((budget / per_iter).round() as u64).max(1)
        } else {
            1
        };

        let mut total = Duration::ZERO;
        let mut iterations: u64 = 0;
        for _ in 0..self.sample_size {
            bencher.iterations = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            total += bencher.elapsed;
            iterations += iters_per_sample;
        }

        let mean_ns = total.as_secs_f64() * 1e9 / iterations.max(1) as f64;
        println!(
            "{}/{id}: {:.3} µs/iter ({} samples × {iters_per_sample} iters)",
            self.name,
            mean_ns / 1e3,
            self.sample_size,
        );
    }
}

/// Defines a function that runs a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the given benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_returns() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        group.finish();
        assert!(calls > 0, "benchmark body never ran");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("input", 42), &42u64, |b, &value| {
            b.iter(|| {
                seen = value;
                value
            });
        });
        group.finish();
        assert_eq!(seen, 42);
    }

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
    }
}
