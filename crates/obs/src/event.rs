//! The typed event vocabulary of the simulation trace.

use core::fmt;

/// Which injected fault a [`EventKind::FaultInjected`] record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// A DRAM bank served an access with an injected latency spike.
    DramSpike,
    /// A sleep switch woke slower than its nominal ramp.
    SlowWake,
    /// A granted wake token was dropped and had to be re-acquired.
    TokenDrop,
    /// A wake was pushed back because it fell inside a brownout window.
    BrownoutVeto,
    /// A brownout window opened (subsequent wakes may be vetoed).
    Brownout,
    /// The miss-latency predictor observed a corrupted sample.
    SensorNoise,
}

impl FaultKind {
    /// Stable lowercase name, used in trace JSON.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DramSpike => "dram-spike",
            FaultKind::SlowWake => "slow-wake",
            FaultKind::TokenDrop => "token-drop",
            FaultKind::BrownoutVeto => "brownout-veto",
            FaultKind::Brownout => "brownout",
            FaultKind::SensorNoise => "sensor-noise",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where an event happened: a CPU core, a DRAM bank, or the controller as
/// a whole (safe-mode transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scope {
    /// Per-core event; the id is the core index.
    Core(u32),
    /// Per-DRAM-bank event; the id is the bank index.
    Bank(u32),
    /// Controller-global event.
    Global,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Core(id) => write!(f, "core{id}"),
            Scope::Bank(id) => write!(f, "bank{id}"),
            Scope::Global => f.write_str("global"),
        }
    }
}

/// What happened. Span events come in strictly balanced begin/end pairs
/// per scope; the rest are instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A core stalled on a long-latency memory access.
    StallBegin,
    /// The stalled core resumed execution.
    StallEnd,
    /// The core's sleep-transistor entry completed: it is now power-gated.
    SleepEnter,
    /// The core left the gated state (wake ramp is about to start).
    SleepExit,
    /// The wake ramp started.
    WakeStart,
    /// The wake ramp completed; the core is active again.
    WakeDone,
    /// The token manager granted a wake slot.
    TokenGrant,
    /// The token manager could not grant immediately; the wake was queued.
    TokenDeny,
    /// The watchdog degraded the controller to safe mode.
    SafeModeEnter,
    /// The watchdog re-armed out of safe mode.
    SafeModeExit,
    /// A fault-injection site fired.
    FaultInjected(FaultKind),
}

impl EventKind {
    /// Stable name used in trace JSON (the span name for begin/end pairs).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::StallBegin | EventKind::StallEnd => "stall",
            EventKind::SleepEnter | EventKind::SleepExit => "gated",
            EventKind::WakeStart | EventKind::WakeDone => "wake",
            EventKind::SafeModeEnter | EventKind::SafeModeExit => "safe-mode",
            EventKind::TokenGrant => "token-grant",
            EventKind::TokenDeny => "token-deny",
            EventKind::FaultInjected(kind) => kind.name(),
        }
    }

    /// Stable per-variant name for record-at-a-time wire formats (the
    /// `mapgd` event stream). Unlike [`EventKind::name`], which
    /// collapses a begin/end pair to its span name, every variant gets
    /// a distinct label so a consumer can re-pair spans itself.
    pub fn record_name(self) -> &'static str {
        match self {
            EventKind::StallBegin => "stall-begin",
            EventKind::StallEnd => "stall-end",
            EventKind::SleepEnter => "sleep-enter",
            EventKind::SleepExit => "sleep-exit",
            EventKind::WakeStart => "wake-start",
            EventKind::WakeDone => "wake-done",
            EventKind::TokenGrant => "token-grant",
            EventKind::TokenDeny => "token-deny",
            EventKind::SafeModeEnter => "safe-mode-enter",
            EventKind::SafeModeExit => "safe-mode-exit",
            EventKind::FaultInjected(kind) => kind.name(),
        }
    }

    /// True for the opening half of a span pair.
    pub fn is_span_begin(self) -> bool {
        matches!(
            self,
            EventKind::StallBegin
                | EventKind::SleepEnter
                | EventKind::WakeStart
                | EventKind::SafeModeEnter
        )
    }

    /// True for the closing half of a span pair.
    pub fn is_span_end(self) -> bool {
        matches!(
            self,
            EventKind::StallEnd
                | EventKind::SleepExit
                | EventKind::WakeDone
                | EventKind::SafeModeExit
        )
    }

    /// The closing kind matching this opening kind, if it is one.
    pub fn matching_end(self) -> Option<EventKind> {
        match self {
            EventKind::StallBegin => Some(EventKind::StallEnd),
            EventKind::SleepEnter => Some(EventKind::SleepExit),
            EventKind::WakeStart => Some(EventKind::WakeDone),
            EventKind::SafeModeEnter => Some(EventKind::SafeModeExit),
            _ => None,
        }
    }
}

/// One trace entry: a cycle timestamp, a scope, and an event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Cycle timestamp.
    pub at: u64,
    /// Where it happened.
    pub scope: Scope,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_pairs_are_consistent() {
        for begin in [
            EventKind::StallBegin,
            EventKind::SleepEnter,
            EventKind::WakeStart,
            EventKind::SafeModeEnter,
        ] {
            let end = begin.matching_end().expect("span begin has an end");
            assert!(begin.is_span_begin());
            assert!(end.is_span_end());
            assert_eq!(begin.name(), end.name(), "pair must share a span name");
        }
        for instant in [
            EventKind::TokenGrant,
            EventKind::TokenDeny,
            EventKind::FaultInjected(FaultKind::DramSpike),
        ] {
            assert!(!instant.is_span_begin() && !instant.is_span_end());
            assert!(instant.matching_end().is_none());
        }
    }

    #[test]
    fn record_names_are_distinct_per_variant() {
        let kinds = [
            EventKind::StallBegin,
            EventKind::StallEnd,
            EventKind::SleepEnter,
            EventKind::SleepExit,
            EventKind::WakeStart,
            EventKind::WakeDone,
            EventKind::TokenGrant,
            EventKind::TokenDeny,
            EventKind::SafeModeEnter,
            EventKind::SafeModeExit,
            EventKind::FaultInjected(FaultKind::DramSpike),
        ];
        let names: std::collections::BTreeSet<&str> =
            kinds.iter().map(|k| k.record_name()).collect();
        assert_eq!(
            names.len(),
            kinds.len(),
            "wire labels must not collapse variants"
        );
        assert_eq!(EventKind::SleepEnter.record_name(), "sleep-enter");
        assert_eq!(EventKind::SleepExit.record_name(), "sleep-exit");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EventKind::SleepEnter.name(), "gated");
        assert_eq!(
            EventKind::FaultInjected(FaultKind::SlowWake).name(),
            "slow-wake"
        );
        assert_eq!(Scope::Core(3).to_string(), "core3");
        assert_eq!(Scope::Bank(1).to_string(), "bank1");
        assert_eq!(Scope::Global.to_string(), "global");
    }
}
