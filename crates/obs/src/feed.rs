//! A shared, bounded, cursor-addressed feed of trace records.
//!
//! [`TraceBuffer`] is private to one simulation run; a *service* (the
//! `mapgd` daemon) needs the opposite shape: one producer-side handle a
//! job publishes batches into as simulations complete, and any number
//! of consumer-side cursors that poll independently without disturbing
//! each other or the producer. [`EventHub`] is that shape:
//!
//! - Every published record gets an absolute, monotonically increasing
//!   sequence number, starting at 0. Consumers address the feed by
//!   cursor (the next sequence they want) and get back the batch plus
//!   the cursor to resume from — stateless on the hub side, so a slow
//!   or disconnected consumer costs nothing.
//! - The buffer is bounded: when `capacity` is exceeded the oldest
//!   records are evicted and *counted*. A consumer whose cursor has
//!   fallen off the tail learns exactly how many records it missed
//!   ([`FeedBatch::missed`]) — losses are observable, never silent
//!   (the same contract as [`TraceBuffer`]'s drop counter).
//! - [`EventHub::close`] marks the stream complete; consumers see
//!   [`FeedBatch::closed`] once they have drained everything, which is
//!   the streaming termination signal.
//!
//! Cloning an [`EventHub`] shares the underlying feed (like
//! [`MetricsHub`](crate::MetricsHub)); the ambient accessors
//! ([`ambient_event_hub`](crate::ambient_event_hub) /
//! [`with_ambient_event_hub`](crate::with_ambient_event_hub)) let a
//! driver install a hub for config-building code deep in a call tree,
//! mirroring the ambient metrics hub.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::event::TraceRecord;

/// One poll result: the records from the requested cursor onward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedBatch {
    /// The records, in publication order.
    pub records: Vec<TraceRecord>,
    /// Cursor to pass to the next poll (sequence number one past the
    /// last record returned, or the requested cursor when empty).
    pub next_cursor: u64,
    /// Records the consumer asked for but that were already evicted
    /// (its cursor had fallen off the bounded tail).
    pub missed: u64,
    /// True once the producer closed the feed *and* this batch reaches
    /// its end — no further records will ever arrive.
    pub closed: bool,
}

#[derive(Debug)]
struct FeedState {
    /// Retained records; the front has sequence `start_seq`.
    buf: VecDeque<TraceRecord>,
    /// Absolute sequence of the front of `buf`.
    start_seq: u64,
    /// Absolute sequence the next published record will get.
    next_seq: u64,
    /// Records evicted from the bounded buffer so far.
    evicted: u64,
    /// Producer is done; no more publishes will arrive.
    closed: bool,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<FeedState>,
    wakeup: Condvar,
    capacity: usize,
}

/// A shared bounded event feed (see the module docs).
#[derive(Debug, Clone)]
pub struct EventHub {
    inner: Arc<Inner>,
}

/// Default retained-record capacity for [`EventHub::new`] consumers
/// that have no better number: matches the trace ring default.
pub const DEFAULT_FEED_CAPACITY: usize = crate::DEFAULT_TRACE_CAPACITY;

impl EventHub {
    /// A new feed retaining at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> EventHub {
        assert!(capacity > 0, "event feed capacity must be non-zero");
        EventHub {
            inner: Arc::new(Inner {
                state: Mutex::new(FeedState {
                    buf: VecDeque::new(),
                    start_seq: 0,
                    next_seq: 0,
                    evicted: 0,
                    closed: false,
                }),
                wakeup: Condvar::new(),
                capacity,
            }),
        }
    }

    /// Publishes `records` in order, evicting the oldest retained
    /// records beyond capacity, and wakes blocked consumers. Publishing
    /// to a closed feed is a no-op (the batch is counted as evicted so
    /// totals stay honest).
    pub fn publish(&self, records: &[TraceRecord]) {
        if records.is_empty() {
            return;
        }
        let mut state = self.lock();
        if state.closed {
            state.evicted += records.len() as u64;
            return;
        }
        for &record in records {
            if state.buf.len() == self.inner.capacity {
                state.buf.pop_front();
                state.start_seq += 1;
                state.evicted += 1;
            }
            state.buf.push_back(record);
            state.next_seq += 1;
        }
        drop(state);
        self.inner.wakeup.notify_all();
    }

    /// Marks the feed complete. Idempotent; wakes blocked consumers.
    pub fn close(&self) {
        self.lock().closed = true;
        self.inner.wakeup.notify_all();
    }

    /// True once [`EventHub::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Total records ever published (including evicted ones).
    pub fn published(&self) -> u64 {
        self.lock().next_seq
    }

    /// Total records evicted from the bounded buffer (plus any batches
    /// published after close).
    pub fn evicted(&self) -> u64 {
        self.lock().evicted
    }

    /// Non-blocking poll: everything retained from `cursor` onward.
    pub fn poll(&self, cursor: u64) -> FeedBatch {
        Self::batch_from(&self.lock(), cursor)
    }

    /// Blocking poll: like [`EventHub::poll`], but when the feed holds
    /// nothing at `cursor` and is not closed, waits up to `timeout` for
    /// records (or close) to arrive. An empty, non-closed batch after
    /// `timeout` means "nothing yet — poll again".
    pub fn wait(&self, cursor: u64, timeout: Duration) -> FeedBatch {
        let state = self.lock();
        let (state, _timed_out) = self
            .inner
            .wakeup
            .wait_timeout_while(state, timeout, |s| s.next_seq <= cursor && !s.closed)
            .expect("event feed poisoned");
        Self::batch_from(&state, cursor)
    }

    fn batch_from(state: &FeedState, cursor: u64) -> FeedBatch {
        let from = cursor.max(state.start_seq);
        let missed = from - cursor;
        let skip = (from - state.start_seq) as usize;
        let records: Vec<TraceRecord> = state.buf.iter().skip(skip).copied().collect();
        let next_cursor = from + records.len() as u64;
        FeedBatch {
            records,
            next_cursor,
            missed,
            closed: state.closed && next_cursor == state.next_seq,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FeedState> {
        self.inner.state.lock().expect("event feed poisoned")
    }
}

thread_local! {
    static AMBIENT_EVENT_HUB: RefCell<Option<EventHub>> = const { RefCell::new(None) };
}

/// The innermost active [`with_ambient_event_hub`] hub on this thread,
/// if any. Config-building code (the experiment registry) uses this to
/// pick up the feed a driver installed, without threading a parameter
/// through every experiment signature — the same pattern as
/// [`ambient_hub`](crate::ambient_hub).
pub fn ambient_event_hub() -> Option<EventHub> {
    AMBIENT_EVENT_HUB.with(|cell| cell.borrow().clone())
}

/// Runs `f` with [`ambient_event_hub`] resolving to `hub` on the
/// current thread, restoring the previous value afterwards (also on
/// panic).
pub fn with_ambient_event_hub<R>(hub: EventHub, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<EventHub>);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_EVENT_HUB.with(|cell| *cell.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(AMBIENT_EVENT_HUB.with(|cell| cell.borrow_mut().replace(hub)));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Scope};

    fn rec(at: u64) -> TraceRecord {
        TraceRecord {
            at,
            scope: Scope::Core(0),
            kind: EventKind::StallBegin,
        }
    }

    #[test]
    fn records_flow_in_order_with_resumable_cursors() {
        let hub = EventHub::new(16);
        hub.publish(&[rec(1), rec(2)]);
        let first = hub.poll(0);
        assert_eq!(first.records, vec![rec(1), rec(2)]);
        assert_eq!(first.next_cursor, 2);
        assert_eq!(first.missed, 0);
        assert!(!first.closed);

        hub.publish(&[rec(3)]);
        let second = hub.poll(first.next_cursor);
        assert_eq!(second.records, vec![rec(3)]);
        assert_eq!(second.next_cursor, 3);

        // A second, independent consumer still sees everything retained.
        assert_eq!(hub.poll(0).records.len(), 3);
        assert_eq!(hub.published(), 3);
    }

    #[test]
    fn eviction_is_counted_not_silent() {
        let hub = EventHub::new(4);
        let all: Vec<TraceRecord> = (0..10).map(rec).collect();
        hub.publish(&all);
        assert_eq!(hub.evicted(), 6);
        let batch = hub.poll(0);
        assert_eq!(batch.missed, 6, "lost records must be reported");
        assert_eq!(batch.records, all[6..].to_vec());
        assert_eq!(batch.next_cursor, 10);
        // A consumer that kept up misses nothing.
        assert_eq!(hub.poll(8).missed, 0);
    }

    #[test]
    fn close_terminates_only_after_drain() {
        let hub = EventHub::new(8);
        hub.publish(&[rec(1)]);
        hub.close();
        assert!(hub.is_closed());
        let undrained = hub.poll(0);
        assert!(
            undrained.closed,
            "a batch reaching the end of a closed feed is terminal"
        );
        let behind = EventHub::new(8);
        behind.publish(&[rec(1), rec(2)]);
        behind.close();
        let partial = FeedBatch {
            records: vec![rec(1)],
            next_cursor: 1,
            missed: 0,
            closed: false,
        };
        // Reconstruct a mid-stream view: cursor 0 limited to nothing —
        // poll always drains fully, so emulate by checking cursor math.
        assert_eq!(behind.poll(1).records, vec![rec(2)]);
        assert!(behind.poll(1).closed);
        assert!(!partial.closed);
        // Publishing after close is dropped but counted.
        behind.publish(&[rec(9)]);
        assert_eq!(behind.published(), 2);
        assert_eq!(behind.evicted(), 1);
    }

    #[test]
    fn wait_blocks_until_publish_or_close() {
        let hub = EventHub::new(8);
        let publisher = hub.clone();
        let got = std::thread::scope(|scope| {
            let waiter = scope.spawn(|| hub.wait(0, Duration::from_secs(30)));
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                publisher.publish(&[rec(7)]);
            });
            waiter.join().unwrap()
        });
        assert_eq!(got.records, vec![rec(7)]);

        let closer = hub.clone();
        let end = std::thread::scope(|scope| {
            let waiter = scope.spawn(|| hub.wait(got.next_cursor, Duration::from_secs(30)));
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                closer.close();
            });
            waiter.join().unwrap()
        });
        assert!(end.records.is_empty());
        assert!(end.closed);

        // Expired timeout with nothing new: empty, not closed.
        let idle = EventHub::new(8);
        let silent = idle.wait(0, Duration::from_millis(10));
        assert!(silent.records.is_empty() && !silent.closed);
    }

    #[test]
    fn ambient_event_hub_overrides_and_restores() {
        assert!(ambient_event_hub().is_none());
        let hub = EventHub::new(8);
        with_ambient_event_hub(hub.clone(), || {
            let seen = ambient_event_hub().expect("ambient event hub visible");
            seen.publish(&[rec(1)]);
        });
        assert!(ambient_event_hub().is_none());
        assert_eq!(hub.published(), 1);

        with_ambient_event_hub(EventHub::new(8), || {
            let inner =
                std::thread::scope(|s| s.spawn(|| ambient_event_hub().is_none()).join().unwrap());
            assert!(inner, "fresh thread must not inherit the ambient hub");
        });
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = EventHub::new(0);
    }
}
