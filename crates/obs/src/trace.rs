//! Bounded event ring buffer and Chrome `trace_event` export.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::event::{EventKind, Scope, TraceRecord};

/// Default ring capacity: ample for every smoke/quick-scale run in the
/// workspace (the regression suite asserts nothing was dropped).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// A bounded, drop-oldest ring of [`TraceRecord`]s.
///
/// The buffer preserves insertion order — which, for a single simulation,
/// is simulation order — and counts records it had to drop, so consumers
/// can tell a complete trace from a truncated one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBuffer {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be at least 1");
        TraceBuffer {
            capacity,
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest if the ring is full.
    pub fn push(&mut self, record: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// True when every emitted record is still present.
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }

    /// Moves every retained record into `out` (appending, oldest first)
    /// and returns the dropped-record count accumulated since the last
    /// drain; both the ring and the counter are reset.
    ///
    /// This is the shard-fork primitive: a sharded cluster run drains each
    /// shard's private ring step by step and replays the records into the
    /// parent ring in merged global order, so the parent ends up
    /// bit-identical to a single-threaded run.
    pub fn drain_into(&mut self, out: &mut Vec<TraceRecord>) -> u64 {
        out.extend(self.records.drain(..));
        std::mem::take(&mut self.dropped)
    }

    /// Adds `n` evictions to the dropped-record count without touching
    /// the retained records — the merge-side complement of
    /// [`TraceBuffer::drain_into`], accounting for records a shard ring
    /// evicted before the merge replayed it.
    pub fn note_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// Iterates retained records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records of the given kind.
    pub fn count_kind(&self, kind: EventKind) -> usize {
        self.iter().filter(|r| r.kind == kind).count()
    }

    /// Sums gated residency per core from `SleepEnter`/`SleepExit` pairs.
    ///
    /// This is the trace side of the workspace's load-bearing cross-check:
    /// on a complete trace the per-core sums reconcile exactly with the
    /// controller's `gated_cycles` total. Unpaired events (possible only
    /// on a truncated trace) are ignored.
    pub fn gated_cycles_per_core(&self) -> BTreeMap<u32, u64> {
        let mut open: BTreeMap<u32, u64> = BTreeMap::new();
        let mut totals: BTreeMap<u32, u64> = BTreeMap::new();
        for record in self.iter() {
            let Scope::Core(core) = record.scope else {
                continue;
            };
            match record.kind {
                EventKind::SleepEnter => {
                    open.insert(core, record.at);
                }
                EventKind::SleepExit => {
                    if let Some(entered) = open.remove(&core) {
                        *totals.entry(core).or_insert(0) += record.at.saturating_sub(entered);
                    }
                }
                _ => {}
            }
        }
        totals
    }

    /// Renders the buffer as Chrome `trace_event` JSON (the "JSON array
    /// format" with a `traceEvents` wrapper), loadable in Perfetto and
    /// `chrome://tracing`.
    ///
    /// Timestamps map cycles to microseconds one-to-one (1 cyc = 1 µs on
    /// the viewer's axis); cores, DRAM banks, and the controller render as
    /// separate named processes. Output is deterministic: records appear
    /// in insertion order, metadata in sorted scope order.
    pub fn to_chrome_trace(&self) -> String {
        let mut scopes: BTreeSet<Scope> = BTreeSet::new();
        for record in self.iter() {
            scopes.insert(record.scope);
        }

        let mut out = String::with_capacity(64 + self.len() * 64);
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        let mut first = true;
        let mut push_line = |out: &mut String, line: &str| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("  ");
            out.push_str(line);
        };

        let mut pids: BTreeSet<u32> = BTreeSet::new();
        for scope in &scopes {
            let (pid, tid, process, thread) = scope_ids(*scope);
            if pids.insert(pid) {
                push_line(
                    &mut out,
                    &format!(
                        "{{\"ph\": \"M\", \"pid\": {pid}, \"name\": \"process_name\", \
                         \"args\": {{\"name\": \"{process}\"}}}}"
                    ),
                );
            }
            push_line(
                &mut out,
                &format!(
                    "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
                     \"name\": \"thread_name\", \"args\": {{\"name\": \"{thread}\"}}}}"
                ),
            );
        }

        for record in self.iter() {
            let (pid, tid, _, _) = scope_ids(record.scope);
            let name = record.kind.name();
            let ts = record.at;
            let line = if record.kind.is_span_begin() {
                format!(
                    "{{\"ph\": \"B\", \"ts\": {ts}, \"pid\": {pid}, \"tid\": {tid}, \
                     \"cat\": \"mapg\", \"name\": \"{name}\"}}"
                )
            } else if record.kind.is_span_end() {
                format!(
                    "{{\"ph\": \"E\", \"ts\": {ts}, \"pid\": {pid}, \"tid\": {tid}, \
                     \"cat\": \"mapg\", \"name\": \"{name}\"}}"
                )
            } else {
                format!(
                    "{{\"ph\": \"i\", \"ts\": {ts}, \"pid\": {pid}, \"tid\": {tid}, \
                     \"cat\": \"mapg\", \"name\": \"{name}\", \"s\": \"t\"}}"
                )
            };
            push_line(&mut out, &line);
        }

        out.push_str("\n]}\n");
        out
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::new(DEFAULT_TRACE_CAPACITY)
    }
}

/// Maps a scope onto (pid, tid, process name, thread name) for the Chrome
/// trace: cores are pid 1, DRAM banks pid 2, the controller pid 3.
fn scope_ids(scope: Scope) -> (u32, u32, &'static str, String) {
    match scope {
        Scope::Core(id) => (1, id, "cores", format!("core {id}")),
        Scope::Bank(id) => (2, id, "dram", format!("bank {id}")),
        Scope::Global => (3, 0, "controller", "safe-mode".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultKind;

    fn rec(at: u64, scope: Scope, kind: EventKind) -> TraceRecord {
        TraceRecord { at, scope, kind }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut buf = TraceBuffer::new(2);
        buf.push(rec(1, Scope::Core(0), EventKind::StallBegin));
        buf.push(rec(2, Scope::Core(0), EventKind::StallEnd));
        assert!(buf.is_complete());
        buf.push(rec(3, Scope::Core(0), EventKind::StallBegin));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 1);
        assert!(!buf.is_complete());
        assert_eq!(buf.iter().next().unwrap().at, 2, "oldest record evicted");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _ = TraceBuffer::new(0);
    }

    #[test]
    fn drain_resets_ring_and_drop_count() {
        let mut buf = TraceBuffer::new(2);
        for at in 0..3 {
            buf.push(rec(at, Scope::Core(0), EventKind::StallBegin));
        }
        let mut out = Vec::new();
        assert_eq!(buf.drain_into(&mut out), 1);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].at, 1, "oldest retained record drains first");
        assert!(buf.is_empty());
        assert!(buf.is_complete(), "drain resets the dropped counter");
        assert_eq!(buf.drain_into(&mut out), 0);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn note_dropped_accumulates() {
        let mut buf = TraceBuffer::new(2);
        buf.note_dropped(0);
        assert!(buf.is_complete());
        buf.note_dropped(3);
        buf.push(rec(1, Scope::Core(0), EventKind::StallBegin));
        assert_eq!(buf.dropped(), 3);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn gated_cycles_sum_per_core() {
        let mut buf = TraceBuffer::default();
        buf.push(rec(10, Scope::Core(0), EventKind::SleepEnter));
        buf.push(rec(40, Scope::Core(0), EventKind::SleepExit));
        buf.push(rec(50, Scope::Core(1), EventKind::SleepEnter));
        buf.push(rec(55, Scope::Core(1), EventKind::SleepExit));
        buf.push(rec(60, Scope::Core(0), EventKind::SleepEnter));
        buf.push(rec(100, Scope::Core(0), EventKind::SleepExit));
        // Bank / unpaired records do not contribute.
        buf.push(rec(
            5,
            Scope::Bank(0),
            EventKind::FaultInjected(FaultKind::DramSpike),
        ));
        buf.push(rec(200, Scope::Core(2), EventKind::SleepExit));
        let per_core = buf.gated_cycles_per_core();
        assert_eq!(per_core.get(&0), Some(&70));
        assert_eq!(per_core.get(&1), Some(&5));
        assert_eq!(per_core.get(&2), None);
    }

    #[test]
    fn chrome_trace_is_wellformed_and_deterministic() {
        let mut buf = TraceBuffer::default();
        buf.push(rec(10, Scope::Core(0), EventKind::StallBegin));
        buf.push(rec(
            12,
            Scope::Bank(1),
            EventKind::FaultInjected(FaultKind::DramSpike),
        ));
        buf.push(rec(20, Scope::Core(0), EventKind::StallEnd));
        buf.push(rec(30, Scope::Global, EventKind::SafeModeEnter));
        buf.push(rec(90, Scope::Global, EventKind::SafeModeExit));
        let json = buf.to_chrome_trace();
        assert_eq!(json, buf.to_chrome_trace(), "rendering must be stable");
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}\n"));
        for needle in [
            "\"traceEvents\"",
            "\"process_name\"",
            "\"name\": \"cores\"",
            "\"name\": \"dram\"",
            "\"name\": \"controller\"",
            "\"ph\": \"B\", \"ts\": 10",
            "\"ph\": \"E\", \"ts\": 20",
            "\"ph\": \"i\", \"ts\": 12",
            "\"name\": \"dram-spike\"",
            "\"name\": \"safe-mode\"",
        ] {
            assert!(json.contains(needle), "missing '{needle}' in: {json}");
        }
        // Balanced-brace sanity: every line is one JSON object.
        for line in json.lines().skip(1) {
            let line = line.trim().trim_end_matches(',');
            if line.starts_with('{') {
                assert!(line.ends_with('}'), "unterminated object: {line}");
            }
        }
    }

    #[test]
    fn default_capacity_is_large() {
        assert_eq!(TraceBuffer::default().capacity(), DEFAULT_TRACE_CAPACITY);
    }
}
