//! Counters, power-of-two-bucket histograms, and the merge hub.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`, up to the full `u64` range.
const BUCKETS: usize = 65;

/// A power-of-two-bucket histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one. Commutative and associative.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// The scalar summary used in manifests.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
        }
    }

    /// Non-empty buckets as `(lower bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lower_bound(i), n))
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Scalar summary of a histogram (for manifests and quick assertions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
}

fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// A registry of named counters and histograms.
///
/// Names are `&'static str` because every metric site in the workspace
/// names its metric with a literal; sorted-map storage makes the JSON
/// rendering — and therefore the regression goldens — deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to the named counter.
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Records one sample into the named histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&name, &value)| (name, value))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&name, hist)| (name, hist))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one. Commutative and associative,
    /// so parallel aggregation is order-independent.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&name, &value) in &other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        for (&name, hist) in &other.histograms {
            self.histograms.entry(name).or_default().merge(hist);
        }
    }

    /// Renders the registry as deterministic, pretty-printed JSON
    /// (sorted names, stable number formats, trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&self.to_json_body("  "));
        out.push_str("}\n");
        out
    }

    /// The registry body (counters + histograms objects) without the
    /// outer braces, each line prefixed with `indent` — for embedding in
    /// larger hand-rolled JSON documents.
    pub fn to_json_body(&self, indent: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{indent}\"counters\": {{"));
        for (i, (name, value)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n{indent}  \"{name}\": {value}"));
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("\n{indent}"));
        }
        out.push_str("},\n");
        out.push_str(&format!("{indent}\"histograms\": {{"));
        for (i, (name, hist)) in self.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n{indent}  \"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \
                 \"max\": {}, \"mean\": {:.3}, \"buckets\": {{",
                hist.count(),
                hist.sum(),
                hist.min(),
                hist.max(),
                hist.mean()
            ));
            for (j, (lo, n)) in hist.nonzero_buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{lo}\": {n}"));
            }
            out.push_str("}}");
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!("\n{indent}"));
        }
        out.push_str("}\n");
        out
    }
}

/// A thread-safe accumulator many simulations merge their registries
/// into; cloning shares the underlying storage.
///
/// Because [`MetricsRegistry::merge`] is commutative and associative, the
/// final snapshot does not depend on merge order — parallel harness runs
/// aggregate deterministically.
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    inner: Arc<Mutex<MetricsRegistry>>,
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> Self {
        MetricsHub::default()
    }

    /// Folds a registry into the hub.
    pub fn merge(&self, registry: &MetricsRegistry) {
        self.inner
            .lock()
            .expect("metrics hub poisoned")
            .merge(registry);
    }

    /// A copy of everything merged so far.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.inner.lock().expect("metrics hub poisoned").clone()
    }
}

thread_local! {
    static AMBIENT_HUB: RefCell<Option<MetricsHub>> = const { RefCell::new(None) };
}

/// The innermost active [`with_ambient_hub`] hub on this thread, if any.
///
/// Harness code that builds simulation configs deep inside a call tree
/// (e.g. the experiment registry) uses this to pick up the hub the
/// `experiments --metrics` driver installed, without threading a parameter
/// through every experiment signature.
pub fn ambient_hub() -> Option<MetricsHub> {
    AMBIENT_HUB.with(|cell| cell.borrow().clone())
}

/// Runs `f` with [`ambient_hub`] resolving to `hub` on the current thread,
/// restoring the previous value afterwards (also on panic).
pub fn with_ambient_hub<R>(hub: MetricsHub, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<MetricsHub>);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_HUB.with(|cell| *cell.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(AMBIENT_HUB.with(|cell| cell.borrow_mut().replace(hub)));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(3), 4);
    }

    #[test]
    fn histogram_tracks_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
        for v in [0, 1, 7, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 8);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (4, 1), (8, 1)]);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = MetricsRegistry::new();
        a.count("x", 2);
        a.observe("h", 5);
        let mut b = MetricsRegistry::new();
        b.count("x", 3);
        b.count("y", 1);
        b.observe("h", 50);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("x"), 5);
        assert_eq!(ab.counter("y"), 1);
        assert_eq!(ab.counter("absent"), 0);
        assert_eq!(ab.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn json_is_stable_and_sorted() {
        let mut r = MetricsRegistry::new();
        r.count("zeta", 1);
        r.count("alpha", 2);
        r.observe("lat", 3);
        let json = r.to_json();
        assert_eq!(json, r.to_json());
        let alpha = json.find("\"alpha\"").unwrap();
        let zeta = json.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "counters must render sorted: {json}");
        assert!(
            json.contains("\"lat\": {\"count\": 1, \"sum\": 3"),
            "{json}"
        );
        assert!(json.ends_with("}\n"));
        assert!(MetricsRegistry::new()
            .to_json()
            .contains("\"counters\": {}"));
    }

    #[test]
    fn hub_accumulates_across_clones() {
        let hub = MetricsHub::new();
        let clone = hub.clone();
        let mut r = MetricsRegistry::new();
        r.count("sims", 1);
        hub.merge(&r);
        clone.merge(&r);
        assert_eq!(hub.snapshot().counter("sims"), 2);
    }

    #[test]
    fn ambient_hub_overrides_and_restores() {
        assert!(ambient_hub().is_none());
        let hub = MetricsHub::new();
        with_ambient_hub(hub.clone(), || {
            let seen = ambient_hub().expect("ambient hub visible inside scope");
            let mut r = MetricsRegistry::new();
            r.count("seen", 1);
            seen.merge(&r);
        });
        assert!(ambient_hub().is_none());
        assert_eq!(hub.snapshot().counter("seen"), 1);
    }

    #[test]
    fn ambient_hub_is_thread_local() {
        with_ambient_hub(MetricsHub::new(), || {
            let inner = std::thread::scope(|s| s.spawn(|| ambient_hub().is_none()).join().unwrap());
            assert!(inner, "fresh thread must not inherit the ambient hub");
        });
    }
}
