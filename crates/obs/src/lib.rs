//! Cycle-level observability for the MAPG simulator.
//!
//! Every MAPG result rests on internal controller dynamics — stall
//! detection, sleep entry/exit, break-even accounting — that the final
//! `RunReport` only shows in aggregate. A regression that shifts *when*
//! the controller gates but not the totals would be invisible. This crate
//! makes the dynamics observable without perturbing them:
//!
//! - **Event trace** ([`TraceBuffer`]): a bounded ring buffer of typed
//!   [`TraceRecord`]s (stall begin/end, sleep enter/exit, wake start/done,
//!   token grant/deny, safe-mode enter/exit, fault injections) with cycle
//!   timestamps and core/bank scopes, exportable as Chrome `trace_event`
//!   JSON (loadable in Perfetto / `chrome://tracing`).
//! - **Metrics registry** ([`MetricsRegistry`]): named counters and
//!   power-of-two-bucket histograms (stall length, gated duration, wake
//!   latency, break-even shortfall) with a commutative [`merge`], so
//!   aggregation over parallel runs is deterministic.
//! - **Handle** ([`ObsHandle`]): the single instrumentation entry point
//!   components hold. A disabled handle is a `None` — every `emit`/`count`/
//!   `observe` call is a single branch and no allocation, so instrumented
//!   hot paths cost nothing when observability is off.
//! - **Hub** ([`MetricsHub`]): a thread-safe accumulator that many
//!   simulations merge their registries into; merging is commutative and
//!   associative, so the aggregate is identical at any job count.
//!
//! # Determinism contract
//!
//! A simulation emits events in simulation order; the buffer preserves
//! insertion order and the JSON renderings iterate sorted maps. Sharded
//! cluster runs give each shard worker a private [`ObsHandle::fork`] and
//! merge the forks back in deterministic channel/step order, so two runs
//! with the same configuration produce byte-identical traces and metrics
//! regardless of how many worker threads the harness uses — whether the
//! parallelism is across simulations (the suite runner) or within one
//! (the sharded event wheel). That property is what the workspace's
//! regression suite pins.
//!
//! ```
//! use mapg_obs::{EventKind, ObsHandle, Scope};
//!
//! let obs = ObsHandle::enabled(Some(1024), true);
//! obs.emit(10, Scope::Core(0), EventKind::StallBegin);
//! obs.count("stalls", 1);
//! obs.observe("stall_length", 90);
//! obs.emit(100, Scope::Core(0), EventKind::StallEnd);
//! let (trace, metrics) = obs.collect();
//! assert_eq!(trace.unwrap().len(), 2);
//! assert_eq!(metrics.unwrap().counter("stalls"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod feed;
mod handle;
mod metrics;
mod trace;

pub use event::{EventKind, FaultKind, Scope, TraceRecord};
pub use feed::{
    ambient_event_hub, with_ambient_event_hub, EventHub, FeedBatch, DEFAULT_FEED_CAPACITY,
};
pub use handle::ObsHandle;
pub use metrics::{
    ambient_hub, with_ambient_hub, Histogram, HistogramSummary, MetricsHub, MetricsRegistry,
};
pub use trace::{TraceBuffer, DEFAULT_TRACE_CAPACITY};
