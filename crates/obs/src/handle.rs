//! The zero-cost-when-disabled instrumentation handle.

use std::cell::RefCell;
use std::rc::Rc;

use crate::event::{EventKind, Scope, TraceRecord};
use crate::metrics::MetricsRegistry;
use crate::trace::TraceBuffer;

/// The mutable observability state one simulation writes into.
#[derive(Debug)]
struct Observer {
    trace: Option<TraceBuffer>,
    metrics: Option<MetricsRegistry>,
}

/// The handle components hold to emit events and record metrics.
///
/// A handle is either **disabled** (the default: every call is one branch
/// on a `None`, no allocation, no locking) or **enabled**, in which case
/// clones share a single per-simulation [`Observer`] via `Rc<RefCell<_>>`.
/// Simulations are single-threaded, so the shared state never crosses a
/// thread boundary; cross-thread aggregation goes through
/// [`MetricsHub`](crate::MetricsHub) instead.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle {
    inner: Option<Rc<RefCell<Observer>>>,
}

impl ObsHandle {
    /// The no-op handle: all emit/count/observe calls do nothing.
    pub fn disabled() -> Self {
        ObsHandle::default()
    }

    /// An enabled handle tracing into a ring of `trace_capacity` records
    /// (if `Some`) and/or recording metrics (if `metrics`). With neither
    /// requested this degenerates to [`ObsHandle::disabled`].
    pub fn enabled(trace_capacity: Option<usize>, metrics: bool) -> Self {
        if trace_capacity.is_none() && !metrics {
            return ObsHandle::disabled();
        }
        ObsHandle {
            inner: Some(Rc::new(RefCell::new(Observer {
                trace: trace_capacity.map(TraceBuffer::new),
                metrics: metrics.then(MetricsRegistry::new),
            }))),
        }
    }

    /// True when any sink (trace or metrics) is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends an event to the trace, if tracing is enabled.
    ///
    /// When disabled this compiles to a single never-taken test on the
    /// `Option`'s pointer; the borrow/push machinery lives in an
    /// out-of-line `#[cold]` body so it never pollutes the simulator's
    /// hot-loop instruction stream.
    #[inline]
    pub fn emit(&self, at: u64, scope: Scope, kind: EventKind) {
        if let Some(inner) = &self.inner {
            Self::emit_slow(inner, at, scope, kind);
        }
    }

    #[cold]
    #[inline(never)]
    fn emit_slow(inner: &Rc<RefCell<Observer>>, at: u64, scope: Scope, kind: EventKind) {
        if let Some(trace) = &mut inner.borrow_mut().trace {
            trace.push(TraceRecord { at, scope, kind });
        }
    }

    /// Adds `n` to a named counter, if metrics are enabled.
    #[inline]
    pub fn count(&self, name: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            Self::count_slow(inner, name, n);
        }
    }

    #[cold]
    #[inline(never)]
    fn count_slow(inner: &Rc<RefCell<Observer>>, name: &'static str, n: u64) {
        if let Some(metrics) = &mut inner.borrow_mut().metrics {
            metrics.count(name, n);
        }
    }

    /// Records a histogram sample, if metrics are enabled.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            Self::observe_slow(inner, name, value);
        }
    }

    #[cold]
    #[inline(never)]
    fn observe_slow(inner: &Rc<RefCell<Observer>>, name: &'static str, value: u64) {
        if let Some(metrics) = &mut inner.borrow_mut().metrics {
            metrics.observe(name, value);
        }
    }

    /// Copies out the accumulated trace and metrics (either is `None`
    /// when that sink was not enabled). Callable while clones of the
    /// handle are still live in the simulated components.
    pub fn collect(&self) -> (Option<TraceBuffer>, Option<MetricsRegistry>) {
        match &self.inner {
            None => (None, None),
            Some(inner) => {
                let observer = inner.borrow();
                (observer.trace.clone(), observer.metrics.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = ObsHandle::disabled();
        assert!(!obs.is_enabled());
        obs.emit(1, Scope::Core(0), EventKind::StallBegin);
        obs.count("x", 1);
        obs.observe("h", 1);
        assert_eq!(obs.collect(), (None, None));
        // Requesting nothing is the same as disabling.
        assert!(!ObsHandle::enabled(None, false).is_enabled());
    }

    #[test]
    fn clones_share_one_observer() {
        let obs = ObsHandle::enabled(Some(16), true);
        let clone = obs.clone();
        obs.emit(1, Scope::Core(0), EventKind::StallBegin);
        clone.emit(2, Scope::Core(0), EventKind::StallEnd);
        clone.count("stalls", 1);
        obs.count("stalls", 2);
        obs.observe("len", 9);
        let (trace, metrics) = obs.collect();
        let trace = trace.unwrap();
        let metrics = metrics.unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(metrics.counter("stalls"), 3);
        assert_eq!(metrics.histogram("len").unwrap().count(), 1);
        // Collect is a copy, not a drain.
        assert_eq!(obs.collect().0.unwrap().len(), 2);
    }

    #[test]
    fn trace_only_and_metrics_only_modes() {
        let trace_only = ObsHandle::enabled(Some(4), false);
        trace_only.emit(1, Scope::Global, EventKind::SafeModeEnter);
        trace_only.count("ignored", 1);
        let (trace, metrics) = trace_only.collect();
        assert_eq!(trace.unwrap().len(), 1);
        assert!(metrics.is_none());

        let metrics_only = ObsHandle::enabled(None, true);
        metrics_only.emit(1, Scope::Global, EventKind::SafeModeEnter);
        metrics_only.count("seen", 1);
        let (trace, metrics) = metrics_only.collect();
        assert!(trace.is_none());
        assert_eq!(metrics.unwrap().counter("seen"), 1);
    }
}
