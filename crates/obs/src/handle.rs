//! The zero-cost-when-disabled instrumentation handle.

use std::sync::{Arc, Mutex};

use crate::event::{EventKind, Scope, TraceRecord};
use crate::metrics::MetricsRegistry;
use crate::trace::TraceBuffer;

/// The mutable observability state one simulation writes into.
#[derive(Debug)]
struct Observer {
    trace: Option<TraceBuffer>,
    trace_capacity: Option<usize>,
    metrics: bool,
    metrics_registry: Option<MetricsRegistry>,
}

/// The handle components hold to emit events and record metrics.
///
/// A handle is either **disabled** (the default: every call is one branch
/// on a `None`, no allocation, no locking) or **enabled**, in which case
/// clones share a single per-simulation [`Observer`] via `Arc<Mutex<_>>`.
/// A simulation emits single-threaded — in simulation order — so the lock
/// is uncontended there; the `Arc` exists so `Send` components (cores,
/// hierarchies) can carry *forked sibling* handles onto shard workers.
/// Each shard writes into its own fork and the shard driver merges the
/// forks back deterministically (see [`ObsHandle::fork`]); cross-thread
/// metric aggregation across whole runs still goes through
/// [`MetricsHub`](crate::MetricsHub).
#[derive(Debug, Clone, Default)]
pub struct ObsHandle {
    inner: Option<Arc<Mutex<Observer>>>,
}

impl ObsHandle {
    /// The no-op handle: all emit/count/observe calls do nothing.
    pub fn disabled() -> Self {
        ObsHandle::default()
    }

    /// An enabled handle tracing into a ring of `trace_capacity` records
    /// (if `Some`) and/or recording metrics (if `metrics`). With neither
    /// requested this degenerates to [`ObsHandle::disabled`].
    pub fn enabled(trace_capacity: Option<usize>, metrics: bool) -> Self {
        if trace_capacity.is_none() && !metrics {
            return ObsHandle::disabled();
        }
        ObsHandle {
            inner: Some(Arc::new(Mutex::new(Observer {
                trace: trace_capacity.map(TraceBuffer::new),
                trace_capacity,
                metrics,
                metrics_registry: metrics.then(MetricsRegistry::new),
            }))),
        }
    }

    /// A fresh, empty handle with the same sink configuration (same trace
    /// capacity, same metrics switch) but its own independent observer.
    ///
    /// This is the shard-worker handle: each shard of a sharded cluster
    /// run writes into a private fork, and the driver merges the forks
    /// back into the parent in deterministic (channel) order, so the
    /// merged result is bit-identical to a single-threaded run no matter
    /// how workers interleave.
    pub fn fork(&self) -> ObsHandle {
        match &self.inner {
            None => ObsHandle::disabled(),
            Some(inner) => {
                let observer = inner.lock().expect("observer lock poisoned");
                ObsHandle::enabled(observer.trace_capacity, observer.metrics)
            }
        }
    }

    /// True when any sink (trace or metrics) is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when a trace sink is attached.
    pub fn trace_enabled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner
                .lock()
                .expect("observer lock poisoned")
                .trace
                .is_some(),
        }
    }

    /// Appends an event to the trace, if tracing is enabled.
    ///
    /// When disabled this compiles to a single never-taken test on the
    /// `Option`'s pointer; the lock/push machinery lives in an
    /// out-of-line `#[cold]` body so it never pollutes the simulator's
    /// hot-loop instruction stream.
    #[inline]
    pub fn emit(&self, at: u64, scope: Scope, kind: EventKind) {
        if let Some(inner) = &self.inner {
            Self::emit_slow(inner, at, scope, kind);
        }
    }

    #[cold]
    #[inline(never)]
    fn emit_slow(inner: &Arc<Mutex<Observer>>, at: u64, scope: Scope, kind: EventKind) {
        if let Some(trace) = &mut inner.lock().expect("observer lock poisoned").trace {
            trace.push(TraceRecord { at, scope, kind });
        }
    }

    /// Adds `n` to a named counter, if metrics are enabled.
    #[inline]
    pub fn count(&self, name: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            Self::count_slow(inner, name, n);
        }
    }

    #[cold]
    #[inline(never)]
    fn count_slow(inner: &Arc<Mutex<Observer>>, name: &'static str, n: u64) {
        if let Some(metrics) = &mut inner
            .lock()
            .expect("observer lock poisoned")
            .metrics_registry
        {
            metrics.count(name, n);
        }
    }

    /// Records a histogram sample, if metrics are enabled.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            Self::observe_slow(inner, name, value);
        }
    }

    #[cold]
    #[inline(never)]
    fn observe_slow(inner: &Arc<Mutex<Observer>>, name: &'static str, value: u64) {
        if let Some(metrics) = &mut inner
            .lock()
            .expect("observer lock poisoned")
            .metrics_registry
        {
            metrics.observe(name, value);
        }
    }

    /// Moves every retained trace record out of this handle's buffer into
    /// `out` (appending, oldest first) and returns the number of records
    /// the ring dropped since the last drain; both are reset. A no-op
    /// returning 0 when tracing is not enabled.
    ///
    /// Shard drivers call this after every scheduler step on a forked
    /// handle, pairing each batch with the step's scheduling key so the
    /// cross-shard merge can reconstruct global emission order exactly.
    pub fn drain_trace(&self, out: &mut Vec<TraceRecord>) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => match &mut inner.lock().expect("observer lock poisoned").trace {
                None => 0,
                Some(trace) => trace.drain_into(out),
            },
        }
    }

    /// Adds `n` to the trace ring's dropped-record count without touching
    /// the retained records. Used by the deterministic shard merge to
    /// account for records a forked ring evicted before the merge.
    pub fn note_trace_dropped(&self, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(inner) = &self.inner {
            if let Some(trace) = &mut inner.lock().expect("observer lock poisoned").trace {
                trace.note_dropped(n);
            }
        }
    }

    /// Folds `registry` into this handle's metrics sink (a no-op when
    /// metrics are not enabled). Merging is commutative and associative;
    /// the shard driver still applies forks in channel order so even
    /// non-commutative future sinks would stay deterministic.
    pub fn absorb_metrics(&self, registry: &MetricsRegistry) {
        if let Some(inner) = &self.inner {
            if let Some(metrics) = &mut inner
                .lock()
                .expect("observer lock poisoned")
                .metrics_registry
            {
                metrics.merge(registry);
            }
        }
    }

    /// Moves the accumulated metrics out of this handle, leaving a fresh
    /// empty registry behind (`None` when metrics are not enabled).
    ///
    /// This is the per-segment drain the sharded engine's *persistent*
    /// forks rely on: a fork that lives across many segments hands each
    /// segment's metric delta to the merge, instead of re-reporting (and
    /// double-counting) everything accumulated since the session began.
    pub fn take_metrics(&self) -> Option<MetricsRegistry> {
        let inner = self.inner.as_ref()?;
        let mut observer = inner.lock().expect("observer lock poisoned");
        if observer.metrics_registry.is_some() {
            observer.metrics_registry.replace(MetricsRegistry::new())
        } else {
            None
        }
    }

    /// Copies out the accumulated trace and metrics (either is `None`
    /// when that sink was not enabled). Callable while clones of the
    /// handle are still live in the simulated components.
    pub fn collect(&self) -> (Option<TraceBuffer>, Option<MetricsRegistry>) {
        match &self.inner {
            None => (None, None),
            Some(inner) => {
                let observer = inner.lock().expect("observer lock poisoned");
                (observer.trace.clone(), observer.metrics_registry.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = ObsHandle::disabled();
        assert!(!obs.is_enabled());
        assert!(!obs.trace_enabled());
        obs.emit(1, Scope::Core(0), EventKind::StallBegin);
        obs.count("x", 1);
        obs.observe("h", 1);
        obs.note_trace_dropped(3);
        obs.absorb_metrics(&MetricsRegistry::new());
        assert!(obs.drain_trace(&mut Vec::new()) == 0);
        assert_eq!(obs.collect(), (None, None));
        // Requesting nothing is the same as disabling.
        assert!(!ObsHandle::enabled(None, false).is_enabled());
        // A fork of a disabled handle is disabled.
        assert!(!obs.fork().is_enabled());
    }

    #[test]
    fn clones_share_one_observer() {
        let obs = ObsHandle::enabled(Some(16), true);
        let clone = obs.clone();
        obs.emit(1, Scope::Core(0), EventKind::StallBegin);
        clone.emit(2, Scope::Core(0), EventKind::StallEnd);
        clone.count("stalls", 1);
        obs.count("stalls", 2);
        obs.observe("len", 9);
        let (trace, metrics) = obs.collect();
        let trace = trace.unwrap();
        let metrics = metrics.unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(metrics.counter("stalls"), 3);
        assert_eq!(metrics.histogram("len").unwrap().count(), 1);
        // Collect is a copy, not a drain.
        assert_eq!(obs.collect().0.unwrap().len(), 2);
    }

    #[test]
    fn trace_only_and_metrics_only_modes() {
        let trace_only = ObsHandle::enabled(Some(4), false);
        trace_only.emit(1, Scope::Global, EventKind::SafeModeEnter);
        trace_only.count("ignored", 1);
        assert!(trace_only.trace_enabled());
        let (trace, metrics) = trace_only.collect();
        assert_eq!(trace.unwrap().len(), 1);
        assert!(metrics.is_none());

        let metrics_only = ObsHandle::enabled(None, true);
        metrics_only.emit(1, Scope::Global, EventKind::SafeModeEnter);
        metrics_only.count("seen", 1);
        assert!(!metrics_only.trace_enabled());
        let (trace, metrics) = metrics_only.collect();
        assert!(trace.is_none());
        assert_eq!(metrics.unwrap().counter("seen"), 1);
    }

    #[test]
    fn fork_is_independent_but_configured_alike() {
        let parent = ObsHandle::enabled(Some(8), true);
        parent.emit(1, Scope::Core(0), EventKind::StallBegin);
        let fork = parent.fork();
        assert!(fork.is_enabled());
        assert!(fork.trace_enabled());
        // The fork starts empty and writes do not leak to the parent.
        assert_eq!(fork.collect().0.unwrap().len(), 0);
        fork.emit(2, Scope::Core(1), EventKind::StallEnd);
        fork.count("c", 5);
        assert_eq!(parent.collect().0.unwrap().len(), 1);
        assert_eq!(parent.collect().1.unwrap().counter("c"), 0);
        // Same ring capacity as the parent.
        assert_eq!(fork.collect().0.unwrap().capacity(), 8);
    }

    #[test]
    fn drain_and_merge_round_trip() {
        let fork = ObsHandle::enabled(Some(4), true);
        for at in 0..3 {
            fork.emit(at, Scope::Core(0), EventKind::StallBegin);
        }
        fork.count("stalls", 3);
        let mut drained = Vec::new();
        assert_eq!(fork.drain_trace(&mut drained), 0);
        assert_eq!(drained.len(), 3);
        // The fork's ring is now empty; a second drain yields nothing.
        assert_eq!(fork.drain_trace(&mut drained), 0);
        assert_eq!(drained.len(), 3);

        // Overflowing the ring surfaces the drop count exactly once.
        for at in 0..6 {
            fork.emit(at, Scope::Core(0), EventKind::StallBegin);
        }
        let mut tail = Vec::new();
        assert_eq!(fork.drain_trace(&mut tail), 2);
        assert_eq!(tail.len(), 4);

        // Merge into a parent: replayed records plus external drops.
        let parent = ObsHandle::enabled(Some(4), true);
        for record in &tail {
            parent.emit(record.at, record.scope, record.kind);
        }
        parent.note_trace_dropped(2);
        let (_, fork_metrics) = fork.collect();
        parent.absorb_metrics(&fork_metrics.unwrap());
        let (trace, metrics) = parent.collect();
        let trace = trace.unwrap();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.dropped(), 2);
        assert_eq!(metrics.unwrap().counter("stalls"), 3);
    }

    #[test]
    fn take_metrics_drains_and_resets() {
        let obs = ObsHandle::enabled(None, true);
        obs.count("stalls", 3);
        let first = obs.take_metrics().expect("metrics enabled");
        assert_eq!(first.counter("stalls"), 3);
        // The registry was reset, not copied: a second take is empty.
        let second = obs.take_metrics().expect("metrics enabled");
        assert_eq!(second.counter("stalls"), 0);
        // Counting resumes into the fresh registry.
        obs.count("stalls", 1);
        assert_eq!(obs.collect().1.unwrap().counter("stalls"), 1);
        // Disabled / trace-only handles yield nothing.
        assert!(ObsHandle::disabled().take_metrics().is_none());
        assert!(ObsHandle::enabled(Some(4), false).take_metrics().is_none());
    }

    #[test]
    fn enabled_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let obs = ObsHandle::enabled(Some(4), true);
        assert_send_sync(&obs);
    }
}
