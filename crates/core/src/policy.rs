//! Gating policies: what to do with a memory stall.
//!
//! A policy sees each stall at its onset and picks a [`StallAction`]. The
//! [`Controller`](crate::Controller) executes the action, charges the
//! energy, and reports the resume time back to the core. The policy zoo:
//!
//! | policy | action on stall | wake scheduling | what it represents |
//! |---|---|---|---|
//! | [`NoGating`] | stay active | — | no power management |
//! | [`ClockGating`] | stop clocks | — | conventional fine-grain clock gating |
//! | [`DvfsStall`] | scale V/f down | — | DVFS-during-stall baseline |
//! | [`NaiveOnMiss`] | gate every stall | reactive (starts at data arrival) | gating without MAPG's machinery |
//! | [`TimeoutGating`] | gate after idle timeout | reactive | classic idle-driven power gating |
//! | [`MapgPolicy`] (oracle) | gate iff `actual ≥ BET` | early (hidden under miss) | upper bound |
//! | [`MapgPolicy`] (predictive) | gate iff `predicted ≥ BET` | early, from prediction | **the paper's policy** |

use mapg_cpu::StallInfo;
use mapg_power::OperatingPoint;
use mapg_units::{Cycle, Cycles};

use crate::predictor::{
    EwmaPredictor, HistoryTablePredictor, LastValuePredictor, MissLatencyPredictor,
    OraclePredictor, PredictorScore, StaticPredictor,
};

/// Circuit-derived constants the controller hands every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyContext {
    /// Sleep-entry latency.
    pub entry: Cycles,
    /// Wake-up latency.
    pub wakeup: Cycles,
    /// Break-even time of the configured circuit.
    pub break_even: Cycles,
}

/// What to do with one stall.
#[derive(Debug, Clone, PartialEq)]
pub enum StallAction {
    /// Burn idle power (clock tree + leakage) until the data arrives.
    StayActive,
    /// Stop the clocks: leakage only until the data arrives.
    ClockGate,
    /// Drop to a DVFS operating point for the duration of the stall.
    DvfsScale {
        /// The point to park at.
        point: OperatingPoint,
    },
    /// Power-gate the core.
    PowerGate {
        /// When to begin sleep entry (`>= stall start`; a timeout policy
        /// gates late).
        gate_at: Cycle,
        /// When to begin the wake ramp. The controller clamps this to the
        /// end of sleep entry and may delay it further for a wake token.
        wake_at: Cycle,
    },
}

/// A gating policy. See the table in the module-level documentation for
/// the policy zoo.
///
/// The controller guarantees `decide` and `observe` are called in strict
/// alternation for each stall (stalls resolve synchronously), so policies
/// may carry per-stall scratch state between the two calls.
pub trait GatingPolicy {
    /// Chooses an action for the stall described by `info`.
    fn decide(&mut self, info: &StallInfo, ctx: &PolicyContext) -> StallAction;

    /// Learns from the completed stall's actual duration.
    fn observe(&mut self, _info: &StallInfo, _actual: Cycles) {}

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Prediction-accuracy bookkeeping, for predictive policies.
    fn predictor_score(&self) -> Option<&PredictorScore> {
        None
    }
}

/// No power management at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoGating;

impl GatingPolicy for NoGating {
    fn decide(&mut self, _info: &StallInfo, _ctx: &PolicyContext) -> StallAction {
        StallAction::StayActive
    }

    fn name(&self) -> &'static str {
        "no-gating"
    }
}

/// Clock gating during every stall: removes idle dynamic power, keeps
/// leakage. Zero latency, zero risk — the reference conventional technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClockGating;

impl GatingPolicy for ClockGating {
    fn decide(&mut self, _info: &StallInfo, _ctx: &PolicyContext) -> StallAction {
        StallAction::ClockGate
    }

    fn name(&self) -> &'static str {
        "clock-gating"
    }
}

/// DVFS to the floor point during every stall. Idealized in the policy's
/// favour: the V/f transition itself is modelled as free, which real PLL
/// relock times (microseconds) would never allow at stall granularity.
/// Even so it keeps paying `V³`-scaled leakage.
#[derive(Debug, Clone)]
pub struct DvfsStall {
    point: OperatingPoint,
}

impl DvfsStall {
    /// Parks at the given operating point during stalls.
    pub fn new(point: OperatingPoint) -> Self {
        DvfsStall { point }
    }
}

impl Default for DvfsStall {
    fn default() -> Self {
        DvfsStall::new(OperatingPoint::min())
    }
}

impl GatingPolicy for DvfsStall {
    fn decide(&mut self, _info: &StallInfo, _ctx: &PolicyContext) -> StallAction {
        StallAction::DvfsScale {
            point: self.point.clone(),
        }
    }

    fn name(&self) -> &'static str {
        "dvfs-stall"
    }
}

/// Gate on every stall, wake reactively when the data arrives. Pays the
/// full wake latency as a performance penalty on every gated stall and
/// loses energy on short stalls — the strawman MAPG improves on.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveOnMiss;

impl GatingPolicy for NaiveOnMiss {
    fn decide(&mut self, info: &StallInfo, _ctx: &PolicyContext) -> StallAction {
        StallAction::PowerGate {
            gate_at: info.start,
            wake_at: info.data_ready,
        }
    }

    fn name(&self) -> &'static str {
        "naive-on-miss"
    }
}

/// Classic idle-timeout gating: gate only once the core has been idle for
/// `timeout` cycles, wake reactively.
///
/// Implementation note: with the synchronous stall model the policy *knows*
/// `data_ready`; it uses it solely to evaluate whether the timeout would
/// have expired before the data returned — i.e. to faithfully emulate the
/// timeout hardware, not to predict.
#[derive(Debug, Clone, Copy)]
pub struct TimeoutGating {
    timeout: Cycles,
}

impl TimeoutGating {
    /// Creates the policy with the given idle threshold.
    pub fn new(timeout: Cycles) -> Self {
        TimeoutGating { timeout }
    }
}

impl GatingPolicy for TimeoutGating {
    fn decide(&mut self, info: &StallInfo, _ctx: &PolicyContext) -> StallAction {
        let gate_at = info.start + self.timeout;
        if gate_at >= info.data_ready {
            // The data would arrive before the timeout fires: never gates.
            // The idle wait itself is clock-gated, as in any contemporary
            // core.
            StallAction::ClockGate
        } else {
            StallAction::PowerGate {
                gate_at,
                wake_at: info.data_ready,
            }
        }
    }

    fn name(&self) -> &'static str {
        "timeout"
    }
}

/// The MAPG policy, generic over its predictor.
///
/// On each stall:
/// 1. predict the stall duration `d̂`;
/// 2. gate iff `d̂ ≥ guard · BET` (the guard margin biases against gating
///    marginal stalls, where a mis-prediction costs energy *and* time);
/// 3. if gating and early wake is enabled, schedule the wake ramp to end
///    exactly at the predicted data arrival (`wake_at = start + d̂ −
///    T_wake`), hiding the wake latency under the memory latency.
///
/// With [`OraclePredictor`] this is the paper's oracle variant; with
/// [`HistoryTablePredictor`] it is the deployable policy.
#[derive(Debug)]
pub struct MapgPolicy<P> {
    predictor: P,
    score: PredictorScore,
    guard: f64,
    early_wake: bool,
    name: &'static str,
    /// Prediction made in `decide`, consumed by the matching `observe`.
    pending_prediction: Option<Cycles>,
}

impl MapgPolicy<HistoryTablePredictor> {
    /// The deployable MAPG configuration: PC-indexed history predictor,
    /// unity guard, early wake on.
    pub fn predictive() -> Self {
        MapgPolicy::with_predictor(HistoryTablePredictor::hardware_default(), "mapg")
    }

    /// Ablation: prediction and break-even guard disabled — gate every
    /// stall but keep early-wake scheduling (from the predictor's
    /// estimate).
    pub fn always_gate() -> Self {
        let mut policy = MapgPolicy::with_predictor(
            HistoryTablePredictor::hardware_default(),
            "mapg-always-gate",
        );
        policy.guard = 0.0;
        policy
    }

    /// Ablation: break-even guard kept, early wake disabled (reactive
    /// wake at data arrival).
    pub fn no_early_wake() -> Self {
        let mut policy = MapgPolicy::with_predictor(
            HistoryTablePredictor::hardware_default(),
            "mapg-no-early-wake",
        );
        policy.early_wake = false;
        policy
    }
}

impl MapgPolicy<OraclePredictor> {
    /// The oracle variant: perfect duration knowledge, perfect wake timing.
    pub fn oracle() -> Self {
        MapgPolicy::with_predictor(OraclePredictor, "mapg-oracle")
    }
}

impl<P: MissLatencyPredictor> MapgPolicy<P> {
    /// Builds the policy around an arbitrary predictor.
    pub fn with_predictor(predictor: P, name: &'static str) -> Self {
        MapgPolicy {
            predictor,
            score: PredictorScore::new(),
            guard: 1.0,
            early_wake: true,
            name,
            pending_prediction: None,
        }
    }

    /// Sets the break-even guard multiplier (default 1.0). Values above 1
    /// gate more conservatively.
    ///
    /// # Panics
    ///
    /// Panics if `guard` is negative or not finite.
    pub fn with_guard(self, guard: f64) -> Self {
        match self.try_with_guard(guard) {
            Ok(policy) => policy,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`MapgPolicy::with_guard`] for user input.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError`](crate::MapgError) if `guard` is negative or
    /// not finite.
    pub fn try_with_guard(mut self, guard: f64) -> Result<Self, crate::MapgError> {
        if !(guard.is_finite() && guard >= 0.0) {
            return Err(crate::MapgError::invalid(format!(
                "guard must be finite and non-negative, got {guard}"
            )));
        }
        self.guard = guard;
        Ok(self)
    }

    /// The wrapped predictor.
    pub fn predictor(&self) -> &P {
        &self.predictor
    }
}

impl<P: MissLatencyPredictor> GatingPolicy for MapgPolicy<P> {
    fn decide(&mut self, info: &StallInfo, ctx: &PolicyContext) -> StallAction {
        let predicted = self.predictor.predict(info);
        self.pending_prediction = Some(predicted);

        let threshold = ctx.break_even.scale(self.guard);
        if predicted < threshold {
            // Stalls judged too short to gate are still clock-gated —
            // MAPG deploys on top of conventional clock gating.
            return StallAction::ClockGate;
        }

        // End the wake ramp at the predicted data arrival (saturating at
        // the stall start). The controller clamps to entry completion, so
        // heavy underprediction degrades gracefully into a minimal nap.
        let wake_at = if self.early_wake {
            info.start + predicted.saturating_sub(ctx.wakeup)
        } else {
            info.data_ready
        };

        StallAction::PowerGate {
            gate_at: info.start,
            wake_at,
        }
    }

    fn observe(&mut self, info: &StallInfo, actual: Cycles) {
        if let Some(predicted) = self.pending_prediction.take() {
            self.score.record(predicted, actual);
        }
        self.predictor.observe(info, actual);
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn predictor_score(&self) -> Option<&PredictorScore> {
        Some(&self.score)
    }
}

/// Selects a policy by name — the configuration surface the simulation,
/// benches and examples share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// [`NoGating`].
    NoGating,
    /// [`ClockGating`].
    ClockGating,
    /// [`DvfsStall`] at the floor operating point.
    DvfsStall,
    /// [`NaiveOnMiss`].
    NaiveOnMiss,
    /// [`TimeoutGating`] with the given idle threshold in cycles.
    Timeout {
        /// Idle cycles before gating.
        idle_cycles: u64,
    },
    /// [`MapgPolicy::oracle`].
    MapgOracle,
    /// [`MapgPolicy::predictive`] — the paper's policy.
    Mapg,
    /// [`MapgPolicy::always_gate`] ablation.
    MapgAlwaysGate,
    /// [`MapgPolicy::no_early_wake`] ablation.
    MapgNoEarlyWake,
    /// MAPG with an explicitly chosen predictor (experiment R-F7).
    MapgWith {
        /// The predictor to drive the policy with.
        predictor: PredictorKind,
    },
}

/// Selects a miss-latency predictor for [`PolicyKind::MapgWith`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// [`StaticPredictor`] pinned at 200 cycles.
    Static,
    /// [`LastValuePredictor`].
    LastValue,
    /// Global [`EwmaPredictor`] (alpha = 4/16).
    Ewma,
    /// PC-indexed [`HistoryTablePredictor`] (the MAPG default).
    HistoryTable,
    /// [`OraclePredictor`].
    Oracle,
}

impl PredictorKind {
    /// All predictor kinds, weakest first.
    pub const ALL: [PredictorKind; 5] = [
        PredictorKind::Static,
        PredictorKind::LastValue,
        PredictorKind::Ewma,
        PredictorKind::HistoryTable,
        PredictorKind::Oracle,
    ];

    /// Instantiates the predictor.
    pub fn instantiate(&self) -> Box<dyn MissLatencyPredictor> {
        match self {
            PredictorKind::Static => Box::new(StaticPredictor::new(Cycles::new(200))),
            PredictorKind::LastValue => Box::new(LastValuePredictor::new(Cycles::new(200))),
            PredictorKind::Ewma => Box::new(EwmaPredictor::new(Cycles::new(200), 4)),
            PredictorKind::HistoryTable => Box::new(HistoryTablePredictor::hardware_default()),
            PredictorKind::Oracle => Box::new(OraclePredictor),
        }
    }

    /// Display name of the MAPG variant driven by this predictor.
    pub fn policy_name(&self) -> &'static str {
        match self {
            PredictorKind::Static => "mapg+static",
            PredictorKind::LastValue => "mapg+last-value",
            PredictorKind::Ewma => "mapg+ewma",
            PredictorKind::HistoryTable => "mapg+history-table",
            PredictorKind::Oracle => "mapg+oracle",
        }
    }
}

impl MissLatencyPredictor for Box<dyn MissLatencyPredictor> {
    fn predict(&mut self, info: &StallInfo) -> Cycles {
        (**self).predict(info)
    }

    fn observe(&mut self, info: &StallInfo, actual: Cycles) {
        (**self).observe(info, actual);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl PolicyKind {
    /// The comparison set used by the headline experiments (R-T3, R-F2,
    /// R-F3): every baseline plus MAPG and its oracle.
    pub const COMPARISON_SET: [PolicyKind; 7] = [
        PolicyKind::NoGating,
        PolicyKind::ClockGating,
        PolicyKind::DvfsStall,
        PolicyKind::NaiveOnMiss,
        PolicyKind::Timeout { idle_cycles: 100 },
        PolicyKind::Mapg,
        PolicyKind::MapgOracle,
    ];

    /// Instantiates the policy.
    pub fn instantiate(&self) -> Box<dyn GatingPolicy> {
        match *self {
            PolicyKind::NoGating => Box::new(NoGating),
            PolicyKind::ClockGating => Box::new(ClockGating),
            PolicyKind::DvfsStall => Box::new(DvfsStall::default()),
            PolicyKind::NaiveOnMiss => Box::new(NaiveOnMiss),
            PolicyKind::Timeout { idle_cycles } => {
                Box::new(TimeoutGating::new(Cycles::new(idle_cycles)))
            }
            PolicyKind::MapgOracle => Box::new(MapgPolicy::oracle()),
            PolicyKind::Mapg => Box::new(MapgPolicy::predictive()),
            PolicyKind::MapgAlwaysGate => Box::new(MapgPolicy::always_gate()),
            PolicyKind::MapgNoEarlyWake => Box::new(MapgPolicy::no_early_wake()),
            PolicyKind::MapgWith { predictor } => Box::new(MapgPolicy::with_predictor(
                predictor.instantiate(),
                predictor.policy_name(),
            )),
        }
    }

    /// The policy's display name (matches the instantiated policy's
    /// [`GatingPolicy::name`]).
    pub fn name(&self) -> &'static str {
        match *self {
            PolicyKind::NoGating => "no-gating",
            PolicyKind::ClockGating => "clock-gating",
            PolicyKind::DvfsStall => "dvfs-stall",
            PolicyKind::NaiveOnMiss => "naive-on-miss",
            PolicyKind::Timeout { .. } => "timeout",
            PolicyKind::MapgOracle => "mapg-oracle",
            PolicyKind::Mapg => "mapg",
            PolicyKind::MapgAlwaysGate => "mapg-always-gate",
            PolicyKind::MapgNoEarlyWake => "mapg-no-early-wake",
            PolicyKind::MapgWith { predictor } => predictor.policy_name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapg_cpu::{CoreId, StallCause};

    fn ctx() -> PolicyContext {
        PolicyContext {
            entry: Cycles::new(3),
            wakeup: Cycles::new(10),
            break_even: Cycles::new(50),
        }
    }

    fn stall(duration: u64) -> StallInfo {
        StallInfo {
            core: CoreId(0),
            start: Cycle::new(1000),
            data_ready: Cycle::new(1000 + duration),
            pc: 0x400,
            outstanding: 1,
            cause: StallCause::Dependency,
        }
    }

    #[test]
    fn trivial_policies() {
        assert_eq!(
            NoGating.decide(&stall(100), &ctx()),
            StallAction::StayActive
        );
        assert_eq!(
            ClockGating.decide(&stall(100), &ctx()),
            StallAction::ClockGate
        );
        assert!(matches!(
            DvfsStall::default().decide(&stall(100), &ctx()),
            StallAction::DvfsScale { .. }
        ));
    }

    #[test]
    fn naive_gates_everything_reactively() {
        let action = NaiveOnMiss.decide(&stall(20), &ctx());
        assert_eq!(
            action,
            StallAction::PowerGate {
                gate_at: Cycle::new(1000),
                wake_at: Cycle::new(1020),
            }
        );
    }

    #[test]
    fn timeout_skips_short_stalls() {
        let mut policy = TimeoutGating::new(Cycles::new(100));
        assert_eq!(policy.decide(&stall(80), &ctx()), StallAction::ClockGate);
        match policy.decide(&stall(300), &ctx()) {
            StallAction::PowerGate { gate_at, wake_at } => {
                assert_eq!(gate_at, Cycle::new(1100));
                assert_eq!(wake_at, Cycle::new(1300));
            }
            other => panic!("expected gate, got {other:?}"),
        }
    }

    #[test]
    fn oracle_gates_only_above_break_even() {
        let mut policy = MapgPolicy::oracle();
        assert_eq!(
            policy.decide(&stall(30), &ctx()),
            StallAction::ClockGate,
            "below BET: clock-gated, not power-gated"
        );
        match policy.decide(&stall(200), &ctx()) {
            StallAction::PowerGate { gate_at, wake_at } => {
                assert_eq!(gate_at, Cycle::new(1000));
                // Wake ramp ends exactly at data arrival: 1200 - 10.
                assert_eq!(wake_at, Cycle::new(1190));
            }
            other => panic!("expected gate, got {other:?}"),
        }
    }

    #[test]
    fn predictive_learns_then_gates() {
        let mut policy = MapgPolicy::predictive();
        let info = stall(400);
        // Default estimate (200) ≥ BET (50): gates immediately.
        let action = policy.decide(&info, &ctx());
        assert!(matches!(action, StallAction::PowerGate { .. }));
        policy.observe(&info, info.natural_duration());
        assert_eq!(policy.predictor_score().map(|s| s.predictions()), Some(1));
    }

    #[test]
    fn predictive_skips_after_learning_short_stalls() {
        let mut policy = MapgPolicy::predictive();
        let short = stall(10);
        let context = ctx();
        // Train the PC with many short stalls.
        for _ in 0..100 {
            let _ = policy.decide(&short, &context);
            policy.observe(&short, short.natural_duration());
        }
        assert_eq!(
            policy.decide(&short, &context),
            StallAction::ClockGate,
            "learned short stalls must not be power-gated"
        );
    }

    #[test]
    fn always_gate_ablation_ignores_break_even() {
        let mut policy = MapgPolicy::always_gate();
        let short = stall(10);
        let context = ctx();
        for _ in 0..50 {
            let action = policy.decide(&short, &context);
            assert!(
                matches!(action, StallAction::PowerGate { .. }),
                "always-gate must gate"
            );
            policy.observe(&short, short.natural_duration());
        }
    }

    #[test]
    fn no_early_wake_ablation_wakes_reactively() {
        let mut policy = MapgPolicy::no_early_wake();
        match policy.decide(&stall(400), &ctx()) {
            StallAction::PowerGate { wake_at, .. } => {
                assert_eq!(wake_at, Cycle::new(1400), "reactive wake");
            }
            other => panic!("expected gate, got {other:?}"),
        }
    }

    #[test]
    fn kind_names_match_instances() {
        for kind in PolicyKind::COMPARISON_SET {
            assert_eq!(kind.name(), kind.instantiate().name());
        }
        assert_eq!(
            PolicyKind::MapgAlwaysGate.name(),
            PolicyKind::MapgAlwaysGate.instantiate().name()
        );
        assert_eq!(
            PolicyKind::MapgNoEarlyWake.name(),
            PolicyKind::MapgNoEarlyWake.instantiate().name()
        );
    }

    #[test]
    #[should_panic(expected = "guard")]
    fn guard_must_be_finite() {
        let _ = MapgPolicy::predictive().with_guard(f64::NAN);
    }
}
