//! Safe-mode degradation: a watchdog over gating outcomes.
//!
//! Power gating is only worth its transition energy when wake-ups land on
//! time. Under environmental misbehaviour — slow sleep switches, dropped
//! wake tokens, brownout vetoes, noisy predictors — gated stalls start
//! paying large wake penalties, and aggressive gating becomes strictly
//! worse than plain clock gating. The [`Watchdog`] detects that regime at
//! runtime from a sliding window of per-gated-stall outcomes and degrades
//! the controller to a **safe mode** in which power-gate decisions are
//! demoted to clock gating (always safe: no wake ramp, no transition
//! energy, no rush current).
//!
//! Re-arming uses exponential backoff with hysteresis: each trip doubles
//! the safe-mode hold (capped), the evidence window is cleared on every
//! transition, and a freshly re-armed watchdog must observe a minimum
//! number of new samples before it may trip again — so a marginal system
//! settles into long safe periods instead of flapping.

use mapg_units::{Cycle, Cycles};

use core::fmt;

/// Watchdog thresholds and window sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Sliding-window length, in gated stalls.
    pub window: usize,
    /// Minimum samples in the window before the watchdog may trip
    /// (hysteresis: also required after every re-arm).
    pub min_samples: usize,
    /// Trip when mean wake penalty per gated stall exceeds this multiple
    /// of the nominal wake latency.
    pub penalty_ratio: f64,
    /// Trip when the fraction of failed wake-ups in the window exceeds
    /// this.
    pub failure_threshold: f64,
    /// First safe-mode hold duration.
    pub backoff_base: Cycles,
    /// Safe-mode hold cap for the exponential backoff.
    pub backoff_max: Cycles,
}

impl WatchdogConfig {
    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 || self.min_samples == 0 {
            return Err("watchdog window and min_samples must be non-zero".into());
        }
        if self.min_samples > self.window {
            return Err(format!(
                "watchdog min_samples ({}) cannot exceed window ({})",
                self.min_samples, self.window
            ));
        }
        if !self.penalty_ratio.is_finite() || self.penalty_ratio < 0.0 {
            return Err("watchdog penalty ratio must be finite and ≥ 0".into());
        }
        if !self.failure_threshold.is_finite() || !(0.0..=1.0).contains(&self.failure_threshold) {
            return Err("watchdog failure threshold must be in [0, 1]".into());
        }
        if self.backoff_base == Cycles::ZERO || self.backoff_max < self.backoff_base {
            return Err("watchdog backoff must satisfy 0 < base ≤ max".into());
        }
        Ok(())
    }
}

impl Default for WatchdogConfig {
    /// Window of 64 gated stalls, trip after ≥ 24 samples when mean
    /// penalty exceeds 2× the wake latency or > 20 % of wakes fail;
    /// backoff 20 k → 640 k cycles.
    fn default() -> Self {
        WatchdogConfig {
            window: 64,
            min_samples: 24,
            penalty_ratio: 2.0,
            failure_threshold: 0.20,
            backoff_base: Cycles::new(20_000),
            backoff_max: Cycles::new(640_000),
        }
    }
}

/// Degradation statistics reported at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationStats {
    /// Times the watchdog tripped into safe mode.
    pub safe_mode_entries: u64,
    /// Times the watchdog re-armed (recovered) out of safe mode.
    pub recoveries: u64,
    /// Stall cycles served in safe mode (power-gate demoted to clock gate).
    pub safe_stall_cycles: u64,
    /// Power-gate decisions demoted while in safe mode.
    pub demoted_gates: u64,
}

impl DegradationStats {
    /// True when safe mode was never entered.
    pub fn is_empty(&self) -> bool {
        self.safe_mode_entries == 0
    }
}

impl fmt::Display for DegradationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} safe-mode entries, {} recoveries, {} demoted gates, {} safe stall cyc",
            self.safe_mode_entries, self.recoveries, self.demoted_gates, self.safe_stall_cycles
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Armed,
    Safe { until: Cycle },
}

/// The runtime watchdog. See the [module docs](self) for the mechanism.
#[derive(Debug, Clone)]
pub struct Watchdog {
    config: WatchdogConfig,
    /// Nominal wake latency, the yardstick for `penalty_ratio`.
    wakeup: Cycles,
    /// Ring buffer of (penalty cycles, wake failed) per gated stall.
    samples: Vec<(u64, bool)>,
    next_slot: usize,
    filled: usize,
    mode: Mode,
    backoff: Cycles,
    stats: DegradationStats,
    obs: mapg_obs::ObsHandle,
}

impl Watchdog {
    /// Builds a watchdog judging against the given nominal wake latency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`WatchdogConfig::validate`]).
    pub fn new(config: WatchdogConfig, wakeup: Cycles) -> Self {
        if let Err(message) = config.validate() {
            panic!("{message}");
        }
        Watchdog {
            samples: vec![(0, false); config.window],
            next_slot: 0,
            filled: 0,
            mode: Mode::Armed,
            backoff: config.backoff_base,
            wakeup,
            stats: DegradationStats::default(),
            config,
            obs: mapg_obs::ObsHandle::disabled(),
        }
    }

    /// Attaches an observability handle; trip/recovery/demotion counters
    /// flow through it.
    pub fn set_obs(&mut self, obs: mapg_obs::ObsHandle) {
        self.obs = obs;
    }

    /// Advances the watchdog to `now`: leaves safe mode if the hold has
    /// expired. Returns `true` when the controller must operate in safe
    /// mode (demote power gating to clock gating).
    pub fn poll(&mut self, now: Cycle) -> bool {
        if let Mode::Safe { until } = self.mode {
            if now >= until {
                self.mode = Mode::Armed;
                self.stats.recoveries += 1;
                self.obs.count("safe_mode_recoveries", 1);
                // Hysteresis: fresh evidence only after re-arm.
                self.clear_window();
                return false;
            }
            return true;
        }
        false
    }

    /// Records one gated-stall outcome; call only while armed (samples
    /// taken in safe mode would measure clock gating, not gating health).
    pub fn record(&mut self, now: Cycle, penalty: Cycles, wake_failed: bool) {
        if matches!(self.mode, Mode::Safe { .. }) {
            return;
        }
        self.samples[self.next_slot] = (penalty.raw(), wake_failed);
        self.next_slot = (self.next_slot + 1) % self.config.window;
        self.filled = (self.filled + 1).min(self.config.window);
        if self.filled < self.config.min_samples {
            return;
        }

        let live = &self.samples[..self.filled];
        let mean_penalty = live.iter().map(|&(p, _)| p).sum::<u64>() as f64 / self.filled as f64;
        let failure_rate = live.iter().filter(|&&(_, f)| f).count() as f64 / self.filled as f64;
        let penalty_limit = self.wakeup.raw() as f64 * self.config.penalty_ratio;

        if mean_penalty > penalty_limit || failure_rate > self.config.failure_threshold {
            self.mode = Mode::Safe {
                until: now + self.backoff,
            };
            self.stats.safe_mode_entries += 1;
            self.obs.count("safe_mode_trips", 1);
            self.backoff = self.backoff.scale(2.0).min(self.config.backoff_max);
            self.clear_window();
        } else if self.filled == self.config.window {
            // A full window of healthy samples resets the backoff: the
            // system has demonstrably recovered, so the next trip (if any)
            // starts from the base hold again.
            self.backoff = self.config.backoff_base;
        }
    }

    /// Accounts one demoted power-gate decision spanning `stall` cycles.
    pub fn note_demotion(&mut self, stall: Cycles) {
        self.stats.demoted_gates += 1;
        self.stats.safe_stall_cycles += stall.raw();
        self.obs.count("demoted_gates", 1);
    }

    /// Degradation statistics so far.
    pub fn stats(&self) -> DegradationStats {
        self.stats
    }

    /// True while in safe mode (without advancing time).
    pub fn in_safe_mode(&self) -> bool {
        matches!(self.mode, Mode::Safe { .. })
    }

    fn clear_window(&mut self) {
        self.next_slot = 0;
        self.filled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> WatchdogConfig {
        WatchdogConfig {
            window: 8,
            min_samples: 4,
            penalty_ratio: 1.0,
            failure_threshold: 0.5,
            backoff_base: Cycles::new(1_000),
            backoff_max: Cycles::new(4_000),
        }
    }

    #[test]
    fn healthy_samples_never_trip() {
        let mut wd = Watchdog::new(quick_config(), Cycles::new(20));
        for i in 0..100u64 {
            let now = Cycle::new(i * 500);
            assert!(!wd.poll(now));
            wd.record(now, Cycles::ZERO, false);
        }
        assert!(wd.stats().is_empty());
        assert!(!wd.in_safe_mode());
    }

    #[test]
    fn trips_on_sustained_penalty_not_before_min_samples() {
        let mut wd = Watchdog::new(quick_config(), Cycles::new(20));
        // Three bad samples: below min_samples, must not trip.
        for i in 0..3u64 {
            wd.record(Cycle::new(i * 100), Cycles::new(500), true);
            assert!(!wd.in_safe_mode(), "tripped after {} samples", i + 1);
        }
        // Fourth reaches min_samples with mean penalty ≫ wakeup.
        wd.record(Cycle::new(300), Cycles::new(500), true);
        assert!(wd.in_safe_mode());
        assert_eq!(wd.stats().safe_mode_entries, 1);
    }

    #[test]
    fn recovers_after_backoff_with_hysteresis() {
        let mut wd = Watchdog::new(quick_config(), Cycles::new(20));
        for i in 0..4u64 {
            wd.record(Cycle::new(i), Cycles::new(500), true);
        }
        assert!(wd.in_safe_mode());
        // Still safe before the hold expires.
        assert!(wd.poll(Cycle::new(500)));
        // Recovered after it.
        assert!(!wd.poll(Cycle::new(2_000)));
        assert_eq!(wd.stats().recoveries, 1);
        // Hysteresis: one more bad sample is not enough to re-trip.
        wd.record(Cycle::new(2_001), Cycles::new(500), true);
        assert!(!wd.in_safe_mode());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut wd = Watchdog::new(quick_config(), Cycles::new(20));
        let mut now = 0u64;
        let mut holds = Vec::new();
        for _ in 0..4 {
            // Feed bad samples until it trips.
            while !wd.in_safe_mode() {
                wd.record(Cycle::new(now), Cycles::new(500), true);
                now += 1;
            }
            // Find how long the hold lasts by polling forward.
            let entered = now;
            while wd.poll(Cycle::new(now)) {
                now += 100;
            }
            holds.push(now - entered);
        }
        assert!(
            holds[1] > holds[0] && holds[2] > holds[1],
            "backoff must grow: {holds:?}"
        );
        // The cap bounds growth: last two holds are equal-length (±poll
        // granularity).
        assert!(holds[3] - holds[2] < 200, "backoff must cap: {holds:?}");
    }

    #[test]
    fn healthy_full_window_resets_backoff() {
        let mut wd = Watchdog::new(quick_config(), Cycles::new(20));
        // Trip once (backoff doubles to 2000).
        for i in 0..4u64 {
            wd.record(Cycle::new(i), Cycles::new(500), true);
        }
        assert!(!wd.poll(Cycle::new(10_000)), "recovered");
        // A full healthy window resets the backoff...
        for i in 0..8u64 {
            wd.record(Cycle::new(10_001 + i), Cycles::ZERO, false);
        }
        // ...so the next trip holds for backoff_base again.
        for i in 0..4u64 {
            wd.record(Cycle::new(20_000 + i), Cycles::new(500), true);
        }
        assert!(wd.poll(Cycle::new(20_500)), "inside base hold");
        assert!(!wd.poll(Cycle::new(21_100)), "base hold expired");
    }

    #[test]
    fn trips_on_failure_rate_alone() {
        let mut wd = Watchdog::new(quick_config(), Cycles::new(20));
        // Zero penalty but most wakes failed (e.g. dropped tokens absorbed
        // by an idle tail): the failure-rate trigger must still fire.
        for i in 0..4u64 {
            wd.record(Cycle::new(i), Cycles::ZERO, true);
        }
        assert!(wd.in_safe_mode());
    }

    #[test]
    fn demotions_accumulate() {
        let mut wd = Watchdog::new(quick_config(), Cycles::new(20));
        wd.note_demotion(Cycles::new(300));
        wd.note_demotion(Cycles::new(200));
        assert_eq!(wd.stats().demoted_gates, 2);
        assert_eq!(wd.stats().safe_stall_cycles, 500);
        assert!(wd.stats().to_string().contains("2 demoted"));
    }

    #[test]
    #[should_panic(expected = "min_samples")]
    fn rejects_min_samples_above_window() {
        let config = WatchdogConfig {
            window: 4,
            min_samples: 8,
            ..WatchdogConfig::default()
        };
        let _ = Watchdog::new(config, Cycles::new(20));
    }

    #[test]
    fn default_config_is_valid() {
        assert!(WatchdogConfig::default().validate().is_ok());
    }
}
