//! Gating timelines and VCD export.
//!
//! A [`Timeline`] records every power-state transition of every core during
//! a run; [`Timeline::to_vcd`] writes it as a Value Change Dump, so the
//! gating behaviour can be inspected in any waveform viewer (GTKWave etc.)
//! next to the rest of a chip's signals — the lingua franca of the EDA
//! flow this work comes from.

use std::io::{self, BufWriter, Write};

use mapg_cpu::CoreId;
use mapg_units::Cycle;

use crate::fsm::PgState;

/// One recorded power-state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEvent {
    /// When the state was entered.
    pub at: Cycle,
    /// Which core.
    pub core: CoreId,
    /// The state entered.
    pub state: PgState,
}

/// An append-only record of power-state transitions.
///
/// ```
/// use mapg::{PgState, Timeline};
/// use mapg_cpu::CoreId;
/// use mapg_units::Cycle;
///
/// let mut timeline = Timeline::new();
/// timeline.record(Cycle::new(100), CoreId(0), PgState::Entering);
/// timeline.record(Cycle::new(103), CoreId(0), PgState::Sleeping);
///
/// let mut vcd = Vec::new();
/// timeline.to_vcd(&mut vcd).expect("in-memory write");
/// let text = String::from_utf8(vcd).expect("vcd is ascii");
/// assert!(text.contains("$enddefinitions"));
/// assert!(text.contains("#100"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Appends a transition.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last recorded event *for the same core*
    /// (per-core timelines must be monotone; different cores may interleave
    /// arbitrarily).
    pub fn record(&mut self, at: Cycle, core: CoreId, state: PgState) {
        if let Some(last) = self.events.iter().rev().find(|e| e.core == core) {
            assert!(
                at >= last.at,
                "timeline regression for {core}: {at} after {}",
                last.at
            );
        }
        self.events.push(TimelineEvent { at, core, state });
    }

    /// All events in record order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of cores that appear in the timeline.
    pub fn cores(&self) -> usize {
        self.events.iter().map(|e| e.core.0 + 1).max().unwrap_or(0)
    }

    /// Total cycles each core spent in [`PgState::Sleeping`] according to
    /// the recorded transitions (up to each core's final event).
    pub fn sleeping_cycles(&self, core: CoreId) -> u64 {
        let mut total = 0;
        let mut sleep_start: Option<Cycle> = None;
        for event in self.events.iter().filter(|e| e.core == core) {
            match (event.state, sleep_start) {
                (PgState::Sleeping, None) => sleep_start = Some(event.at),
                (PgState::Sleeping, Some(_)) => {}
                (_, Some(start)) => {
                    total += (event.at - start).raw();
                    sleep_start = None;
                }
                (_, None) => {}
            }
        }
        total
    }

    /// Writes the timeline as a Value Change Dump. One 2-bit signal per
    /// core (`00` active, `01` entering, `10` sleeping, `11` waking), one
    /// VCD time unit per core cycle.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn to_vcd<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut w = BufWriter::new(writer);
        let cores = self.cores().max(1);
        writeln!(w, "$comment MAPG gating timeline $end")?;
        writeln!(w, "$timescale 1ns $end")?;
        writeln!(w, "$scope module mapg $end")?;
        for core in 0..cores {
            writeln!(
                w,
                "$var wire 2 {} core{}_pg_state $end",
                Self::code(core),
                core
            )?;
        }
        writeln!(w, "$upscope $end")?;
        writeln!(w, "$enddefinitions $end")?;

        // Initial values: every core starts active.
        writeln!(w, "#0")?;
        writeln!(w, "$dumpvars")?;
        for core in 0..cores {
            writeln!(w, "b00 {}", Self::code(core))?;
        }
        writeln!(w, "$end")?;

        // Events must be emitted in global time order.
        let mut ordered: Vec<&TimelineEvent> = self.events.iter().collect();
        ordered.sort_by_key(|e| e.at);
        let mut current_time: Option<Cycle> = None;
        for event in ordered {
            if current_time != Some(event.at) {
                writeln!(w, "#{}", event.at.raw())?;
                current_time = Some(event.at);
            }
            writeln!(
                w,
                "b{} {}",
                Self::encode(event.state),
                Self::code(event.core.0)
            )?;
        }
        w.flush()
    }

    /// VCD identifier code for a core index (printable ASCII from `!`).
    fn code(core: usize) -> String {
        // Base-94 over the printable VCD identifier alphabet.
        let mut n = core;
        let mut out = String::new();
        loop {
            out.push((b'!' + (n % 94) as u8) as char);
            n /= 94;
            if n == 0 {
                break;
            }
            n -= 1;
        }
        out
    }

    fn encode(state: PgState) -> &'static str {
        match state {
            PgState::Active => "00",
            PgState::Entering => "01",
            PgState::Sleeping => "10",
            PgState::Waking => "11",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_cycle(timeline: &mut Timeline, core: CoreId, base: u64) {
        timeline.record(Cycle::new(base), core, PgState::Entering);
        timeline.record(Cycle::new(base + 3), core, PgState::Sleeping);
        timeline.record(Cycle::new(base + 100), core, PgState::Waking);
        timeline.record(Cycle::new(base + 110), core, PgState::Active);
    }

    #[test]
    fn records_and_counts() {
        let mut t = Timeline::new();
        assert!(t.is_empty());
        full_cycle(&mut t, CoreId(0), 50);
        full_cycle(&mut t, CoreId(1), 80);
        assert_eq!(t.len(), 8);
        assert_eq!(t.cores(), 2);
        assert_eq!(t.sleeping_cycles(CoreId(0)), 97);
        assert_eq!(t.sleeping_cycles(CoreId(1)), 97);
    }

    #[test]
    #[should_panic(expected = "timeline regression")]
    fn per_core_monotonicity_enforced() {
        let mut t = Timeline::new();
        t.record(Cycle::new(100), CoreId(0), PgState::Entering);
        t.record(Cycle::new(50), CoreId(0), PgState::Sleeping);
    }

    #[test]
    fn cores_may_interleave_out_of_order() {
        let mut t = Timeline::new();
        t.record(Cycle::new(100), CoreId(0), PgState::Entering);
        // Core 1 is behind core 0 in time: allowed.
        t.record(Cycle::new(40), CoreId(1), PgState::Entering);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn vcd_structure() {
        let mut t = Timeline::new();
        full_cycle(&mut t, CoreId(0), 10);
        let mut out = Vec::new();
        t.to_vcd(&mut out).expect("write");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.contains("$var wire 2 ! core0_pg_state $end"), "{text}");
        assert!(text.contains("$enddefinitions $end"));
        assert!(text.contains("#10\nb01 !"), "{text}");
        assert!(text.contains("#13\nb10 !"), "{text}");
        assert!(text.contains("#110\nb11 !"), "{text}");
        assert!(text.contains("#120\nb00 !"), "{text}");
    }

    #[test]
    fn vcd_orders_interleaved_cores_by_time() {
        let mut t = Timeline::new();
        t.record(Cycle::new(100), CoreId(0), PgState::Entering);
        t.record(Cycle::new(40), CoreId(1), PgState::Entering);
        let mut out = Vec::new();
        t.to_vcd(&mut out).expect("write");
        let text = String::from_utf8(out).expect("ascii");
        let pos40 = text.find("#40").expect("time 40");
        let pos100 = text.find("#100").expect("time 100");
        assert!(pos40 < pos100, "{text}");
    }

    #[test]
    fn identifier_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for core in 0..500 {
            let code = Timeline::code(core);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(code), "duplicate code for core {core}");
        }
    }

    #[test]
    fn empty_timeline_writes_valid_header() {
        let t = Timeline::new();
        let mut out = Vec::new();
        t.to_vcd(&mut out).expect("write");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.contains("core0_pg_state"), "at least one signal");
    }
}
