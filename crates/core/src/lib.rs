//! **MAPG — Memory Access Power Gating** (reproduction of Jeong, Kahng,
//! Kang, Rosing, Strong — DATE 2012).
//!
//! Memory-intensive programs spend a large fraction of their time stalled
//! on DRAM. During those stalls a core leaks. MAPG power-gates the core
//! *per memory stall*: a fast-wakeup sleep-transistor design pushes the
//! break-even time below a single DRAM round trip, a miss-latency
//! predictor decides which stalls are long enough to gate, and early wake
//! scheduling hides the wake ramp under the remaining memory latency so
//! the performance cost is near zero.
//!
//! This crate is the paper's contribution layer; the substrates live in
//! [`mapg_cpu`], [`mapg_mem`], [`mapg_power`], [`mapg_trace`] and
//! [`mapg_units`].
//!
//! # Quickstart
//!
//! ```
//! use mapg::{PolicyKind, SimConfig, Simulation};
//!
//! let config = SimConfig::default().with_instructions(100_000);
//! let baseline = Simulation::new(config.clone(), PolicyKind::NoGating).run();
//! let mapg = Simulation::new(config, PolicyKind::Mapg).run();
//!
//! let savings = mapg.core_energy_savings_vs(&baseline);
//! let overhead = mapg.perf_overhead_vs(&baseline);
//! assert!(savings > 0.0);
//! assert!(overhead < 0.05);
//! ```
//!
//! # Layer map
//!
//! | concern | types |
//! |---|---|
//! | policies | [`GatingPolicy`], [`MapgPolicy`], [`NoGating`], [`ClockGating`], [`NaiveOnMiss`], [`TimeoutGating`], [`DvfsStall`], [`PolicyKind`] |
//! | prediction | [`MissLatencyPredictor`], [`HistoryTablePredictor`], [`EwmaPredictor`], [`LastValuePredictor`], [`StaticPredictor`], [`OraclePredictor`], [`PredictorScore`] |
//! | mechanism | [`GatingFsm`], [`PgState`], [`TokenManager`], [`Controller`] |
//! | harness | [`Simulation`], [`SimConfig`], [`RunReport`], [`SuiteRunner`], [`SuiteMatrix`] |
//! | robustness | [`FaultPlan`], [`FaultStats`], [`InvariantReport`], [`Watchdog`], [`DegradationStats`], [`MapgError`] |
//! | fuzzing | [`fuzz::Scenario`], [`fuzz::Finding`], [`fuzz::ShrinkOutcome`], [`fuzz::ReproFile`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod error;
mod faults;
mod fsm;
pub mod fsutil;
pub mod fuzz;
mod invariants;
mod policy;
mod predictor;
mod replicate;
mod report;
mod sim;
mod suite;
mod timeline;
mod tokens;
mod watchdog;

pub use controller::{Controller, ControllerConfig, GatingStats};
pub use error::MapgError;
pub use faults::{FaultPlan, FaultStats};
pub use fsm::{GatingFsm, PgState, StateResidency};
pub use fsutil::write_atomic;
pub use invariants::{InvariantChecker, InvariantKind, InvariantReport, InvariantViolation};
pub use policy::{
    ClockGating, DvfsStall, GatingPolicy, MapgPolicy, NaiveOnMiss, NoGating, PolicyContext,
    PolicyKind, PredictorKind, StallAction, TimeoutGating,
};
pub use predictor::{
    EwmaPredictor, HistoryTablePredictor, LastValuePredictor, MissLatencyPredictor,
    OraclePredictor, PredictorScore, StaticPredictor,
};
pub use replicate::{MetricSummary, Replication};
pub use report::{geometric_mean, RunReport};
pub use sim::{ambient_shards, with_ambient_shards, SimConfig, Simulation};
pub use suite::{SuiteMatrix, SuiteRunner};
pub use timeline::{Timeline, TimelineEvent};
pub use tokens::TokenManager;
pub use watchdog::{DegradationStats, Watchdog, WatchdogConfig};
