//! The full-system simulation: workload → cores → hierarchy → controller →
//! energy ledger → report.

use mapg_cpu::{Cluster, CoreConfig};
use mapg_mem::HierarchyConfig;
use mapg_obs::{EventHub, MetricsHub, ObsHandle};
use mapg_power::{
    DramEnergyModel, EnergyCategory, PgCircuitDesign, RetentionStyle, TechnologyParams,
};
use mapg_trace::{EventSource, RecordedTrace, SyntheticWorkload, WorkloadProfile};
use mapg_units::{Cycle, Cycles};

use crate::controller::{Controller, ControllerConfig};
use crate::error::MapgError;
use crate::faults::FaultPlan;
use crate::invariants::{InvariantKind, InvariantViolation};
use crate::policy::PolicyKind;
use crate::report::RunReport;
use crate::watchdog::WatchdogConfig;

/// Everything a run needs. Construct with [`SimConfig::default`] and
/// customize with the `with_*` methods:
///
/// ```
/// use mapg::{PolicyKind, SimConfig, Simulation};
/// use mapg_trace::WorkloadProfile;
///
/// let config = SimConfig::default()
///     .with_profile(WorkloadProfile::mem_bound("quick"))
///     .with_instructions(50_000);
/// let report = Simulation::new(config, PolicyKind::Mapg).run();
/// assert!(report.total_cycles() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-core profiles; core `i` runs `profiles[i % profiles.len()]`.
    profiles: Vec<WorkloadProfile>,
    cores: usize,
    channels: usize,
    shards: usize,
    instructions_per_core: u64,
    seed: u64,
    core: CoreConfig,
    memory: HierarchyConfig,
    tech: TechnologyParams,
    switch_width_ratio: f64,
    retention: RetentionStyle,
    tokens: Option<usize>,
    record_timeline: bool,
    regate_on_early_wake: bool,
    dram_energy: DramEnergyModel,
    fault_plan: FaultPlan,
    watchdog: Option<WatchdogConfig>,
    trace_capacity: Option<usize>,
    metrics: bool,
    metrics_hub: Option<MetricsHub>,
    event_hub: Option<EventHub>,
    reference_scheduler: bool,
    compute_quantum: Option<u64>,
}

impl SimConfig {
    /// The workload profile every core runs (with per-core seeds).
    pub fn with_profile(mut self, profile: WorkloadProfile) -> Self {
        self.profiles = vec![profile];
        self
    }

    /// A heterogeneous mix: one core per profile (sets the core count).
    /// Models consolidated multiprogrammed workloads, where memory-bound
    /// and compute-bound programs share the DRAM channel.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn with_workload_mix(self, profiles: Vec<WorkloadProfile>) -> Self {
        match self.try_with_workload_mix(profiles) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`SimConfig::with_workload_mix`] for user input.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] if `profiles` is empty.
    pub fn try_with_workload_mix(
        mut self,
        profiles: Vec<WorkloadProfile>,
    ) -> Result<Self, MapgError> {
        if profiles.is_empty() {
            return Err(MapgError::invalid("a mix needs at least one profile"));
        }
        self.cores = profiles.len();
        self.profiles = profiles;
        Ok(self)
    }

    /// Number of cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn with_cores(self, cores: usize) -> Self {
        match self.try_with_cores(cores) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`SimConfig::with_cores`] for user input.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] if `cores` is zero.
    pub fn try_with_cores(mut self, cores: usize) -> Result<Self, MapgError> {
        if cores == 0 {
            return Err(MapgError::invalid("need at least one core"));
        }
        self.cores = cores;
        Ok(self)
    }

    /// Number of independent memory channels; core `i` issues to channel
    /// `i % channels` (clamped to the core count at cluster build time).
    /// This is a *topology* knob — it changes which cores contend — so it
    /// changes results; the default of 1 is the classic fully-shared
    /// hierarchy every golden table uses.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn with_channels(self, channels: usize) -> Self {
        match self.try_with_channels(channels) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`SimConfig::with_channels`] for user input.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] if `channels` is zero.
    pub fn try_with_channels(mut self, channels: usize) -> Result<Self, MapgError> {
        if channels == 0 {
            return Err(MapgError::invalid("need at least one memory channel"));
        }
        self.channels = channels;
        Ok(self)
    }

    /// Shard count for the sharded cluster engine — an *execution
    /// strategy* knob, never a model knob: any shard count must produce a
    /// byte-identical report (`tests/obs_determinism.rs` pins this).
    ///
    /// Full-policy simulations drive every stall through the gating
    /// [`Controller`], whose token ledger and di/dt veto couple all cores
    /// in observation order, so they always run on the exact global wheel
    /// regardless of this setting (DESIGN.md §13); the sharded engine
    /// accelerates the uncoupled substrate paths (`mapgsim --shards`
    /// cross-checks, `bench-throughput`'s scale cases).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(self, shards: usize) -> Self {
        match self.try_with_shards(shards) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`SimConfig::with_shards`] for user input.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] if `shards` is zero.
    pub fn try_with_shards(mut self, shards: usize) -> Result<Self, MapgError> {
        if shards == 0 {
            return Err(MapgError::invalid("need at least one shard"));
        }
        self.shards = shards;
        Ok(self)
    }

    /// Instructions each core retires.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn with_instructions(self, instructions: u64) -> Self {
        match self.try_with_instructions(instructions) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`SimConfig::with_instructions`] for user input.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] if `instructions` is zero.
    pub fn try_with_instructions(mut self, instructions: u64) -> Result<Self, MapgError> {
        if instructions == 0 {
            return Err(MapgError::invalid("need at least one instruction"));
        }
        self.instructions_per_core = instructions;
        Ok(self)
    }

    /// Master RNG seed; core *i* uses `seed + i`.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Core microarchitecture parameters.
    pub fn with_core(mut self, core: CoreConfig) -> Self {
        self.core = core;
        self
    }

    /// Memory-hierarchy parameters.
    pub fn with_memory(mut self, memory: HierarchyConfig) -> Self {
        self.memory = memory;
        self
    }

    /// Fallible form of [`SimConfig::with_memory`] for user input: the
    /// hierarchy's own validation (DRAM geometry, MSHR count, fault plan)
    /// runs up front, so a bad `--dram-banks`/`--mshr-entries` value
    /// becomes a [`MapgError::InvalidConfig`] instead of a panic deep in
    /// cluster construction.
    pub fn try_with_memory(self, memory: HierarchyConfig) -> Result<Self, MapgError> {
        memory.try_validate()?;
        Ok(self.with_memory(memory))
    }

    /// Technology parameters.
    pub fn with_tech(mut self, tech: TechnologyParams) -> Self {
        self.tech = tech;
        self
    }

    /// Sleep-transistor width ratio (selects the PG circuit design point).
    ///
    /// The value is range-checked later, when the circuit is derived —
    /// see [`SimConfig::try_with_switch_width`] for the fallible form that
    /// rejects it up front.
    pub fn with_switch_width(mut self, ratio: f64) -> Self {
        self.switch_width_ratio = ratio;
        self
    }

    /// Fallible form of [`SimConfig::with_switch_width`] for user input;
    /// rejects ratios the circuit model would panic on deep inside the run.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] if `ratio` is outside
    /// `[0.005, 0.2]` (below, the switch cannot deliver the core's active
    /// current; above, the model's first-order laws stop holding).
    pub fn try_with_switch_width(mut self, ratio: f64) -> Result<Self, MapgError> {
        if !(0.005..=0.2).contains(&ratio) {
            return Err(MapgError::invalid(format!(
                "switch width ratio must be in [0.005, 0.2], got {ratio}"
            )));
        }
        self.switch_width_ratio = ratio;
        Ok(self)
    }

    /// State-retention style of the PG circuit (default: retentive).
    pub fn with_retention(mut self, retention: RetentionStyle) -> Self {
        self.retention = retention;
        self
    }

    /// Enables token-limited wake-ups with the given capacity.
    pub fn with_tokens(mut self, tokens: usize) -> Self {
        self.tokens = Some(tokens);
        self
    }

    /// Fallible form of [`SimConfig::with_tokens`] for user input; rejects
    /// a zero capacity here instead of deep inside the run.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] if `tokens` is zero.
    pub fn try_with_tokens(mut self, tokens: usize) -> Result<Self, MapgError> {
        if tokens == 0 {
            return Err(MapgError::invalid("token capacity must be non-zero"));
        }
        self.tokens = Some(tokens);
        Ok(self)
    }

    /// Disables token limiting (the default).
    pub fn without_tokens(mut self) -> Self {
        self.tokens = None;
        self
    }

    /// Enables fault injection per `plan`. The fault streams are keyed to
    /// the simulation seed, so `(seed, config, plan)` fully determine the
    /// run.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Fallible form of [`SimConfig::with_fault_plan`] for user input.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] if the plan is out of range
    /// (see [`FaultPlan::validate`]).
    pub fn try_with_fault_plan(mut self, plan: FaultPlan) -> Result<Self, MapgError> {
        plan.validate()?;
        self.fault_plan = plan;
        Ok(self)
    }

    /// Enables the safe-mode watchdog with explicit thresholds.
    pub fn with_safe_mode(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = Some(watchdog);
        self
    }

    /// Enables the safe-mode watchdog with default thresholds.
    pub fn with_safe_mode_default(self) -> Self {
        self.with_safe_mode(WatchdogConfig::default())
    }

    /// The configured fault plan (a no-op plan by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Records every power-state transition into
    /// [`RunReport::timeline`](crate::RunReport) (VCD-exportable).
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Records a structured event trace into
    /// [`RunReport::trace`](crate::RunReport) using the default ring
    /// capacity ([`mapg_obs::DEFAULT_TRACE_CAPACITY`]).
    pub fn with_trace(self) -> Self {
        self.with_trace_capacity(mapg_obs::DEFAULT_TRACE_CAPACITY)
    }

    /// Records a structured event trace into a bounded ring of `capacity`
    /// records; when full, the oldest records are dropped (and counted).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be non-zero");
        self.trace_capacity = Some(capacity);
        self
    }

    /// Collects counters and histograms into
    /// [`RunReport::metrics`](crate::RunReport).
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Additionally merges this run's metrics into `hub` at the end of the
    /// run (implies [`SimConfig::with_metrics`]). Merging is commutative
    /// and associative, so aggregation across concurrently executing runs
    /// is deterministic regardless of completion order.
    pub fn with_metrics_hub(mut self, hub: MetricsHub) -> Self {
        self.metrics = true;
        self.metrics_hub = Some(hub);
        self
    }

    /// Additionally publishes this run's event trace into `hub` at the
    /// end of the run (implies [`SimConfig::with_trace`] when no trace
    /// capacity was set). Subscribers polling the hub see each run's
    /// records as one in-order batch the moment the run completes —
    /// the incremental unit a streaming consumer (the `mapgd` daemon)
    /// observes while a multi-simulation job is still going.
    pub fn with_event_hub(mut self, hub: EventHub) -> Self {
        if self.trace_capacity.is_none() {
            self.trace_capacity = Some(mapg_obs::DEFAULT_TRACE_CAPACITY);
        }
        self.event_hub = Some(hub);
        self
    }

    /// Disables nap chaining (re-gating after an early wake) — the
    /// mechanism ablation knob. Enabled by default.
    pub fn without_regate(mut self) -> Self {
        self.regate_on_early_wake = false;
        self
    }

    /// Drives the cluster from **quantized recordings** instead of live
    /// synthetic generators: each core's workload is recorded to the
    /// instruction budget, compute runs are re-chunked at basic-block
    /// granularity (`quantum` instructions — see
    /// [`mapg_trace::RecordedTrace::quantize_compute`]), and the run
    /// replays the recording. This is the throughput benchmark's workload
    /// shape, where compute batching folds the most events; exposing it
    /// here lets the differential fuzzer drive the full controller stack
    /// through the replay path too.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn with_compute_quantum(self, quantum: u64) -> Self {
        match self.try_with_compute_quantum(quantum) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`SimConfig::with_compute_quantum`] for user input.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] if `quantum` is zero.
    pub fn try_with_compute_quantum(mut self, quantum: u64) -> Result<Self, MapgError> {
        if quantum == 0 {
            return Err(MapgError::invalid("compute quantum must be non-zero"));
        }
        self.compute_quantum = Some(quantum);
        Ok(self)
    }

    /// Runs on the frozen seed stack ([`mapg_cpu::ReferenceCluster`]: the
    /// retained per-event linear-scan scheduler over the seed memory
    /// hierarchy) instead of the optimized one.
    ///
    /// Reports must be identical either way — that is the equivalence the
    /// proptest oracle enforces. The knob exists for those oracle tests
    /// and for the `bench-throughput` harness, which measures the
    /// optimized stack's speedup against this reference.
    pub fn with_reference_scheduler(mut self) -> Self {
        self.reference_scheduler = true;
        self
    }

    /// The first configured profile (the only one outside mix mode).
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profiles[0]
    }

    /// All configured profiles (one entry outside mix mode).
    pub fn profiles(&self) -> &[WorkloadProfile] {
        &self.profiles
    }

    /// A display name for the configured workload(s).
    pub fn workload_name(&self) -> String {
        if self.profiles.len() == 1 {
            self.profiles[0].name().to_owned()
        } else {
            let names: Vec<&str> = self.profiles.iter().map(|p| p.name()).collect();
            format!("mix[{}]", names.join("+"))
        }
    }

    /// The configured core count.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The configured memory-channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configured technology.
    pub fn tech(&self) -> &TechnologyParams {
        &self.tech
    }

    /// The circuit design point this configuration implies.
    pub fn circuit(&self) -> PgCircuitDesign {
        PgCircuitDesign::from_switch_width(self.switch_width_ratio, &self.tech)
            .with_retention(self.retention)
    }

    /// Runs this configuration's memory substrate — cores, channels, and
    /// hierarchy under the passive (no-power-management) handler — once
    /// on the exact global wheel and once on the sharded engine at this
    /// configuration's shard count, then compares the full
    /// [`ClusterStats`](mapg_cpu::ClusterStats), trace, and metrics.
    ///
    /// Returns `Ok(None)` when the two are bit-identical (the sharded
    /// engine's contract) and `Ok(Some(detail))` naming the divergent
    /// artifact otherwise. This is the determinism self-check behind
    /// `mapgsim --shards` and the fuzzer's shard-divergence class; the
    /// full-policy controller path is out of scope by design because its
    /// cross-core coupling forces the global wheel (DESIGN.md §13).
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] if the cluster rejects the
    /// configuration.
    pub fn crosscheck_sharded(&self) -> Result<Option<String>, MapgError> {
        let mut memory = self.memory;
        if !self.fault_plan.is_nop() {
            memory.dram_faults = self.fault_plan.dram_faults(self.seed);
        }
        let capacity = self
            .trace_capacity
            .unwrap_or(mapg_obs::DEFAULT_TRACE_CAPACITY);
        let build = || -> Result<(Cluster<SyntheticWorkload>, ObsHandle), MapgError> {
            let sources: Vec<SyntheticWorkload> = (0..self.cores)
                .map(|i| {
                    let profile = &self.profiles[i % self.profiles.len()];
                    SyntheticWorkload::new(profile, self.seed + i as u64)
                })
                .collect();
            let mut cluster =
                Cluster::try_new_with_channels(self.core, memory, sources, self.channels)?;
            let obs = ObsHandle::enabled(Some(capacity), true);
            cluster.set_obs(obs.clone());
            Ok((cluster, obs))
        };
        let (mut wheel, wheel_obs) = build()?;
        wheel.try_run(self.instructions_per_core, &mut mapg_cpu::PassiveHandler)?;
        let (mut sharded, sharded_obs) = build()?;
        sharded.try_run_sharded(
            self.instructions_per_core,
            &mapg_cpu::PassiveHandler,
            self.shards,
        )?;
        if wheel.stats() != sharded.stats() {
            return Ok(Some(format!(
                "sharded substrate stats diverge from the global wheel at \
                 {} shards over {} channels",
                self.shards, self.channels
            )));
        }
        let (wheel_trace, wheel_metrics) = wheel_obs.collect();
        let (sharded_trace, sharded_metrics) = sharded_obs.collect();
        if wheel_trace != sharded_trace {
            return Ok(Some(format!(
                "sharded substrate trace diverges from the global wheel at \
                 {} shards over {} channels",
                self.shards, self.channels
            )));
        }
        if wheel_metrics != sharded_metrics {
            return Ok(Some(format!(
                "sharded substrate metrics diverge from the global wheel at \
                 {} shards over {} channels",
                self.shards, self.channels
            )));
        }
        Ok(None)
    }
}

thread_local! {
    static AMBIENT_SHARDS: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The innermost active [`with_ambient_shards`] override on this thread.
///
/// Harness code that builds configs deep inside a call tree (the
/// experiment registry's `base_config`) uses this to pick up the shard
/// count an `experiments --shards` invocation installed, without
/// threading a parameter through every experiment signature. Shards are
/// an execution-strategy knob — reports are identical at any value — so
/// the override can never change an experiment's output, only how the
/// substrate would be scheduled.
pub fn ambient_shards() -> Option<usize> {
    AMBIENT_SHARDS.with(std::cell::Cell::get)
}

/// Runs `f` with [`ambient_shards`] resolving to `shards` on the current
/// thread, restoring the previous value afterwards (also on panic).
///
/// # Panics
///
/// Panics if `shards` is zero (an override that [`SimConfig::with_shards`]
/// would reject is refused at the source).
pub fn with_ambient_shards<R>(shards: usize, f: impl FnOnce() -> R) -> R {
    assert!(shards > 0, "need at least one shard");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_SHARDS.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(AMBIENT_SHARDS.with(|cell| cell.replace(Some(shards))));
    f()
}

impl Default for SimConfig {
    /// One core, 1 M instructions of the generic memory-bound profile,
    /// baseline substrate, the MAPG fast-wakeup circuit, no tokens.
    fn default() -> Self {
        SimConfig {
            profiles: vec![WorkloadProfile::mem_bound("default")],
            cores: 1,
            channels: 1,
            shards: 1,
            instructions_per_core: 1_000_000,
            seed: 42,
            core: CoreConfig::baseline(),
            memory: HierarchyConfig::baseline(),
            tech: TechnologyParams::bulk_45nm(),
            switch_width_ratio: 0.03,
            retention: RetentionStyle::Retentive,
            tokens: None,
            record_timeline: false,
            regate_on_early_wake: true,
            dram_energy: DramEnergyModel::ddr3(),
            fault_plan: FaultPlan::none(),
            watchdog: None,
            trace_capacity: None,
            metrics: false,
            metrics_hub: None,
            event_hub: None,
            reference_scheduler: false,
            compute_quantum: None,
        }
    }
}

/// Builds the selected cluster around `sources`, runs it to the budget,
/// and returns the end-of-run statistics. Generic over the event source so
/// the live-synthetic, quantized-replay, and reference paths share one
/// driving routine (the fuzzer differentially crosses all of them). The
/// breadth of the argument list is the point: one signature names every
/// input the three paths must agree on.
#[allow(clippy::too_many_arguments)]
fn drive_cluster<S: EventSource>(
    reference: bool,
    core: CoreConfig,
    memory: HierarchyConfig,
    channels: usize,
    sources: Vec<S>,
    obs: &ObsHandle,
    controller: &mut Controller,
    instructions_per_core: u64,
) -> Result<mapg_cpu::ClusterStats, MapgError> {
    if reference {
        let mut cluster =
            mapg_cpu::ReferenceCluster::try_new_with_channels(core, memory, sources, channels)?;
        cluster.set_obs(obs.clone());
        cluster.try_run(instructions_per_core, controller)?;
        Ok(cluster.stats())
    } else {
        let mut cluster = Cluster::try_new_with_channels(core, memory, sources, channels)?;
        cluster.set_obs(obs.clone());
        cluster.try_run(instructions_per_core, controller)?;
        Ok(cluster.stats())
    }
}

/// One configured run: a cluster of cores, a shared hierarchy, and a gating
/// controller executing the chosen policy.
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    policy: PolicyKind,
}

impl Simulation {
    /// Pairs a configuration with a policy.
    pub fn new(config: SimConfig, policy: PolicyKind) -> Self {
        Simulation { config, policy }
    }

    /// Runs to completion and produces the report.
    ///
    /// Deterministic: identical `(config, policy)` produce identical
    /// reports.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero cores or instructions)
    /// — unreachable through the checked `SimConfig` builders; use
    /// [`Simulation::try_run`] on front-end paths that assemble configs
    /// from user input.
    pub fn run(self) -> RunReport {
        match self.try_run() {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Simulation::run`] for CLI front-ends.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] if the cluster rejects the
    /// configuration (zero cores or a zero instruction budget).
    pub fn try_run(self) -> Result<RunReport, MapgError> {
        let config = self.config;
        let circuit = config.circuit();
        let controller_config = ControllerConfig {
            tech: config.tech,
            circuit,
            clock: config.core.clock,
            tokens: config.tokens,
            regate_on_early_wake: config.regate_on_early_wake,
            fault_plan: config.fault_plan,
            fault_seed: config.seed,
            watchdog: config.watchdog,
        };
        let mut controller = Controller::new(self.policy.instantiate(), controller_config);
        if config.record_timeline {
            controller.enable_timeline();
        }
        // One observability handle per run, shared by every component via
        // cheap clones. Built here — inside the (single-threaded) run — so
        // emission order is simulation order and the trace stays
        // deterministic at any outer parallelism.
        let obs = ObsHandle::enabled(
            config.trace_capacity,
            config.metrics || config.metrics_hub.is_some(),
        );
        controller.set_obs(obs.clone());

        let sources: Vec<SyntheticWorkload> = (0..config.cores)
            .map(|i| {
                let profile = &config.profiles[i % config.profiles.len()];
                SyntheticWorkload::new(profile, config.seed + i as u64)
            })
            .collect();
        // A non-no-op plan injects its DRAM-side faults into the shared
        // hierarchy, keyed to the simulation seed; a no-op plan leaves the
        // memory configuration untouched.
        let mut memory = config.memory;
        if !config.fault_plan.is_nop() {
            memory.dram_faults = config.fault_plan.dram_faults(config.seed);
        }
        let cluster_stats = match config.compute_quantum {
            Some(quantum) => {
                // Record each generator to the budget, re-chunk compute at
                // the quantum, and drive the cluster from the replays. The
                // traces must outlive the cluster ([`Replay`] borrows).
                let traces: Vec<RecordedTrace> = sources
                    .into_iter()
                    .map(|mut workload| {
                        RecordedTrace::record(&mut workload, config.instructions_per_core)
                            .quantize_compute(quantum)
                    })
                    .collect();
                drive_cluster(
                    config.reference_scheduler,
                    config.core,
                    memory,
                    config.channels,
                    traces.iter().map(RecordedTrace::replay).collect(),
                    &obs,
                    &mut controller,
                    config.instructions_per_core,
                )?
            }
            None => drive_cluster(
                config.reference_scheduler,
                config.core,
                memory,
                config.channels,
                sources,
                &obs,
                &mut controller,
                config.instructions_per_core,
            )?,
        };
        let final_times: Vec<Cycle> = cluster_stats
            .per_core
            .iter()
            .map(|c| Cycle::new(c.total_cycles))
            .collect();
        controller.finish(&final_times);

        // --- post-run energy integration --------------------------------
        // Stall-time energy was charged by the controller as stalls
        // resolved; active-period and DRAM energy are integrated here.
        let mut energy = controller.energy().clone();
        let clock = config.core.clock;
        for core in &cluster_stats.per_core {
            let active = Cycles::new(core.active_cycles()).at(clock);
            energy.add(
                EnergyCategory::ActiveDynamic,
                config.tech.dynamic_power() * active,
            );
            energy.add(
                EnergyCategory::ActiveLeakage,
                config.tech.leakage_power() * active,
            );
        }
        let makespan = cluster_stats.makespan_cycles();
        let runtime = Cycles::new(makespan).at(clock);
        energy.add(
            EnergyCategory::DramAccess,
            config.dram_energy.access_energy(&cluster_stats.memory.dram),
        );
        energy.add(
            EnergyCategory::DramBackground,
            config.dram_energy.background_power * runtime,
        );
        energy.record_metrics(&obs);

        let peak_concurrent_wakes = controller
            .token_manager()
            .map(|t| t.peak_concurrency())
            .unwrap_or(0);

        // --- end-of-run audits the controller cannot see -----------------
        // Per-core accounting laws and the fully merged energy ledger join
        // the controller's own invariant report.
        {
            let checker = controller.invariants_mut();
            for (i, core) in cluster_stats.per_core.iter().enumerate() {
                let problems = core.audit();
                if problems.is_empty() {
                    checker.count_check();
                }
                for detail in problems {
                    checker.record(InvariantViolation {
                        kind: InvariantKind::Accounting,
                        core: Some(i),
                        at: None,
                        detail,
                    });
                }
            }
            let problems = energy.audit();
            if problems.is_empty() {
                checker.count_check();
            }
            for detail in problems {
                checker.record(InvariantViolation {
                    kind: InvariantKind::EnergyLedger,
                    core: None,
                    at: None,
                    detail,
                });
            }
        }

        let (trace, metrics) = obs.collect();
        if let (Some(hub), Some(metrics)) = (&config.metrics_hub, &metrics) {
            hub.merge(metrics);
        }
        if let (Some(feed), Some(trace)) = (&config.event_hub, &trace) {
            let records: Vec<_> = trace.iter().copied().collect();
            feed.publish(&records);
        }

        let timeline = controller.take_timeline();
        Ok(RunReport {
            timeline,
            policy: controller.policy_name(),
            workload: config.workload_name(),
            cores: config.cores,
            instructions: cluster_stats.total_instructions(),
            makespan_cycles: makespan,
            runtime,
            energy,
            gating: *controller.stats(),
            predictor: controller.policy().predictor_score().cloned(),
            core_stats: cluster_stats.per_core,
            memory: cluster_stats.memory,
            peak_concurrent_wakes,
            invariants: controller.invariants(),
            degradation: controller.degradation(),
            faults: controller.fault_stats(),
            trace,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SimConfig {
        SimConfig::default().with_instructions(100_000)
    }

    #[test]
    fn deterministic_reports() {
        let a = Simulation::new(quick(), PolicyKind::Mapg).run();
        let b = Simulation::new(quick(), PolicyKind::Mapg).run();
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.gating, b.gating);
        assert_eq!(a.total_energy(), b.total_energy());
    }

    #[test]
    fn heap_and_reference_schedulers_agree() {
        // The event-wheel must reproduce the linear-scan reference's
        // report exactly — field for field, including energy floats.
        let config = quick().with_cores(3).with_instructions(30_000).with_seed(9);
        let heap = Simulation::new(config.clone(), PolicyKind::Mapg).run();
        let reference = Simulation::new(config.with_reference_scheduler(), PolicyKind::Mapg).run();
        assert_eq!(heap, reference);
    }

    #[test]
    fn mapg_saves_core_energy_on_memory_bound() {
        let baseline = Simulation::new(quick(), PolicyKind::NoGating).run();
        let mapg = Simulation::new(quick(), PolicyKind::Mapg).run();
        let savings = mapg.core_energy_savings_vs(&baseline);
        assert!(
            savings > 0.10,
            "MAPG should save >10% core energy on mem-bound, got {savings}"
        );
        let overhead = mapg.perf_overhead_vs(&baseline);
        assert!(
            overhead < 0.05,
            "MAPG perf overhead should be small, got {overhead}"
        );
    }

    #[test]
    fn oracle_dominates_predictive_on_energy_delay() {
        let oracle = Simulation::new(quick(), PolicyKind::MapgOracle).run();
        let mapg = Simulation::new(quick(), PolicyKind::Mapg).run();
        assert!(
            oracle.edp() <= mapg.edp() * 1.02,
            "oracle EDP {:.3e} should be <= predictive {:.3e}",
            oracle.edp(),
            mapg.edp()
        );
    }

    #[test]
    fn naive_pays_more_performance_than_mapg() {
        let baseline = Simulation::new(quick(), PolicyKind::NoGating).run();
        let naive = Simulation::new(quick(), PolicyKind::NaiveOnMiss).run();
        let mapg = Simulation::new(quick(), PolicyKind::Mapg).run();
        assert!(
            naive.perf_overhead_vs(&baseline) > mapg.perf_overhead_vs(&baseline),
            "reactive wake must cost more runtime than early wake"
        );
    }

    #[test]
    fn compute_bound_offers_little_to_gate() {
        let config = quick().with_profile(WorkloadProfile::compute_bound("cpu_bound"));
        let baseline = Simulation::new(config.clone(), PolicyKind::NoGating).run();
        let mapg = Simulation::new(config, PolicyKind::Mapg).run();
        let savings = mapg.core_energy_savings_vs(&baseline);
        assert!(
            savings < 0.10,
            "compute-bound savings should be small, got {savings}"
        );
    }

    #[test]
    fn multicore_run_produces_per_core_stats() {
        let config = quick().with_cores(4).with_instructions(30_000);
        let report = Simulation::new(config, PolicyKind::Mapg).run();
        assert_eq!(report.core_stats.len(), 4);
        assert_eq!(report.cores, 4);
        assert!(report.instructions >= 120_000);
    }

    #[test]
    fn tokens_cap_concurrency() {
        let config = quick()
            .with_cores(8)
            .with_instructions(20_000)
            .with_tokens(2);
        let report = Simulation::new(config, PolicyKind::Mapg).run();
        assert!(report.peak_concurrent_wakes <= 2);
    }

    #[test]
    fn config_accessors() {
        let config = quick().with_cores(2).with_seed(7);
        assert_eq!(config.cores(), 2);
        assert_eq!(config.profile().name(), "default");
        assert!(config.circuit().switch_width_ratio() > 0.0);
        assert!(config.tech().total_power().as_watts() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = SimConfig::default().with_cores(0);
    }

    #[test]
    fn energy_ledger_has_all_expected_buckets() {
        let report = Simulation::new(quick(), PolicyKind::Mapg).run();
        assert!(report.energy.get(EnergyCategory::ActiveDynamic).as_joules() > 0.0);
        assert!(report.energy.get(EnergyCategory::ActiveLeakage).as_joules() > 0.0);
        assert!(report.energy.get(EnergyCategory::GatedResidual).as_joules() > 0.0);
        assert!(report.energy.get(EnergyCategory::Transition).as_joules() > 0.0);
        assert!(report.energy.get(EnergyCategory::DramAccess).as_joules() > 0.0);
        assert!(
            report
                .energy
                .get(EnergyCategory::DramBackground)
                .as_joules()
                > 0.0
        );
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn empty_mix_rejected() {
        let _ = SimConfig::default().with_workload_mix(Vec::new());
    }

    #[test]
    fn heterogeneous_mix_runs_one_core_per_profile() {
        let config = quick().with_workload_mix(vec![
            WorkloadProfile::mem_bound("hog"),
            WorkloadProfile::compute_bound("sprinter"),
        ]);
        assert_eq!(config.cores(), 2);
        assert_eq!(config.workload_name(), "mix[hog+sprinter]");
        let report = Simulation::new(config, PolicyKind::Mapg).run();
        assert_eq!(report.core_stats.len(), 2);
        // The memory hog stalls; the sprinter barely does.
        let hog = &report.core_stats[0];
        let sprinter = &report.core_stats[1];
        assert!(
            hog.stall_fraction() > 3.0 * sprinter.stall_fraction(),
            "hog {} vs sprinter {}",
            hog.stall_fraction(),
            sprinter.stall_fraction()
        );
        assert_eq!(report.workload, "mix[hog+sprinter]");
    }

    #[test]
    fn fault_free_runs_are_clean() {
        let report = Simulation::new(quick(), PolicyKind::Mapg).run();
        assert!(report.invariants.is_clean(), "{}", report.invariants);
        assert!(report.invariants.checks > 0, "checker must have run");
        assert_eq!(report.faults.total(), 0);
        assert!(report.degradation.is_empty());
        assert_eq!(report.memory.dram.fault_spikes, 0);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let run = || {
            let config = quick()
                .with_cores(2)
                .with_instructions(50_000)
                .with_tokens(2)
                .with_fault_plan(FaultPlan::moderate());
            Simulation::new(config, PolicyKind::Mapg).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.gating, b.gating);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.memory.dram.fault_spikes, b.memory.dram.fault_spikes);
        assert_eq!(a.total_energy(), b.total_energy());
    }

    #[test]
    fn faults_hurt_performance_but_not_bookkeeping() {
        let clean = Simulation::new(quick(), PolicyKind::Mapg).run();
        let faulty = Simulation::new(
            quick().with_fault_plan(FaultPlan::moderate()),
            PolicyKind::Mapg,
        )
        .run();
        assert!(faulty.faults.total() > 0, "moderate plan must inject");
        assert!(faulty.memory.dram.fault_spikes > 0);
        assert!(
            faulty.makespan_cycles > clean.makespan_cycles,
            "faults must cost runtime: {} !> {}",
            faulty.makespan_cycles,
            clean.makespan_cycles
        );
        // The environment misbehaves; the controller's books must not.
        assert!(faulty.invariants.is_clean(), "{}", faulty.invariants);
    }

    #[test]
    fn watchdog_degrades_and_recovers_under_heavy_faults() {
        let config = quick()
            .with_instructions(200_000)
            .with_fault_plan(FaultPlan::heavy())
            .with_safe_mode_default();
        let report = Simulation::new(config, PolicyKind::Mapg).run();
        assert!(
            report.degradation.safe_mode_entries > 0,
            "watchdog never tripped: {}",
            report.degradation
        );
        assert!(report.degradation.demoted_gates > 0);
        assert!(
            report.degradation.recoveries > 0,
            "watchdog never recovered: {}",
            report.degradation
        );
        assert!(report.invariants.is_clean(), "{}", report.invariants);
    }

    #[test]
    fn watchdog_stays_quiet_on_healthy_runs() {
        let report = Simulation::new(quick().with_safe_mode_default(), PolicyKind::Mapg).run();
        assert!(
            report.degradation.is_empty(),
            "healthy run tripped the watchdog: {}",
            report.degradation
        );
    }

    #[test]
    fn quantized_replay_agrees_across_schedulers() {
        // The quantized-recording path must preserve the event-wheel ↔
        // reference equivalence end-to-end (controller included).
        let config = quick()
            .with_cores(2)
            .with_instructions(20_000)
            .with_seed(11)
            .with_compute_quantum(4);
        let live = Simulation::new(config.clone(), PolicyKind::Mapg).run();
        let reference = Simulation::new(config.with_reference_scheduler(), PolicyKind::Mapg).run();
        assert_eq!(live, reference);
    }

    #[test]
    fn quantized_replay_is_deterministic() {
        let mk = || {
            quick()
                .with_instructions(15_000)
                .with_compute_quantum(7)
                .with_seed(3)
        };
        let a = Simulation::new(mk(), PolicyKind::Mapg).run();
        let b = Simulation::new(mk(), PolicyKind::Mapg).run();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_compute_quantum_rejected() {
        let err = SimConfig::default().try_with_compute_quantum(0);
        assert!(err.is_err());
    }

    #[test]
    fn zero_channels_and_zero_shards_rejected() {
        assert!(SimConfig::default().try_with_channels(0).is_err());
        assert!(SimConfig::default().try_with_shards(0).is_err());
        assert_eq!(SimConfig::default().channels(), 1);
        assert_eq!(SimConfig::default().shards(), 1);
    }

    /// Channels are a topology knob: splitting a contended cluster over
    /// two channels must change (improve) the makespan, and the heap and
    /// reference schedulers must still agree on the multi-channel result.
    #[test]
    fn channels_change_the_topology_and_schedulers_still_agree() {
        let mk = |channels: usize| {
            quick()
                .with_cores(4)
                .with_instructions(30_000)
                .with_channels(channels)
        };
        let shared = Simulation::new(mk(1), PolicyKind::Mapg).run();
        let split = Simulation::new(mk(2), PolicyKind::Mapg).run();
        assert!(
            split.makespan_cycles < shared.makespan_cycles,
            "two channels ({}) must beat one ({})",
            split.makespan_cycles,
            shared.makespan_cycles
        );
        let split_reference =
            Simulation::new(mk(2).with_reference_scheduler(), PolicyKind::Mapg).run();
        assert_eq!(split, split_reference);
    }

    /// Shards are an execution-strategy knob: the full-policy controller
    /// path always runs the exact global wheel, so any shard count must
    /// produce a byte-identical report (the CSV-level counterpart lives
    /// in `tests/obs_determinism.rs`).
    #[test]
    fn shard_count_never_changes_a_report() {
        let mk = |shards: usize| {
            quick()
                .with_cores(4)
                .with_instructions(30_000)
                .with_channels(2)
                .with_shards(shards)
                .with_tokens(2)
        };
        let one = Simulation::new(mk(1), PolicyKind::Mapg).run();
        for shards in [3, 8] {
            assert_eq!(Simulation::new(mk(shards), PolicyKind::Mapg).run(), one);
        }
    }

    #[test]
    fn mix_shares_the_dram_channel() {
        // The sprinter alone vs the sprinter co-running with a hog: the
        // hog's traffic cannot make the sprinter stall less.
        let solo = Simulation::new(
            quick().with_profile(WorkloadProfile::compute_bound("s")),
            PolicyKind::NoGating,
        )
        .run();
        let mixed = Simulation::new(
            quick().with_workload_mix(vec![
                WorkloadProfile::compute_bound("s"),
                WorkloadProfile::mem_bound("hog"),
            ]),
            PolicyKind::NoGating,
        )
        .run();
        let solo_stall = solo.core_stats[0].stall_fraction();
        let mixed_stall = mixed.core_stats[0].stall_fraction();
        assert!(
            mixed_stall >= solo_stall,
            "contention cannot reduce stalls: {mixed_stall} < {solo_stall}"
        );
    }
}
