//! Runtime invariant checking for the gating stack.
//!
//! The simulator's correctness argument rests on a handful of conservation
//! laws: FSM transitions are legal, simulated time never runs backwards,
//! wake tokens are conserved, the energy ledger matches residency × power,
//! and no core resumes before its data arrives. The
//! [`InvariantChecker`] evaluates those laws *during* a run — including
//! runs with fault injection, where the environment misbehaves but the
//! controller's bookkeeping must not.
//!
//! Violations are collected into the run's [`InvariantReport`] instead of
//! panicking: a release binary driving a parameter sweep should report a
//! broken invariant alongside the row that produced it, not abort the
//! sweep. Tests then assert [`InvariantReport::is_clean`].

use core::fmt;

/// Upper bound on violations kept with full detail (the total count keeps
/// incrementing past it, so a hot broken invariant cannot balloon memory).
const MAX_RECORDED: usize = 32;

/// Which law a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// A power-gating FSM transition was illegal for the current state.
    FsmTransition,
    /// An event timestamp preceded an earlier event on the same core.
    MonotonicTime,
    /// Token grants, delays, or concurrency do not reconcile.
    TokenLedger,
    /// An energy bucket disagrees with residency × power (or is negative
    /// or non-finite).
    EnergyLedger,
    /// A core resumed execution before its memory response arrived (it
    /// would be computing while gated or data-less).
    ResumeBeforeData,
    /// Statistics that must partition or bound each other do not.
    Accounting,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InvariantKind::FsmTransition => "fsm-transition",
            InvariantKind::MonotonicTime => "monotonic-time",
            InvariantKind::TokenLedger => "token-ledger",
            InvariantKind::EnergyLedger => "energy-ledger",
            InvariantKind::ResumeBeforeData => "resume-before-data",
            InvariantKind::Accounting => "accounting",
        };
        f.write_str(s)
    }
}

/// One broken invariant, with enough context to locate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The law that broke.
    pub kind: InvariantKind,
    /// Core involved, when the violation is per-core.
    pub core: Option<usize>,
    /// Simulated cycle at which it was detected, when time-scoped.
    pub at: Option<u64>,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.kind)?;
        if let Some(core) = self.core {
            write!(f, " core {core}")?;
        }
        if let Some(at) = self.at {
            write!(f, " @cycle {at}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Accumulates invariant evaluations over a run.
#[derive(Debug, Clone, Default)]
pub struct InvariantChecker {
    checks: u64,
    total_violations: u64,
    violations: Vec<InvariantViolation>,
}

impl InvariantChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        InvariantChecker::default()
    }

    /// Evaluates one invariant: `ok` must hold. `detail` is only invoked
    /// on failure, so hot-path checks pay no formatting cost.
    pub fn check(
        &mut self,
        ok: bool,
        kind: InvariantKind,
        core: Option<usize>,
        at: Option<u64>,
        detail: impl FnOnce() -> String,
    ) {
        self.checks += 1;
        if !ok {
            self.record(InvariantViolation {
                kind,
                core,
                at,
                detail: detail(),
            });
        }
    }

    /// Records an externally detected violation (e.g. an FSM `try_*` error).
    pub fn record(&mut self, violation: InvariantViolation) {
        self.total_violations += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(violation);
        }
    }

    /// Counts one check that passed by construction elsewhere.
    pub fn count_check(&mut self) {
        self.checks += 1;
    }

    /// Snapshot of the results so far.
    pub fn report(&self) -> InvariantReport {
        InvariantReport {
            checks: self.checks,
            total_violations: self.total_violations,
            violations: self.violations.clone(),
        }
    }
}

/// The invariant-checking outcome of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// Invariant evaluations performed.
    pub checks: u64,
    /// Violations detected (including any beyond the recording cap).
    pub total_violations: u64,
    /// The first violations, with full detail (capped).
    pub violations: Vec<InvariantViolation>,
}

impl InvariantReport {
    /// True when every evaluated invariant held.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} checks, {} violations",
            self.checks, self.total_violations
        )?;
        for violation in &self.violations {
            write!(f, "\n    {violation}")?;
        }
        if self.total_violations as usize > self.violations.len() {
            write!(
                f,
                "\n    ... and {} more",
                self.total_violations as usize - self.violations.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_checks_stay_clean() {
        let mut checker = InvariantChecker::new();
        for i in 0..10u64 {
            checker.check(true, InvariantKind::MonotonicTime, None, Some(i), || {
                unreachable!("detail must not be built for passing checks")
            });
        }
        let report = checker.report();
        assert!(report.is_clean());
        assert_eq!(report.checks, 10);
        assert!(report.to_string().contains("10 checks"));
    }

    #[test]
    fn failures_are_recorded_with_context() {
        let mut checker = InvariantChecker::new();
        checker.check(
            false,
            InvariantKind::TokenLedger,
            Some(3),
            Some(1_000),
            || "grants 5 != intervals 4".to_owned(),
        );
        let report = checker.report();
        assert!(!report.is_clean());
        assert_eq!(report.total_violations, 1);
        let text = report.to_string();
        assert!(text.contains("token-ledger"), "{text}");
        assert!(text.contains("core 3"), "{text}");
        assert!(text.contains("@cycle 1000"), "{text}");
        assert!(text.contains("grants 5 != intervals 4"), "{text}");
    }

    #[test]
    fn recording_is_capped_but_counting_is_not() {
        let mut checker = InvariantChecker::new();
        for i in 0..100 {
            checker.check(false, InvariantKind::Accounting, None, None, || {
                format!("violation {i}")
            });
        }
        let report = checker.report();
        assert_eq!(report.total_violations, 100);
        assert_eq!(report.violations.len(), MAX_RECORDED);
        assert!(report.to_string().contains("and 68 more"));
    }

    #[test]
    fn kind_display_names_are_stable() {
        assert_eq!(InvariantKind::FsmTransition.to_string(), "fsm-transition");
        assert_eq!(InvariantKind::EnergyLedger.to_string(), "energy-ledger");
        assert_eq!(
            InvariantKind::ResumeBeforeData.to_string(),
            "resume-before-data"
        );
    }
}
