//! Token-limited wake-up scheduling.
//!
//! Every waking core draws a large inrush current while its virtual rail
//! recharges. If many cores wake simultaneously the combined di/dt can
//! collapse the shared supply; the token mechanism (the TAP companion
//! work's device) caps the number of *concurrent* wake-ups: a core must
//! hold a token for the duration of its wake ramp. Waiting for a token
//! delays the wake and turns into a performance penalty — the trade
//! experiment R-F8 sweeps.

use mapg_units::{Cycle, Cycles};

use crate::error::MapgError;

/// Grants at most `capacity` concurrent wake-up slots.
///
/// ```
/// use mapg::TokenManager;
/// use mapg_units::{Cycle, Cycles};
///
/// let mut tokens = TokenManager::new(1);
/// let first = tokens.acquire(Cycle::new(100), Cycles::new(10));
/// let second = tokens.acquire(Cycle::new(100), Cycles::new(10));
/// assert_eq!(first, Cycle::new(100));
/// assert_eq!(second, Cycle::new(110), "second wake waits for the token");
/// ```
#[derive(Debug, Clone)]
pub struct TokenManager {
    /// Busy-until time of each token slot.
    slots: Vec<Cycle>,
    grants: u64,
    delayed_grants: u64,
    delay_cycles: u64,
    /// Every granted interval, for exact peak-concurrency computation.
    intervals: Vec<(u64, u64)>,
    obs: mapg_obs::ObsHandle,
}

impl TokenManager {
    /// Creates a manager with `capacity` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — with no tokens no core could ever
    /// wake.
    pub fn new(capacity: usize) -> Self {
        match TokenManager::try_new(capacity) {
            Ok(manager) => manager,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor for user-supplied capacities.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] when `capacity` is zero.
    pub fn try_new(capacity: usize) -> Result<Self, MapgError> {
        if capacity == 0 {
            return Err(MapgError::invalid("token capacity must be non-zero"));
        }
        Ok(TokenManager {
            slots: vec![Cycle::ZERO; capacity],
            grants: 0,
            delayed_grants: 0,
            delay_cycles: 0,
            intervals: Vec::new(),
            obs: mapg_obs::ObsHandle::disabled(),
        })
    }

    /// Attaches an observability handle; grant counts and token-wait
    /// distributions flow through it.
    pub fn set_obs(&mut self, obs: mapg_obs::ObsHandle) {
        self.obs = obs;
    }

    /// Token capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Requests a wake slot of length `duration` no earlier than `ready`.
    /// Returns the granted start time (`>= ready`); the token is held for
    /// `[start, start + duration)`.
    pub fn acquire(&mut self, ready: Cycle, duration: Cycles) -> Cycle {
        // Earliest-available slot.
        let slot = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, &busy_until)| busy_until)
            .map(|(i, _)| i)
            .expect("capacity is non-zero");
        let start = ready.max(self.slots[slot]);
        self.slots[slot] = start + duration;
        self.grants += 1;
        self.obs.count("token_grants", 1);
        self.obs.observe("token_wait", (start - ready).raw());
        if start > ready {
            self.delayed_grants += 1;
            self.delay_cycles += (start - ready).raw();
        }
        self.intervals.push((start.raw(), (start + duration).raw()));
        start
    }

    /// Total grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Grants that had to wait for a token.
    pub fn delayed_grants(&self) -> u64 {
        self.delayed_grants
    }

    /// Total cycles of token-wait added across all grants.
    pub fn delay_cycles(&self) -> u64 {
        self.delay_cycles
    }

    /// Highest number of simultaneously held tokens over the whole run,
    /// computed exactly by a sweep over the granted intervals (a token is
    /// held for `[start, start + duration)`).
    pub fn peak_concurrency(&self) -> usize {
        let mut events: Vec<(u64, i32)> = Vec::with_capacity(self.intervals.len() * 2);
        for &(start, end) in &self.intervals {
            events.push((start, 1));
            events.push((end, -1));
        }
        // Ends sort before starts at the same instant: intervals are
        // half-open.
        events.sort_unstable_by_key(|&(t, delta)| (t, delta));
        let mut live = 0i32;
        let mut peak = 0i32;
        for (_, delta) in events {
            live += delta;
            peak = peak.max(live);
        }
        peak as usize
    }

    /// Audits token conservation: every grant left an interval, no
    /// interval runs backwards, delayed-grant bookkeeping is mutually
    /// consistent, and concurrency never exceeded capacity. Returns one
    /// message per broken law.
    pub fn audit(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.grants != self.intervals.len() as u64 {
            problems.push(format!(
                "token ledger: {} grants but {} recorded intervals",
                self.grants,
                self.intervals.len()
            ));
        }
        if let Some(&(start, end)) = self.intervals.iter().find(|&&(start, end)| end < start) {
            problems.push(format!(
                "token ledger: interval runs backwards ({start} → {end})"
            ));
        }
        if self.delayed_grants > self.grants {
            problems.push(format!(
                "token ledger: {} delayed grants exceed {} total grants",
                self.delayed_grants, self.grants
            ));
        }
        if self.delay_cycles > 0 && self.delayed_grants == 0 {
            problems.push(format!(
                "token ledger: {} delay cycles with zero delayed grants",
                self.delay_cycles
            ));
        }
        let peak = self.peak_concurrency();
        if peak > self.capacity() {
            problems.push(format!(
                "token conservation: peak concurrency {peak} exceeds \
                 capacity {}",
                self.capacity()
            ));
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_grants_up_to_capacity() {
        let mut t = TokenManager::new(3);
        for _ in 0..3 {
            assert_eq!(t.acquire(Cycle::new(50), Cycles::new(10)), Cycle::new(50));
        }
        // Fourth must wait.
        assert_eq!(t.acquire(Cycle::new(50), Cycles::new(10)), Cycle::new(60));
        assert_eq!(t.grants(), 4);
        assert_eq!(t.delayed_grants(), 1);
        assert_eq!(t.delay_cycles(), 10);
        assert_eq!(t.peak_concurrency(), 3);
    }

    #[test]
    fn tokens_free_over_time() {
        let mut t = TokenManager::new(1);
        assert_eq!(t.acquire(Cycle::new(0), Cycles::new(10)), Cycle::new(0));
        // Requested after the first released: no delay.
        assert_eq!(t.acquire(Cycle::new(20), Cycles::new(10)), Cycle::new(20));
        assert_eq!(t.delayed_grants(), 0);
    }

    #[test]
    fn cascading_delays_serialize() {
        let mut t = TokenManager::new(1);
        let starts: Vec<_> = (0..4)
            .map(|_| t.acquire(Cycle::new(0), Cycles::new(25)).raw())
            .collect();
        assert_eq!(starts, vec![0, 25, 50, 75]);
        assert_eq!(t.delay_cycles(), 25 + 50 + 75);
    }

    #[test]
    #[should_panic(expected = "token capacity")]
    fn zero_capacity_rejected() {
        let _ = TokenManager::new(0);
    }

    #[test]
    fn capacity_accessor() {
        assert_eq!(TokenManager::new(7).capacity(), 7);
    }

    #[test]
    fn try_new_reports_zero_capacity() {
        let err = TokenManager::try_new(0).unwrap_err();
        assert!(err.to_string().contains("token capacity"), "{err}");
        assert!(TokenManager::try_new(2).is_ok());
    }

    #[test]
    fn audit_passes_on_normal_use() {
        let mut t = TokenManager::new(2);
        for i in 0..10u64 {
            t.acquire(Cycle::new(i * 3), Cycles::new(10));
        }
        assert!(t.audit().is_empty(), "{:?}", t.audit());
    }
}
