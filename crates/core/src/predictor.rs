//! Miss-latency (stall-duration) predictors.
//!
//! MAPG's gating decision is a comparison between the *predicted* duration
//! of the stall that just began and the circuit's break-even time. Since a
//! DRAM access's latency varies with row-buffer state, bank contention and
//! refresh, a predictor is needed; the paper-era design space — static
//! estimate, last value, exponential average, PC-indexed history — is
//! implemented here and compared in experiment R-F7.

use std::collections::HashMap;

use mapg_cpu::StallInfo;
use mapg_units::Cycles;

use core::fmt;

/// Predicts the duration of a stall at its onset, learning from completed
/// stalls.
///
/// Implementations must derive predictions **only** from past observations
/// and the onset context in [`StallInfo`] (PC, cause, outstanding count) —
/// never from `StallInfo::data_ready`, which is oracle information. The
/// only intentional exception is [`OraclePredictor`], the upper-bound
/// reference.
pub trait MissLatencyPredictor {
    /// Predicts the duration of the stall described by `info`.
    fn predict(&mut self, info: &StallInfo) -> Cycles;

    /// Learns from a completed stall of duration `actual`.
    fn observe(&mut self, info: &StallInfo, actual: Cycles);

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Always predicts a fixed duration (e.g. the nominal DRAM round trip).
#[derive(Debug, Clone, Copy)]
pub struct StaticPredictor {
    estimate: Cycles,
}

impl StaticPredictor {
    /// Creates the predictor with a fixed `estimate`.
    pub fn new(estimate: Cycles) -> Self {
        StaticPredictor { estimate }
    }
}

impl MissLatencyPredictor for StaticPredictor {
    fn predict(&mut self, _info: &StallInfo) -> Cycles {
        self.estimate
    }

    fn observe(&mut self, _info: &StallInfo, _actual: Cycles) {}

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Predicts the duration of the previous stall (global last-value).
#[derive(Debug, Clone, Copy)]
pub struct LastValuePredictor {
    last: Cycles,
}

impl LastValuePredictor {
    /// Creates the predictor seeded with `initial` (used before the first
    /// observation).
    pub fn new(initial: Cycles) -> Self {
        LastValuePredictor { last: initial }
    }
}

impl MissLatencyPredictor for LastValuePredictor {
    fn predict(&mut self, _info: &StallInfo) -> Cycles {
        self.last
    }

    fn observe(&mut self, _info: &StallInfo, actual: Cycles) {
        self.last = actual;
    }

    fn name(&self) -> &'static str {
        "last-value"
    }
}

/// Fixed-point exponentially weighted moving average over all stalls.
///
/// The EWMA is maintained in 1/16-cycle fixed point with `alpha = n/16`,
/// matching what a hardware implementation (shift-add) would do.
#[derive(Debug, Clone, Copy)]
pub struct EwmaPredictor {
    /// EWMA in 1/16 cycles.
    state_x16: u64,
    /// Numerator of alpha over 16 (1..=16).
    alpha_x16: u64,
}

impl EwmaPredictor {
    /// Creates the predictor with smoothing `alpha_x16/16` seeded at
    /// `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha_x16` is not in `1..=16`.
    pub fn new(initial: Cycles, alpha_x16: u64) -> Self {
        assert!(
            (1..=16).contains(&alpha_x16),
            "alpha_x16 must be in 1..=16, got {alpha_x16}"
        );
        EwmaPredictor {
            state_x16: initial.raw() * 16,
            alpha_x16,
        }
    }

    fn fold(&mut self, actual: Cycles) {
        let sample_x16 = actual.raw() * 16;
        self.state_x16 =
            (self.state_x16 * (16 - self.alpha_x16) + sample_x16 * self.alpha_x16) / 16;
    }
}

impl MissLatencyPredictor for EwmaPredictor {
    fn predict(&mut self, _info: &StallInfo) -> Cycles {
        Cycles::new(self.state_x16 / 16)
    }

    fn observe(&mut self, _info: &StallInfo, actual: Cycles) {
        self.fold(actual);
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// PC-indexed table of EWMAs: stalls caused by different load instructions
/// (different traversal patterns) learn independently. This is the
/// predictor MAPG's policy uses.
#[derive(Debug, Clone)]
pub struct HistoryTablePredictor {
    table: HashMap<u64, EwmaPredictor>,
    default_estimate: Cycles,
    alpha_x16: u64,
    capacity: usize,
}

impl HistoryTablePredictor {
    /// Creates a table of at most `capacity` PC entries, each an EWMA with
    /// the given smoothing, falling back to `default_estimate` for unseen
    /// PCs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `alpha_x16` not in `1..=16`.
    pub fn new(default_estimate: Cycles, alpha_x16: u64, capacity: usize) -> Self {
        assert!(capacity > 0, "history table needs capacity");
        assert!(
            (1..=16).contains(&alpha_x16),
            "alpha_x16 must be in 1..=16, got {alpha_x16}"
        );
        HistoryTablePredictor {
            table: HashMap::new(),
            default_estimate,
            alpha_x16,
            capacity,
        }
    }

    /// The hardware-realistic default: 64 entries, alpha = 4/16, seeded at
    /// 200 cycles (a typical loaded DRAM round trip).
    pub fn hardware_default() -> Self {
        HistoryTablePredictor::new(Cycles::new(200), 4, 64)
    }

    /// Current number of tracked PCs.
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl MissLatencyPredictor for HistoryTablePredictor {
    fn predict(&mut self, info: &StallInfo) -> Cycles {
        match self.table.get_mut(&info.pc) {
            Some(entry) => entry.predict(info),
            None => self.default_estimate,
        }
    }

    fn observe(&mut self, info: &StallInfo, actual: Cycles) {
        if let Some(entry) = self.table.get_mut(&info.pc) {
            entry.fold(actual);
            return;
        }
        if self.table.len() < self.capacity {
            let mut entry = EwmaPredictor::new(self.default_estimate, self.alpha_x16);
            entry.fold(actual);
            self.table.insert(info.pc, entry);
        }
        // Table full and PC untracked: drop the sample (no replacement
        // policy, like a direct-mapped untagged table would alias — the
        // conservative choice for a model).
    }

    fn name(&self) -> &'static str {
        "history-table"
    }
}

/// The oracle: "predicts" the actual duration. Upper bound for R-F7 and
/// the decision engine for the `MapgOracle` policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct OraclePredictor;

impl MissLatencyPredictor for OraclePredictor {
    fn predict(&mut self, info: &StallInfo) -> Cycles {
        info.natural_duration()
    }

    fn observe(&mut self, _info: &StallInfo, _actual: Cycles) {}

    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// Accuracy bookkeeping wrapped around any predictor (experiment R-F7).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorScore {
    predictions: u64,
    /// |error| within 25 % of actual.
    within_band: u64,
    overpredictions: u64,
    underpredictions: u64,
    abs_error_sum: u64,
}

impl PredictorScore {
    /// An empty score.
    pub fn new() -> Self {
        PredictorScore {
            predictions: 0,
            within_band: 0,
            overpredictions: 0,
            underpredictions: 0,
            abs_error_sum: 0,
        }
    }

    /// Records one (predicted, actual) pair.
    pub fn record(&mut self, predicted: Cycles, actual: Cycles) {
        self.predictions += 1;
        let p = predicted.raw();
        let a = actual.raw();
        let err = p.abs_diff(a);
        self.abs_error_sum += err;
        if err * 4 <= a {
            self.within_band += 1;
        } else if p > a {
            self.overpredictions += 1;
        } else {
            self.underpredictions += 1;
        }
    }

    /// Number of predictions scored.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Fraction of predictions within ±25 % of the actual duration.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.within_band as f64 / self.predictions as f64
        }
    }

    /// Fraction of significant overpredictions (would gate stalls that are
    /// too short — energy loss).
    pub fn over_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.overpredictions as f64 / self.predictions as f64
        }
    }

    /// Fraction of significant underpredictions (would wake too early or
    /// skip good stalls — opportunity loss).
    pub fn under_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.underpredictions as f64 / self.predictions as f64
        }
    }

    /// Mean absolute error in cycles.
    pub fn mean_abs_error(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.abs_error_sum as f64 / self.predictions as f64
        }
    }
}

impl Default for PredictorScore {
    fn default() -> Self {
        PredictorScore::new()
    }
}

impl fmt::Display for PredictorScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} preds, {:.1}% within 25%, MAE {:.0} cyc",
            self.predictions,
            self.accuracy() * 100.0,
            self.mean_abs_error()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapg_cpu::{CoreId, StallCause};
    use mapg_units::Cycle;

    fn info(pc: u64, duration: u64) -> StallInfo {
        StallInfo {
            core: CoreId(0),
            start: Cycle::new(1000),
            data_ready: Cycle::new(1000 + duration),
            pc,
            outstanding: 1,
            cause: StallCause::Dependency,
        }
    }

    #[test]
    fn static_predictor_never_moves() {
        let mut p = StaticPredictor::new(Cycles::new(150));
        let i = info(0x400, 500);
        assert_eq!(p.predict(&i), Cycles::new(150));
        p.observe(&i, Cycles::new(500));
        assert_eq!(p.predict(&i), Cycles::new(150));
        assert_eq!(p.name(), "static");
    }

    #[test]
    fn last_value_tracks_previous() {
        let mut p = LastValuePredictor::new(Cycles::new(100));
        let i = info(0x400, 300);
        assert_eq!(p.predict(&i), Cycles::new(100));
        p.observe(&i, Cycles::new(300));
        assert_eq!(p.predict(&i), Cycles::new(300));
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut p = EwmaPredictor::new(Cycles::new(100), 4);
        let i = info(0x400, 400);
        for _ in 0..100 {
            p.observe(&i, Cycles::new(400));
        }
        let predicted = p.predict(&i).raw();
        assert!(
            predicted.abs_diff(400) <= 2,
            "EWMA should converge, got {predicted}"
        );
    }

    #[test]
    fn ewma_is_smoother_than_last_value() {
        let mut ewma = EwmaPredictor::new(Cycles::new(200), 2);
        let i = info(0x400, 0);
        // One outlier among steady 200s.
        for _ in 0..20 {
            ewma.observe(&i, Cycles::new(200));
        }
        ewma.observe(&i, Cycles::new(2000));
        let after_outlier = ewma.predict(&i).raw();
        assert!(
            after_outlier < 500,
            "one outlier shouldn't dominate: {after_outlier}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha_x16")]
    fn ewma_rejects_bad_alpha() {
        let _ = EwmaPredictor::new(Cycles::new(10), 0);
    }

    #[test]
    fn history_table_separates_pcs() {
        let mut p = HistoryTablePredictor::new(Cycles::new(200), 8, 16);
        let fast = info(0x100, 0);
        let slow = info(0x200, 0);
        for _ in 0..50 {
            p.observe(&fast, Cycles::new(80));
            p.observe(&slow, Cycles::new(600));
        }
        let fast_pred = p.predict(&fast).raw();
        let slow_pred = p.predict(&slow).raw();
        assert!(fast_pred < 150, "fast PC learned {fast_pred}");
        assert!(slow_pred > 400, "slow PC learned {slow_pred}");
        assert_eq!(p.entries(), 2);
    }

    #[test]
    fn history_table_caps_capacity() {
        let mut p = HistoryTablePredictor::new(Cycles::new(200), 8, 4);
        for pc in 0..100u64 {
            p.observe(&info(pc, 0), Cycles::new(100));
        }
        assert_eq!(p.entries(), 4);
        // Untracked PCs fall back to the default.
        assert_eq!(p.predict(&info(99, 0)), Cycles::new(200));
    }

    #[test]
    fn oracle_reads_the_future() {
        let mut p = OraclePredictor;
        assert_eq!(p.predict(&info(0x1, 432)), Cycles::new(432));
    }

    #[test]
    fn score_classifies_errors() {
        let mut score = PredictorScore::new();
        score.record(Cycles::new(100), Cycles::new(100)); // exact
        score.record(Cycles::new(110), Cycles::new(100)); // within 25%
        score.record(Cycles::new(300), Cycles::new(100)); // over
        score.record(Cycles::new(10), Cycles::new(100)); // under
        assert_eq!(score.predictions(), 4);
        assert!((score.accuracy() - 0.5).abs() < 1e-12);
        assert!((score.over_rate() - 0.25).abs() < 1e-12);
        assert!((score.under_rate() - 0.25).abs() < 1e-12);
        assert!(score.mean_abs_error() > 0.0);
        assert!(score.to_string().contains("4 preds"));
    }

    #[test]
    fn empty_score_is_benign() {
        let score = PredictorScore::new();
        assert_eq!(score.accuracy(), 0.0);
        assert_eq!(score.over_rate(), 0.0);
        assert_eq!(score.under_rate(), 0.0);
        assert_eq!(score.mean_abs_error(), 0.0);
    }
}
