//! Deterministic differential fuzzing and crash-repro primitives.
//!
//! The fuzzer generates seeded full-system scenarios ([`Scenario`]),
//! runs each through the live event-wheel stack *and* the frozen
//! reference stack ([`run_scenario`]), and classifies any disagreement —
//! report mismatch, broken invariant, non-reconciling ledger,
//! trace/metrics asymmetry, or outright panic — as a typed [`Finding`].
//! Findings are [shrunk](shrink) to minimal scenarios and written as
//! self-contained JSON [repro files](ReproFile) that `mapgsim --repro`
//! and committed regression tests replay bit-for-bit.
//!
//! The campaign driver (scheduling, artifact directories, CLI) lives in
//! the `mapg-bench` crate's `mapg-fuzz` binary; this module holds
//! everything replay needs, so a repro file round-trips with no
//! dependency on the bench crate.

mod differ;
mod json;
mod repro;
mod scenario;
mod shrink;

pub use differ::{check_reconciliation, run_scenario, Finding, FindingClass};
pub use json::{parse as parse_json, write as write_json, JsonParseError, JsonValue};
pub use repro::{ReproFile, REPRO_SCHEMA};
pub use scenario::{PhaseSpec, ProfileSpec, Scenario, SplitMix64};
pub use shrink::{shrink, ShrinkOutcome};
