//! Seeded, deterministic fault injection for the gating stack.
//!
//! A [`FaultPlan`] describes environmental misbehaviour the controller must
//! survive: DRAM latency spikes, sleep transistors that wake slower than
//! their design point, wake-token grants that are dropped or arrive late,
//! corrupted predictor training samples, and supply brownouts that veto
//! concurrent wake-ups.
//!
//! Determinism contract: all controller-side fault draws come from a
//! [`StdRng`] stream seeded from `(simulation seed, site tag)`, and the
//! cluster steps cores in a deterministic global time order, so identical
//! `(seed, config, plan)` produce bit-identical runs. DRAM-side spikes use
//! stateless per-(bank, window) hashing — see
//! [`mapg_mem::DramFaultConfig`] — and are therefore order-independent as
//! well. When the plan is a no-op the injector is never constructed and no
//! RNG is drawn, so fault-free runs are bit-identical to runs of builds
//! without fault support.

use mapg_mem::DramFaultConfig;
use mapg_units::Cycles;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::MapgError;

use core::fmt;

/// Domain-separation tag for the controller fault stream, so fault draws
/// never alias the workload-generation streams (which use `seed + core`).
const FAULT_STREAM_TAG: u64 = 0xFA17_0CAF_E0DD_5EED;

/// A deterministic fault-injection schedule (all faults off by default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a wake ramp is "stuck slow" (marginal sleep switch).
    pub slow_wake_prob: f64,
    /// Wake-latency multiplier applied to a stuck-slow ramp (≥ 1).
    pub slow_wake_factor: f64,
    /// Probability a granted wake token is dropped in flight, forcing the
    /// core to re-request after [`FaultPlan::token_retry_cycles`].
    pub token_drop_prob: f64,
    /// Re-request latency after a dropped token grant.
    pub token_retry_cycles: Cycles,
    /// Probability a predictor training sample is corrupted.
    pub predictor_corrupt_prob: f64,
    /// Probability a gated stall triggers a rush-current brownout event,
    /// vetoing wake-ups for [`FaultPlan::brownout_hold_cycles`].
    pub brownout_prob: f64,
    /// Length of the wake-veto window a brownout opens.
    pub brownout_hold_cycles: Cycles,
    /// Probability a (DRAM bank, time window) pair is latency-spiking.
    pub dram_spike_prob: f64,
    /// Extra DRAM array latency inside a spiking window.
    pub dram_spike_cycles: Cycles,
    /// Width of the DRAM spike-decision window, in cycles.
    pub dram_window_cycles: u64,
}

impl FaultPlan {
    /// No faults (the default).
    pub fn none() -> Self {
        FaultPlan {
            slow_wake_prob: 0.0,
            slow_wake_factor: 1.0,
            token_drop_prob: 0.0,
            token_retry_cycles: Cycles::new(200),
            predictor_corrupt_prob: 0.0,
            brownout_prob: 0.0,
            brownout_hold_cycles: Cycles::new(2_000),
            dram_spike_prob: 0.0,
            dram_spike_cycles: Cycles::new(400),
            dram_window_cycles: 10_000,
        }
    }

    /// A moderate schedule: frequent enough to exercise every fault path
    /// on a memory-bound run, mild enough that gating can still win.
    pub fn moderate() -> Self {
        FaultPlan {
            slow_wake_prob: 0.25,
            slow_wake_factor: 8.0,
            token_drop_prob: 0.25,
            predictor_corrupt_prob: 0.20,
            brownout_prob: 0.05,
            dram_spike_prob: 0.20,
            ..FaultPlan::none()
        }
    }

    /// A light schedule: a quarter of [`FaultPlan::moderate`]'s rates.
    pub fn light() -> Self {
        FaultPlan::moderate().with_intensity(0.25)
    }

    /// A heavy schedule: double [`FaultPlan::moderate`]'s rates.
    pub fn heavy() -> Self {
        FaultPlan::moderate().with_intensity(2.0)
    }

    /// Scales every fault *probability* by `intensity` (clamped to 1.0);
    /// magnitudes (factors, hold times, spike widths) are unchanged.
    /// `plan.with_intensity(0.0)` is a no-op plan.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is negative or not finite.
    pub fn with_intensity(mut self, intensity: f64) -> Self {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "fault intensity must be finite and non-negative, got {intensity}"
        );
        let scale = |p: f64| (p * intensity).min(1.0);
        self.slow_wake_prob = scale(self.slow_wake_prob);
        self.token_drop_prob = scale(self.token_drop_prob);
        self.predictor_corrupt_prob = scale(self.predictor_corrupt_prob);
        self.brownout_prob = scale(self.brownout_prob);
        self.dram_spike_prob = scale(self.dram_spike_prob);
        self
    }

    /// Parses a CLI fault-plan specification: one of the preset names
    /// `none` / `light` / `moderate` / `heavy`, or a non-negative number
    /// used as an intensity multiplier on the moderate plan (`0.5` = half
    /// of moderate's rates).
    pub fn from_spec(spec: &str) -> Result<Self, MapgError> {
        match spec {
            "none" | "off" => return Ok(FaultPlan::none()),
            "light" => return Ok(FaultPlan::light()),
            "moderate" => return Ok(FaultPlan::moderate()),
            "heavy" => return Ok(FaultPlan::heavy()),
            _ => {}
        }
        match spec.parse::<f64>() {
            Ok(intensity) if intensity.is_finite() && intensity >= 0.0 => {
                Ok(FaultPlan::moderate().with_intensity(intensity))
            }
            _ => Err(MapgError::UnknownName {
                kind: "fault plan",
                name: spec.to_owned(),
            }),
        }
    }

    /// True when this plan can never inject a fault. No-op plans skip the
    /// entire injection path, keeping fault-free runs bit-identical.
    pub fn is_nop(&self) -> bool {
        self.controller_faults_are_nop() && self.dram_faults_are_nop()
    }

    fn controller_faults_are_nop(&self) -> bool {
        (self.slow_wake_prob <= 0.0 || self.slow_wake_factor <= 1.0)
            && (self.token_drop_prob <= 0.0 || self.token_retry_cycles == Cycles::ZERO)
            && self.predictor_corrupt_prob <= 0.0
            && (self.brownout_prob <= 0.0 || self.brownout_hold_cycles == Cycles::ZERO)
    }

    fn dram_faults_are_nop(&self) -> bool {
        self.dram_spike_prob <= 0.0 || self.dram_spike_cycles == Cycles::ZERO
    }

    /// Checks every field is in range.
    pub fn validate(&self) -> Result<(), MapgError> {
        let prob = |name: &str, p: f64| -> Result<(), MapgError> {
            if p.is_finite() && (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(MapgError::invalid(format!(
                    "{name} probability must be in [0, 1], got {p}"
                )))
            }
        };
        prob("slow-wake", self.slow_wake_prob)?;
        prob("token-drop", self.token_drop_prob)?;
        prob("predictor-corruption", self.predictor_corrupt_prob)?;
        prob("brownout", self.brownout_prob)?;
        prob("DRAM-spike", self.dram_spike_prob)?;
        if !self.slow_wake_factor.is_finite() || self.slow_wake_factor < 1.0 {
            return Err(MapgError::invalid(format!(
                "slow-wake factor must be ≥ 1, got {}",
                self.slow_wake_factor
            )));
        }
        if !self.dram_faults_are_nop() && self.dram_window_cycles == 0 {
            return Err(MapgError::invalid("DRAM fault window must be non-zero"));
        }
        Ok(())
    }

    /// The DRAM-side slice of this plan, keyed to the simulation seed.
    pub fn dram_faults(&self, seed: u64) -> DramFaultConfig {
        DramFaultConfig {
            spike_prob: self.dram_spike_prob,
            spike_cycles: self.dram_spike_cycles,
            window_cycles: self.dram_window_cycles,
            seed,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nop() {
            return f.write_str("none");
        }
        write!(
            f,
            "slow-wake {:.0}%×{:.0}, token-drop {:.0}%, corrupt {:.0}%, \
             brownout {:.0}%, dram-spike {:.0}%",
            self.slow_wake_prob * 100.0,
            self.slow_wake_factor,
            self.token_drop_prob * 100.0,
            self.predictor_corrupt_prob * 100.0,
            self.brownout_prob * 100.0,
            self.dram_spike_prob * 100.0,
        )
    }
}

/// Counts of faults actually injected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Wake ramps inflated by the stuck-slow fault.
    pub slow_wakes: u64,
    /// Token grants dropped in flight.
    pub dropped_grants: u64,
    /// Predictor training samples corrupted.
    pub corrupted_observations: u64,
    /// Brownout events raised.
    pub brownouts: u64,
    /// Wake-ups delayed by an open brownout veto window.
    pub brownout_delayed_wakes: u64,
}

impl FaultStats {
    /// Total controller-side fault events (DRAM spikes are counted by the
    /// memory hierarchy, in `DramStats::fault_spikes`).
    pub fn total(&self) -> u64 {
        self.slow_wakes + self.dropped_grants + self.corrupted_observations + self.brownouts
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} slow wakes, {} dropped grants, {} corrupt samples, {} brownouts",
            self.slow_wakes, self.dropped_grants, self.corrupted_observations, self.brownouts
        )
    }
}

/// Draws controller-side faults from a dedicated seeded stream.
///
/// Constructed only for non-no-op plans; the controller's hot path never
/// touches an RNG when faults are off.
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector {
            plan,
            rng: StdRng::seed_from_u64(seed ^ FAULT_STREAM_TAG),
            stats: FaultStats::default(),
        }
    }

    pub(crate) fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Possibly inflates one wake ramp (stuck-slow sleep switch).
    pub(crate) fn wake_latency(&mut self, nominal: Cycles) -> Cycles {
        if self.plan.slow_wake_prob > 0.0 && self.rng.gen_bool(self.plan.slow_wake_prob) {
            self.stats.slow_wakes += 1;
            nominal.scale(self.plan.slow_wake_factor)
        } else {
            nominal
        }
    }

    /// Whether this token grant is dropped in flight.
    pub(crate) fn drop_token_grant(&mut self) -> bool {
        let dropped =
            self.plan.token_drop_prob > 0.0 && self.rng.gen_bool(self.plan.token_drop_prob);
        if dropped {
            self.stats.dropped_grants += 1;
        }
        dropped
    }

    pub(crate) fn token_retry(&self) -> Cycles {
        self.plan.token_retry_cycles
    }

    /// Possibly corrupts one predictor training sample. Corruption flips
    /// the observed latency by a random factor in [1/8, 8] — large enough
    /// to poison history-based predictors in either direction.
    pub(crate) fn observed_latency(&mut self, actual: Cycles) -> Cycles {
        if self.plan.predictor_corrupt_prob > 0.0
            && self.rng.gen_bool(self.plan.predictor_corrupt_prob)
        {
            self.stats.corrupted_observations += 1;
            let factor = if self.rng.gen_bool(0.5) {
                self.rng.gen_range(2.0..8.0)
            } else {
                self.rng.gen_range(0.125..0.5)
            };
            actual.scale(factor).max(Cycles::new(1))
        } else {
            actual
        }
    }

    /// Whether this gated stall raises a brownout event; returns the veto
    /// window length when it does.
    pub(crate) fn brownout(&mut self) -> Option<Cycles> {
        if self.plan.brownout_prob > 0.0 && self.rng.gen_bool(self.plan.brownout_prob) {
            self.stats.brownouts += 1;
            Some(self.plan.brownout_hold_cycles)
        } else {
            None
        }
    }

    pub(crate) fn note_brownout_delay(&mut self) {
        self.stats.brownout_delayed_wakes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_nop_and_presets_are_not() {
        assert!(FaultPlan::none().is_nop());
        assert!(FaultPlan::default().is_nop());
        assert!(!FaultPlan::light().is_nop());
        assert!(!FaultPlan::moderate().is_nop());
        assert!(!FaultPlan::heavy().is_nop());
        assert!(FaultPlan::moderate().with_intensity(0.0).is_nop());
    }

    #[test]
    fn intensity_scales_probabilities_and_clamps() {
        let m = FaultPlan::moderate();
        let half = m.with_intensity(0.5);
        assert!((half.slow_wake_prob - m.slow_wake_prob * 0.5).abs() < 1e-12);
        assert_eq!(half.slow_wake_factor, m.slow_wake_factor);
        let huge = m.with_intensity(100.0);
        assert_eq!(huge.slow_wake_prob, 1.0);
        assert!(huge.validate().is_ok());
    }

    #[test]
    fn spec_parsing() {
        assert!(FaultPlan::from_spec("none").unwrap().is_nop());
        assert_eq!(
            FaultPlan::from_spec("moderate").unwrap(),
            FaultPlan::moderate()
        );
        assert_eq!(
            FaultPlan::from_spec("0.5").unwrap(),
            FaultPlan::moderate().with_intensity(0.5)
        );
        assert!(FaultPlan::from_spec("bogus").is_err());
        assert!(FaultPlan::from_spec("-1").is_err());
        assert!(FaultPlan::from_spec("inf").is_err());
    }

    #[test]
    fn validate_catches_out_of_range() {
        let mut plan = FaultPlan::moderate();
        plan.slow_wake_factor = 0.5;
        assert!(plan.validate().is_err());
        let mut plan = FaultPlan::moderate();
        plan.brownout_prob = 2.0;
        assert!(plan.validate().is_err());
        assert!(FaultPlan::heavy().validate().is_ok());
    }

    #[test]
    fn injector_streams_are_deterministic() {
        let run = || {
            let mut injector = FaultInjector::new(FaultPlan::moderate(), 42);
            let latencies: Vec<u64> = (0..64)
                .map(|_| injector.wake_latency(Cycles::new(20)).raw())
                .collect();
            let drops: Vec<bool> = (0..64).map(|_| injector.drop_token_grant()).collect();
            (latencies, drops, injector.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn injector_rates_track_plan() {
        let mut injector = FaultInjector::new(FaultPlan::moderate(), 7);
        for _ in 0..2_000 {
            injector.wake_latency(Cycles::new(20));
            injector.observed_latency(Cycles::new(300));
            injector.brownout();
        }
        let stats = injector.stats();
        let rate = stats.slow_wakes as f64 / 2_000.0;
        assert!((rate - 0.25).abs() < 0.05, "slow-wake rate {rate}");
        assert!(stats.corrupted_observations > 0);
        assert!(stats.brownouts > 0);
        assert!(stats.total() > 0);
        assert!(stats.to_string().contains("slow wakes"));
    }

    #[test]
    fn corrupted_observation_never_zero() {
        let mut injector = FaultInjector::new(
            FaultPlan {
                predictor_corrupt_prob: 1.0,
                ..FaultPlan::none()
            },
            1,
        );
        for _ in 0..100 {
            assert!(injector.observed_latency(Cycles::new(1)) >= Cycles::new(1));
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(FaultPlan::none().to_string(), "none");
        assert!(FaultPlan::moderate().to_string().contains("slow-wake"));
    }
}
