//! `mapgsim` — run one MAPG simulation from the command line.
//!
//! ```bash
//! mapgsim --workload mcf_like --policy mapg --instructions 1000000
//! mapgsim --workload mem_bound --policy mapg --compare   # vs no-gating
//! mapgsim --workload mem_bound --fault-plan moderate --safe-mode
//! mapgsim --repro fuzz-artifacts/repro-00017.json   # replay a fuzz finding
//! mapgsim --list-workloads
//! mapgsim --list-policies
//! ```

use std::fmt::Display;
use std::path::Path;
use std::process::ExitCode;
use std::str::FromStr;
use std::time::Duration;

use mapg::fuzz::ReproFile;
use mapg::{FaultPlan, PolicyKind, PredictorKind, SimConfig, Simulation};
use mapg_pool::{JobOutcome, Supervisor};
use mapg_trace::{WorkloadProfile, WorkloadSuite};

const POLICIES: [(&str, PolicyKind); 11] = [
    ("no-gating", PolicyKind::NoGating),
    ("clock-gating", PolicyKind::ClockGating),
    ("dvfs-stall", PolicyKind::DvfsStall),
    ("naive-on-miss", PolicyKind::NaiveOnMiss),
    ("timeout", PolicyKind::Timeout { idle_cycles: 100 }),
    ("mapg", PolicyKind::Mapg),
    ("mapg-oracle", PolicyKind::MapgOracle),
    ("mapg-always-gate", PolicyKind::MapgAlwaysGate),
    ("mapg-no-early-wake", PolicyKind::MapgNoEarlyWake),
    (
        "mapg+ewma",
        PolicyKind::MapgWith {
            predictor: PredictorKind::Ewma,
        },
    ),
    (
        "mapg+last-value",
        PolicyKind::MapgWith {
            predictor: PredictorKind::LastValue,
        },
    ),
];

fn find_workload(name: &str) -> Option<WorkloadProfile> {
    match name {
        "mem_bound" => return Some(WorkloadProfile::mem_bound(name)),
        "compute_bound" => return Some(WorkloadProfile::compute_bound(name)),
        "mixed" => return Some(WorkloadProfile::mixed(name)),
        _ => {}
    }
    WorkloadSuite::spec_like().get(name).cloned()
}

fn usage() {
    println!(
        "usage: mapgsim [OPTIONS]\n\
         \n\
         options:\n\
         \x20 --workload NAME      suite profile or mem_bound|compute_bound|mixed (default mem_bound)\n\
         \x20 --policy NAME        gating policy (default mapg; see --list-policies)\n\
         \x20 --instructions N     per-core instruction budget (default 1000000)\n\
         \x20 --cores N            core count (default 1)\n\
         \x20 --channels N         independent memory channels; core i maps to\n\
         \x20                      channel i mod N (default 1, one shared\n\
         \x20                      hierarchy — the classic contended topology)\n\
         \x20 --shards N           after the run, crosscheck the passive memory\n\
         \x20                      substrate on N shard wheels against the single\n\
         \x20                      global wheel and fail on any divergence\n\
         \x20                      (default 1 = skip). Shards never change any\n\
         \x20                      reported number; they only bound how many\n\
         \x20                      channel wheels may advance concurrently, and\n\
         \x20                      the worker threads underneath come from the\n\
         \x20                      pool's default job count (available\n\
         \x20                      parallelism; the experiments binary's --jobs\n\
         \x20                      flag pins the same knob), so the effective\n\
         \x20                      concurrency is min(shards, channels, jobs)\n\
         \x20 --seed N             RNG seed (default 42)\n\
         \x20 --tokens N           wake-token budget (default unlimited)\n\
         \x20 --switch-width PCT   sleep-switch width ratio in percent (default 3.0)\n\
         \x20 --mshr-entries N     LLC MSHR entries, bounds miss parallelism (default 16)\n\
         \x20 --dram-banks N       independently schedulable DRAM banks (default 8)\n\
         \x20 --fault-plan SPEC    inject faults: none|light|moderate|heavy or an\n\
         \x20                      intensity multiplier on moderate (e.g. 0.5)\n\
         \x20 --safe-mode          arm the safe-mode watchdog (degrades to clock\n\
         \x20                      gating when wake-ups misbehave)\n\
         \x20 --compare            also run the no-gating baseline and print deltas\n\
         \x20 --trace PATH         write a Chrome trace_event JSON (Perfetto-loadable)\n\
         \x20                      of the run's power-gating events\n\
         \x20 --metrics PATH       write the run's counters and histograms as JSON\n\
         \x20 --deadline-ms N      run under supervision with a wall-clock deadline;\n\
         \x20                      an overrunning simulation is abandoned and the\n\
         \x20                      exit is nonzero instead of hanging forever\n\
         \x20 --repro FILE         replay a fuzz repro file through the live and\n\
         \x20                      reference stacks; exits nonzero if it still\n\
         \x20                      diverges (conflicts with every run-shaping flag)\n\
         \x20 --list-workloads     print available workload names\n\
         \x20 --list-policies     print available policy names"
    );
}

/// Parses `--flag VALUE`, with an explicit message for a missing value and
/// for a malformed one (the raw text is echoed back, never swallowed).
fn parse_value<T: FromStr>(flag: &str, what: &str, value: Option<&String>) -> Result<T, String>
where
    T::Err: Display,
{
    let raw = value.ok_or_else(|| format!("{flag} needs a {what}"))?;
    raw.parse()
        .map_err(|e| format!("invalid {what} for {flag}: '{raw}' ({e})"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut workload = String::from("mem_bound");
    let mut policy_name = String::from("mapg");
    let mut instructions: u64 = 1_000_000;
    let mut cores: usize = 1;
    let mut channels: usize = 1;
    let mut shards: usize = 1;
    let mut seed: u64 = 42;
    let mut tokens: Option<usize> = None;
    let mut switch_width_pct: f64 = 3.0;
    let mut fault_plan = FaultPlan::none();
    let mut mshr_entries: Option<usize> = None;
    let mut dram_banks: Option<u32> = None;
    let mut safe_mode = false;
    let mut compare = false;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut repro_path: Option<String> = None;
    // Flags that shape a run, recorded when explicitly given: `--repro`
    // replays a self-contained scenario, so combining it with any of them
    // is a contradiction worth rejecting rather than silently ignoring.
    let mut run_flags: Vec<String> = Vec::new();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if matches!(
            arg.as_str(),
            "--workload"
                | "--policy"
                | "--instructions"
                | "--cores"
                | "--channels"
                | "--shards"
                | "--seed"
                | "--tokens"
                | "--switch-width"
                | "--mshr-entries"
                | "--dram-banks"
                | "--fault-plan"
                | "--safe-mode"
                | "--compare"
                | "--trace"
                | "--metrics"
                | "--deadline-ms"
        ) {
            run_flags.push(arg.clone());
        }
        match arg.as_str() {
            "--help" | "-h" => {
                usage();
                return Ok(ExitCode::SUCCESS);
            }
            "--list-workloads" => {
                for profile in WorkloadSuite::spec_like().iter() {
                    println!("{}", profile.name());
                }
                println!("mem_bound\ncompute_bound\nmixed");
                return Ok(ExitCode::SUCCESS);
            }
            "--list-policies" => {
                for (name, _) in POLICIES {
                    println!("{name}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--workload" => {
                workload = parse_value(arg, "name", iter.next())?;
            }
            "--policy" => {
                policy_name = parse_value(arg, "name", iter.next())?;
            }
            "--instructions" => {
                instructions = parse_value(arg, "count", iter.next())?;
            }
            "--cores" => {
                cores = parse_value(arg, "count", iter.next())?;
            }
            "--channels" => {
                channels = parse_value(arg, "count", iter.next())?;
            }
            "--shards" => {
                shards = parse_value(arg, "count", iter.next())?;
            }
            "--seed" => {
                seed = parse_value(arg, "seed", iter.next())?;
            }
            "--tokens" => {
                tokens = Some(parse_value(arg, "count", iter.next())?);
            }
            "--switch-width" => {
                switch_width_pct = parse_value(arg, "percent", iter.next())?;
            }
            "--mshr-entries" => {
                mshr_entries = Some(parse_value(arg, "count", iter.next())?);
            }
            "--dram-banks" => {
                dram_banks = Some(parse_value(arg, "count", iter.next())?);
            }
            "--fault-plan" => {
                let spec: String = parse_value(arg, "spec", iter.next())?;
                fault_plan = FaultPlan::from_spec(&spec)
                    .map_err(|e| format!("{e} (try none|light|moderate|heavy or a number)"))?;
            }
            "--safe-mode" => safe_mode = true,
            "--compare" => compare = true,
            "--trace" => {
                trace_path = Some(parse_value(arg, "path", iter.next())?);
            }
            "--metrics" => {
                metrics_path = Some(parse_value(arg, "path", iter.next())?);
            }
            "--deadline-ms" => {
                let ms: u64 = parse_value(arg, "count", iter.next())?;
                if ms == 0 {
                    return Err("--deadline-ms needs a count >= 1".to_owned());
                }
                deadline_ms = Some(ms);
            }
            "--repro" => {
                repro_path = Some(parse_value(arg, "path", iter.next())?);
            }
            other => {
                return Err(format!("unknown option '{other}' (try --help)"));
            }
        }
    }

    if let Some(path) = &repro_path {
        if !run_flags.is_empty() {
            return Err(format!(
                "--repro replays a self-contained recorded scenario; drop {}",
                run_flags.join(", ")
            ));
        }
        return replay_repro(path);
    }

    if compare && (trace_path.is_some() || metrics_path.is_some()) {
        return Err(
            "--trace/--metrics capture exactly one run; drop --compare or the capture flags"
                .to_owned(),
        );
    }

    if shards > cores {
        eprintln!(
            "warning: --shards {shards} exceeds --cores {cores}; at most \
             min(cores, channels) shard wheels can make progress"
        );
    }
    // Oversubscription is judged against the pool's *actual* worker count
    // (which honours `with_default_jobs` overrides and the MAPG_JOBS
    // budget), not the host's raw available_parallelism — the pool is
    // what the shard wheels run on. A parent scheduler (mapgd) hands
    // each child a slice of the host via MAPG_JOBS; naming the budget
    // source here keeps a "why is this serializing?" hunt short.
    let workers = mapg_pool::default_jobs();
    let budget = match mapg_pool::env_jobs() {
        Some(n) if n == workers => " (MAPG_JOBS budget)",
        _ => "",
    };
    let effective_shards = shards.min(channels).min(cores);
    if effective_shards > 1 && workers < effective_shards {
        eprintln!(
            "warning: {effective_shards} effective shard wheel(s) share {workers} pool \
             worker(s){budget}; shards beyond the worker count serialize (results stay \
             bit-identical)"
        );
    }
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if workers > host {
        eprintln!(
            "warning: worker budget {workers} exceeds the host's {host} hardware \
             thread(s); concurrent runs under one scheduler will oversubscribe the host"
        );
    }

    let profile = find_workload(&workload)
        .ok_or_else(|| format!("unknown workload '{workload}'; try --list-workloads"))?;
    let (_, policy) = POLICIES
        .into_iter()
        .find(|(name, _)| *name == policy_name)
        .ok_or_else(|| format!("unknown policy '{policy_name}'; try --list-policies"))?;

    let mut config = SimConfig::default()
        .with_profile(profile)
        .try_with_instructions(instructions)
        .map_err(|e| e.to_string())?
        .try_with_cores(cores)
        .map_err(|e| e.to_string())?
        .try_with_channels(channels)
        .map_err(|e| e.to_string())?
        .try_with_shards(shards)
        .map_err(|e| e.to_string())?
        .with_seed(seed)
        .try_with_switch_width(switch_width_pct / 100.0)
        .map_err(|e| e.to_string())?
        .try_with_fault_plan(fault_plan)
        .map_err(|e| e.to_string())?;
    if mshr_entries.is_some() || dram_banks.is_some() {
        let mut memory = mapg_mem::HierarchyConfig::baseline();
        if let Some(entries) = mshr_entries {
            memory.mshr_entries = entries;
        }
        if let Some(banks) = dram_banks {
            memory.dram.banks = banks;
        }
        // The hierarchy's own validation turns `--mshr-entries 0` and
        // friends into a usage-style diagnostic instead of a panic.
        config = config.try_with_memory(memory).map_err(|e| e.to_string())?;
    }
    if let Some(budget) = tokens {
        config = config.try_with_tokens(budget).map_err(|e| e.to_string())?;
    }
    if safe_mode {
        config = config.with_safe_mode_default();
    }
    if trace_path.is_some() {
        config = config.with_trace();
    }
    if metrics_path.is_some() {
        config = config.with_metrics();
    }

    // A plain run executes inline; with a deadline it routes through the
    // supervised engine, which abandons an overrunning simulation and
    // reports the overrun instead of hanging the invocation.
    let report = match deadline_ms {
        None => Simulation::new(config.clone(), policy)
            .try_run()
            .map_err(|e| e.to_string())?,
        Some(ms) => {
            let supervisor = Supervisor::new(1).with_deadline(Duration::from_millis(ms));
            let reports = supervisor
                .map_supervised(vec![(config.clone(), policy)], |(config, policy), _ctx| {
                    Simulation::new(config.clone(), *policy).try_run()
                });
            match reports.into_iter().next().expect("one job").outcome {
                JobOutcome::Ok(Ok(report)) => report,
                JobOutcome::Ok(Err(error)) => return Err(error.to_string()),
                outcome => {
                    return Err(format!(
                        "simulation {} (wall-clock deadline {ms} ms)",
                        outcome.label()
                    ))
                }
            }
        }
    };
    print!("{report}");

    if let Some(path) = &trace_path {
        let trace = report
            .trace
            .as_ref()
            .ok_or_else(|| "internal: report carries no trace despite --trace".to_owned())?;
        if trace.dropped() > 0 {
            eprintln!(
                "warning: trace ring wrapped; oldest {} event(s) dropped",
                trace.dropped()
            );
        }
        mapg::write_atomic(Path::new(path), trace.to_chrome_trace().as_bytes())
            .map_err(|e| format!("cannot write trace '{path}': {e}"))?;
        println!("trace written to {path} ({} events)", trace.len());
    }
    if let Some(path) = &metrics_path {
        let metrics = report
            .metrics
            .as_ref()
            .ok_or_else(|| "internal: report carries no metrics despite --metrics".to_owned())?;
        mapg::write_atomic(Path::new(path), metrics.to_json().as_bytes())
            .map_err(|e| format!("cannot write metrics '{path}': {e}"))?;
        println!("metrics written to {path}");
    }

    if shards > 1 {
        // The controller path is order-sensitive and always runs the
        // single global wheel, so sharding is validated on the passive
        // memory substrate: same topology, same fault plan, bit-compared
        // stats/trace/metrics between one wheel and `shards` wheels.
        match config.crosscheck_sharded().map_err(|e| e.to_string())? {
            None => println!(
                "sharded crosscheck  : {shards} shard(s) bit-identical to the single wheel"
            ),
            Some(detail) => {
                eprintln!("error: sharded crosscheck diverged: {detail}");
                return Ok(ExitCode::FAILURE);
            }
        }
    }

    if compare && policy != PolicyKind::NoGating {
        let baseline = Simulation::new(config, PolicyKind::NoGating)
            .try_run()
            .map_err(|e| e.to_string())?;
        println!("--- vs no-gating ---");
        println!(
            "core energy savings : {:+.1}%",
            report.core_energy_savings_vs(&baseline) * 100.0
        );
        println!(
            "leakage savings     : {:+.1}%",
            report.leakage_savings_vs(&baseline) * 100.0
        );
        println!(
            "runtime overhead    : {:+.2}%",
            report.perf_overhead_vs(&baseline) * 100.0
        );
        println!(
            "EDP delta           : {:+.1}%",
            report.edp_delta_vs(&baseline) * 100.0
        );
    }
    if !report.invariants.is_clean() {
        eprintln!("error: invariants broken: {}", report.invariants);
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// The `--repro` mode: replay a fuzz repro file through the differential
/// oracle (live vs reference stack plus reconciliation laws) and exit
/// nonzero when any divergence still reproduces.
fn replay_repro(path: &str) -> Result<ExitCode, String> {
    const REPRO_USAGE: &str =
        "usage: mapgsim --repro FILE  (FILE is a repro JSON written by `mapg-fuzz --out DIR`)";
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("--repro: cannot read '{path}': {e}\n{REPRO_USAGE}"))?;
    let repro = ReproFile::from_json_text(&text)
        .map_err(|e| format!("--repro: '{path}' is not a valid repro file: {e}\n{REPRO_USAGE}"))?;
    println!("repro      : {path}");
    if let (Some(seed), Some(index)) = (repro.campaign_seed, repro.scenario_index) {
        println!(
            "provenance : campaign seed {seed}, scenario {index}, {} shrink step(s)",
            repro.shrink_steps
        );
    }
    println!(
        "recorded   : {} — {}",
        repro.finding_class, repro.finding_detail
    );
    match repro.replay().map_err(|e| e.to_string())? {
        Some(finding) => {
            println!("replay     : {} — {}", finding.class, finding.detail);
            eprintln!("error: divergence still reproduces");
            Ok(ExitCode::FAILURE)
        }
        None => {
            println!("replay     : clean (both stacks agree, all laws hold)");
            Ok(ExitCode::SUCCESS)
        }
    }
}
