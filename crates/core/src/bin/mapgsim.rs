//! `mapgsim` — run one MAPG simulation from the command line.
//!
//! ```bash
//! mapgsim --workload mcf_like --policy mapg --instructions 1000000
//! mapgsim --workload mem_bound --policy mapg --compare   # vs no-gating
//! mapgsim --list-workloads
//! mapgsim --list-policies
//! ```

use std::process::ExitCode;

use mapg::{PolicyKind, PredictorKind, SimConfig, Simulation};
use mapg_trace::{WorkloadProfile, WorkloadSuite};

const POLICIES: [(&str, PolicyKind); 11] = [
    ("no-gating", PolicyKind::NoGating),
    ("clock-gating", PolicyKind::ClockGating),
    ("dvfs-stall", PolicyKind::DvfsStall),
    ("naive-on-miss", PolicyKind::NaiveOnMiss),
    ("timeout", PolicyKind::Timeout { idle_cycles: 100 }),
    ("mapg", PolicyKind::Mapg),
    ("mapg-oracle", PolicyKind::MapgOracle),
    ("mapg-always-gate", PolicyKind::MapgAlwaysGate),
    ("mapg-no-early-wake", PolicyKind::MapgNoEarlyWake),
    (
        "mapg+ewma",
        PolicyKind::MapgWith {
            predictor: PredictorKind::Ewma,
        },
    ),
    (
        "mapg+last-value",
        PolicyKind::MapgWith {
            predictor: PredictorKind::LastValue,
        },
    ),
];

fn find_workload(name: &str) -> Option<WorkloadProfile> {
    match name {
        "mem_bound" => return Some(WorkloadProfile::mem_bound(name)),
        "compute_bound" => return Some(WorkloadProfile::compute_bound(name)),
        "mixed" => return Some(WorkloadProfile::mixed(name)),
        _ => {}
    }
    WorkloadSuite::spec_like().get(name).cloned()
}

fn usage() {
    println!(
        "usage: mapgsim [OPTIONS]\n\
         \n\
         options:\n\
         \x20 --workload NAME      suite profile or mem_bound|compute_bound|mixed (default mem_bound)\n\
         \x20 --policy NAME        gating policy (default mapg; see --list-policies)\n\
         \x20 --instructions N     per-core instruction budget (default 1000000)\n\
         \x20 --cores N            core count (default 1)\n\
         \x20 --seed N             RNG seed (default 42)\n\
         \x20 --tokens N           wake-token budget (default unlimited)\n\
         \x20 --switch-width PCT   sleep-switch width ratio in percent (default 3.0)\n\
         \x20 --compare            also run the no-gating baseline and print deltas\n\
         \x20 --list-workloads     print available workload names\n\
         \x20 --list-policies      print available policy names"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = String::from("mem_bound");
    let mut policy_name = String::from("mapg");
    let mut instructions: u64 = 1_000_000;
    let mut cores: usize = 1;
    let mut seed: u64 = 42;
    let mut tokens: Option<usize> = None;
    let mut switch_width_pct: f64 = 3.0;
    let mut compare = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut take = |what: &str| -> Option<String> {
            let value = iter.next().cloned();
            if value.is_none() {
                eprintln!("{arg} needs a {what}");
            }
            value
        };
        match arg.as_str() {
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--list-workloads" => {
                for profile in WorkloadSuite::spec_like().iter() {
                    println!("{}", profile.name());
                }
                println!("mem_bound\ncompute_bound\nmixed");
                return ExitCode::SUCCESS;
            }
            "--list-policies" => {
                for (name, _) in POLICIES {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--workload" => match take("name") {
                Some(v) => workload = v,
                None => return ExitCode::FAILURE,
            },
            "--policy" => match take("name") {
                Some(v) => policy_name = v,
                None => return ExitCode::FAILURE,
            },
            "--instructions" => match take("count").and_then(|v| v.parse().ok()) {
                Some(v) => instructions = v,
                None => return ExitCode::FAILURE,
            },
            "--cores" => match take("count").and_then(|v| v.parse().ok()) {
                Some(v) => cores = v,
                None => return ExitCode::FAILURE,
            },
            "--seed" => match take("seed").and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return ExitCode::FAILURE,
            },
            "--tokens" => match take("count").and_then(|v| v.parse().ok()) {
                Some(v) => tokens = Some(v),
                None => return ExitCode::FAILURE,
            },
            "--switch-width" => {
                match take("percent").and_then(|v| v.parse().ok()) {
                    Some(v) => switch_width_pct = v,
                    None => return ExitCode::FAILURE,
                }
            }
            "--compare" => compare = true,
            other => {
                eprintln!("unknown option '{other}'");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let Some(profile) = find_workload(&workload) else {
        eprintln!("unknown workload '{workload}'; try --list-workloads");
        return ExitCode::FAILURE;
    };
    let Some((_, policy)) =
        POLICIES.into_iter().find(|(name, _)| *name == policy_name)
    else {
        eprintln!("unknown policy '{policy_name}'; try --list-policies");
        return ExitCode::FAILURE;
    };

    let mut config = SimConfig::default()
        .with_profile(profile)
        .with_instructions(instructions)
        .with_cores(cores)
        .with_seed(seed)
        .with_switch_width(switch_width_pct / 100.0);
    if let Some(budget) = tokens {
        config = config.with_tokens(budget);
    }

    let report = Simulation::new(config.clone(), policy).run();
    print!("{report}");

    if compare && policy != PolicyKind::NoGating {
        let baseline = Simulation::new(config, PolicyKind::NoGating).run();
        println!("--- vs no-gating ---");
        println!(
            "core energy savings : {:+.1}%",
            report.core_energy_savings_vs(&baseline) * 100.0
        );
        println!(
            "leakage savings     : {:+.1}%",
            report.leakage_savings_vs(&baseline) * 100.0
        );
        println!(
            "runtime overhead    : {:+.2}%",
            report.perf_overhead_vs(&baseline) * 100.0
        );
        println!(
            "EDP delta           : {:+.1}%",
            report.edp_delta_vs(&baseline) * 100.0
        );
    }
    ExitCode::SUCCESS
}
