//! Run reports: the measured outcome of one simulation.

use mapg_cpu::CoreStats;
use mapg_mem::HierarchyStats;
use mapg_obs::{MetricsRegistry, TraceBuffer};
use mapg_power::EnergyAccount;
use mapg_units::{Joules, Seconds};

use crate::controller::GatingStats;
use crate::faults::FaultStats;
use crate::invariants::InvariantReport;
use crate::predictor::PredictorScore;
use crate::timeline::Timeline;
use crate::watchdog::DegradationStats;

use core::fmt;

/// Everything measured in one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Policy name.
    pub policy: &'static str,
    /// Workload profile name.
    pub workload: String,
    /// Number of cores simulated.
    pub cores: usize,
    /// Total instructions retired across cores.
    pub instructions: u64,
    /// Slowest core's finishing cycle (the run's makespan).
    pub makespan_cycles: u64,
    /// Makespan in wall-clock time.
    pub runtime: Seconds,
    /// The complete energy ledger (core active + stall + DRAM).
    pub energy: EnergyAccount,
    /// Gating activity counters.
    pub gating: GatingStats,
    /// Per-core execution statistics.
    pub core_stats: Vec<CoreStats>,
    /// Shared-memory statistics.
    pub memory: HierarchyStats,
    /// Predictor accuracy, for predictive policies.
    pub predictor: Option<PredictorScore>,
    /// Peak simultaneous wake-ups observed (1-core runs report ≤ 1).
    pub peak_concurrent_wakes: usize,
    /// Runtime invariant-checking outcome (clean unless the controller's
    /// bookkeeping broke a conservation law during the run).
    pub invariants: InvariantReport,
    /// Safe-mode degradation statistics (all zero without a watchdog).
    pub degradation: DegradationStats,
    /// Controller-side fault-injection counts (all zero without a plan;
    /// DRAM spikes are in [`memory`](RunReport::memory)'s DRAM stats).
    pub faults: FaultStats,
    /// Power-state transition record, when requested via
    /// [`SimConfig::with_timeline`](crate::SimConfig::with_timeline).
    pub timeline: Option<Timeline>,
    /// Structured event trace, when requested via
    /// [`SimConfig::with_trace`](crate::SimConfig::with_trace). Per-core
    /// sleep spans in the trace reconcile exactly with
    /// [`gating`](RunReport::gating)'s `gated_cycles`.
    pub trace: Option<TraceBuffer>,
    /// Metrics-registry snapshot, when requested via
    /// [`SimConfig::with_metrics`](crate::SimConfig::with_metrics).
    pub metrics: Option<MetricsRegistry>,
}

impl RunReport {
    /// Total cycles of the run (makespan).
    pub fn total_cycles(&self) -> u64 {
        self.makespan_cycles
    }

    /// Total energy, core + DRAM.
    pub fn total_energy(&self) -> Joules {
        self.energy.total()
    }

    /// Core-only energy (the gateable part).
    pub fn core_energy(&self) -> Joules {
        self.energy.core_total()
    }

    /// Leakage-flavoured energy (active leakage + stall + residual).
    pub fn leakage_energy(&self) -> Joules {
        self.energy.leakage_like_total()
    }

    /// Energy-delay product over total energy (J·s).
    pub fn edp(&self) -> f64 {
        self.total_energy() * self.runtime
    }

    /// Energy-delay² product (J·s²).
    pub fn ed2p(&self) -> f64 {
        self.edp() * self.runtime.as_secs()
    }

    /// Aggregate instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.makespan_cycles as f64
        }
    }

    /// Memory-stall fraction, averaged over cores weighted by cycles.
    pub fn stall_fraction(&self) -> f64 {
        let total: u64 = self.core_stats.iter().map(|c| c.total_cycles).sum();
        let stalled: u64 = self.core_stats.iter().map(|c| c.stall_cycles).sum();
        if total == 0 {
            0.0
        } else {
            stalled as f64 / total as f64
        }
    }

    /// Core-energy savings relative to `baseline`, as a fraction
    /// (`0.18` = 18 % less core energy than the baseline run).
    pub fn core_energy_savings_vs(&self, baseline: &RunReport) -> f64 {
        1.0 - self.core_energy() / baseline.core_energy()
    }

    /// Total-energy savings relative to `baseline`.
    pub fn total_energy_savings_vs(&self, baseline: &RunReport) -> f64 {
        1.0 - self.total_energy() / baseline.total_energy()
    }

    /// Leakage-energy savings relative to `baseline`.
    pub fn leakage_savings_vs(&self, baseline: &RunReport) -> f64 {
        1.0 - self.leakage_energy() / baseline.leakage_energy()
    }

    /// Runtime overhead relative to `baseline` (`0.02` = 2 % slower).
    pub fn perf_overhead_vs(&self, baseline: &RunReport) -> f64 {
        self.makespan_cycles as f64 / baseline.makespan_cycles as f64 - 1.0
    }

    /// EDP change relative to `baseline` (negative = better).
    pub fn edp_delta_vs(&self, baseline: &RunReport) -> f64 {
        self.edp() / baseline.edp() - 1.0
    }

    /// The fraction of stall time that was spent collapsed.
    pub fn gated_stall_coverage(&self) -> f64 {
        let stalled: u64 = self.core_stats.iter().map(|c| c.stall_cycles).sum();
        if stalled == 0 {
            0.0
        } else {
            self.gating.gated_cycles as f64 / stalled as f64
        }
    }

    /// Average power over the run (total energy / runtime).
    pub fn average_power(&self) -> mapg_units::Watts {
        self.total_energy() / self.runtime
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{} / {}] {} cores, {} inst, {} cyc ({}), IPC {:.2}, stall {:.1}%",
            self.workload,
            self.policy,
            self.cores,
            self.instructions,
            self.makespan_cycles,
            self.runtime,
            self.ipc(),
            self.stall_fraction() * 100.0,
        )?;
        writeln!(
            f,
            "  energy: total {} core {} (leak-like {}), EDP {:.3e} J·s",
            self.total_energy(),
            self.core_energy(),
            self.leakage_energy(),
            self.edp(),
        )?;
        writeln!(f, "  gating: {}", self.gating)?;
        if let Some(score) = &self.predictor {
            writeln!(f, "  predictor: {score}")?;
        }
        if self.faults.total() > 0 {
            writeln!(f, "  faults: {}", self.faults)?;
        }
        if !self.degradation.is_empty() {
            writeln!(f, "  safe mode: {}", self.degradation)?;
        }
        if !self.invariants.is_clean() {
            writeln!(f, "  INVARIANTS BROKEN: {}", self.invariants)?;
        }
        Ok(())
    }
}

/// Geometric mean of a sequence of positive values; zero for an empty
/// sequence.
///
/// Headline policy comparisons report geomeans across the workload suite,
/// matching the original evaluation's convention.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geometric_mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        assert!(v > 0.0, "geometric mean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapg_mem::{HierarchyConfig, MemoryHierarchy};
    use mapg_power::EnergyCategory;

    fn dummy_report(energy_j: f64, cycles: u64) -> RunReport {
        let mut energy = EnergyAccount::new();
        energy.add(EnergyCategory::ActiveDynamic, Joules::new(energy_j * 0.6));
        energy.add(EnergyCategory::ActiveLeakage, Joules::new(energy_j * 0.4));
        RunReport {
            policy: "test",
            workload: "dummy".to_owned(),
            cores: 1,
            instructions: 1_000,
            makespan_cycles: cycles,
            runtime: Seconds::new(cycles as f64 / 2e9),
            energy,
            gating: GatingStats::default(),
            core_stats: Vec::new(),
            memory: MemoryHierarchy::new(HierarchyConfig::baseline()).stats(),
            predictor: None,
            peak_concurrent_wakes: 0,
            invariants: InvariantReport::default(),
            degradation: DegradationStats::default(),
            faults: FaultStats::default(),
            timeline: None,
            trace: None,
            metrics: None,
        }
    }

    #[test]
    fn savings_and_overhead_signs() {
        let baseline = dummy_report(10.0, 1000);
        let better = dummy_report(8.0, 1020);
        assert!((better.core_energy_savings_vs(&baseline) - 0.2).abs() < 1e-9);
        assert!((better.perf_overhead_vs(&baseline) - 0.02).abs() < 1e-9);
        assert!(better.edp_delta_vs(&baseline) < 0.0, "EDP should improve");
    }

    #[test]
    fn identical_reports_have_zero_deltas() {
        let a = dummy_report(5.0, 500);
        let b = dummy_report(5.0, 500);
        assert!(a.core_energy_savings_vs(&b).abs() < 1e-12);
        assert!(a.perf_overhead_vs(&b).abs() < 1e-12);
        assert!(a.edp_delta_vs(&b).abs() < 1e-12);
    }

    #[test]
    fn derived_metrics() {
        let r = dummy_report(4.0, 2000);
        assert!((r.ipc() - 0.5).abs() < 1e-12);
        assert!(r.edp() > 0.0);
        assert!(r.ed2p() < r.edp(), "runtime < 1 s shrinks ED²P");
        assert!(r.average_power().as_watts() > 0.0);
        assert_eq!(r.total_cycles(), 2000);
        assert_eq!(r.stall_fraction(), 0.0, "no core stats");
        assert_eq!(r.gated_stall_coverage(), 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(std::iter::empty::<f64>()), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geomean_rejects_nonpositive() {
        let _ = geometric_mean([1.0, 0.0]);
    }

    #[test]
    fn display_contains_key_lines() {
        let text = dummy_report(1.0, 100).to_string();
        assert!(text.contains("dummy"), "{text}");
        assert!(text.contains("energy:"), "{text}");
        assert!(text.contains("gating:"), "{text}");
    }
}
