//! Randomized-but-seeded full-system scenarios.
//!
//! A [`Scenario`] is a flat, serializable description of one simulation
//! run: cluster size, workload-profile knobs, memory/DRAM configuration,
//! circuit design point, policy, fault plan, watchdog, tokens, and the
//! observability settings the law checks need. `(campaign_seed, index)`
//! fully determine a scenario, and a scenario fully determines the run —
//! so every divergence the fuzzer finds can be written down and replayed
//! bit-for-bit.

use crate::error::MapgError;
use crate::faults::FaultPlan;
use crate::fuzz::json::{self, JsonValue};
use crate::policy::{PolicyKind, PredictorKind};
use crate::sim::SimConfig;
use crate::watchdog::WatchdogConfig;
use mapg_cpu::CoreConfig;
use mapg_mem::{DramConfig, HierarchyConfig, PagePolicy, PrefetchConfig};
use mapg_power::RetentionStyle;
use mapg_trace::{IdleInjection, PhaseSchedule, WorkloadProfile};
use mapg_units::Cycles;

/// A tiny deterministic PRNG (SplitMix64) for scenario generation.
///
/// Hand-rolled so generated scenarios are stable across toolchain and
/// dependency versions: a campaign seed printed in a CI log must map to
/// the same scenarios years later.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Which [`PhaseSchedule`] preset a profile uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseSpec {
    /// [`PhaseSchedule::mostly_memory`].
    MostlyMemory,
    /// [`PhaseSchedule::mostly_compute`].
    MostlyCompute,
    /// [`PhaseSchedule::alternating`].
    Alternating,
    /// Stationary memory-intensive.
    StationaryMemory,
    /// Stationary balanced.
    StationaryBalanced,
    /// Stationary compute-intensive.
    StationaryCompute,
}

impl PhaseSpec {
    const ALL: [PhaseSpec; 6] = [
        PhaseSpec::MostlyMemory,
        PhaseSpec::MostlyCompute,
        PhaseSpec::Alternating,
        PhaseSpec::StationaryMemory,
        PhaseSpec::StationaryBalanced,
        PhaseSpec::StationaryCompute,
    ];

    fn schedule(self) -> PhaseSchedule {
        use mapg_trace::Phase;
        match self {
            PhaseSpec::MostlyMemory => PhaseSchedule::mostly_memory(),
            PhaseSpec::MostlyCompute => PhaseSchedule::mostly_compute(),
            PhaseSpec::Alternating => PhaseSchedule::alternating(),
            PhaseSpec::StationaryMemory => PhaseSchedule::stationary(Phase::MemoryIntensive),
            PhaseSpec::StationaryBalanced => PhaseSchedule::stationary(Phase::Balanced),
            PhaseSpec::StationaryCompute => PhaseSchedule::stationary(Phase::ComputeIntensive),
        }
    }

    fn tag(self) -> &'static str {
        match self {
            PhaseSpec::MostlyMemory => "mostly-memory",
            PhaseSpec::MostlyCompute => "mostly-compute",
            PhaseSpec::Alternating => "alternating",
            PhaseSpec::StationaryMemory => "stationary-memory",
            PhaseSpec::StationaryBalanced => "stationary-balanced",
            PhaseSpec::StationaryCompute => "stationary-compute",
        }
    }

    fn from_tag(tag: &str) -> Option<PhaseSpec> {
        PhaseSpec::ALL.iter().copied().find(|p| p.tag() == tag)
    }
}

/// Workload-profile knobs (mirrors [`mapg_trace::ProfileBuilder`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpec {
    /// Memory references per kilo-instruction, `(0, 1000]`.
    pub mem_refs_per_kilo_inst: f64,
    /// Working-set size in bytes, at least one line.
    pub working_set_bytes: u64,
    /// Sequential-continuation probability, `[0, 1)`.
    pub spatial_locality: f64,
    /// Number of hot regions, non-zero.
    pub hot_regions: u32,
    /// Dependent-access fraction, `[0, 1]`.
    pub pointer_chase_fraction: f64,
    /// Store fraction, `[0, 1]`.
    pub write_fraction: f64,
    /// Compute issue rate, `(0, 8]`.
    pub compute_ipc: f64,
    /// Phase-schedule preset.
    pub phases: PhaseSpec,
    /// Optional long-idle injection `(mean_interval_instructions,
    /// duration_cycles)`, both non-zero.
    pub idle: Option<(u64, u64)>,
}

impl ProfileSpec {
    /// Builds the concrete workload profile.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] when a knob is outside the
    /// range `ProfileBuilder` accepts (possible for hand-edited files).
    pub fn build(&self, name: &str) -> Result<WorkloadProfile, MapgError> {
        let bad = |what: &str| Err(MapgError::invalid(format!("profile {what} out of range")));
        if !(self.mem_refs_per_kilo_inst > 0.0 && self.mem_refs_per_kilo_inst <= 1000.0) {
            return bad("mem_refs_per_kilo_inst");
        }
        if self.working_set_bytes < 64 {
            return bad("working_set_bytes");
        }
        if !(0.0..1.0).contains(&self.spatial_locality) {
            return bad("spatial_locality");
        }
        if self.hot_regions == 0 {
            return bad("hot_regions");
        }
        if !(0.0..=1.0).contains(&self.pointer_chase_fraction) {
            return bad("pointer_chase_fraction");
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return bad("write_fraction");
        }
        if !(self.compute_ipc > 0.0 && self.compute_ipc <= 8.0) {
            return bad("compute_ipc");
        }
        let mut builder = WorkloadProfile::builder(name)
            .mem_refs_per_kilo_inst(self.mem_refs_per_kilo_inst)
            .working_set_bytes(self.working_set_bytes)
            .spatial_locality(self.spatial_locality)
            .hot_regions(self.hot_regions)
            .pointer_chase_fraction(self.pointer_chase_fraction)
            .write_fraction(self.write_fraction)
            .compute_ipc(self.compute_ipc)
            .phases(self.phases.schedule());
        if let Some((interval, duration)) = self.idle {
            if interval == 0 || duration == 0 {
                return bad("idle_injection");
            }
            builder = builder.idle_injection(IdleInjection::new(interval, duration));
        }
        Ok(builder.build())
    }

    fn generate(rng: &mut SplitMix64) -> ProfileSpec {
        ProfileSpec {
            mem_refs_per_kilo_inst: *rng.pick(&[1.0, 5.0, 20.0, 70.0, 150.0, 400.0, 1000.0]),
            working_set_bytes: *rng.pick(&[
                64,
                4 << 10,
                32 << 10,
                256 << 10,
                2 << 20,
                16 << 20,
                128 << 20,
            ]),
            spatial_locality: *rng.pick(&[0.0, 0.3, 0.7, 0.9, 0.99]),
            hot_regions: rng.range(1, 16) as u32,
            pointer_chase_fraction: *rng.pick(&[0.0, 0.1, 0.5, 1.0]),
            write_fraction: *rng.pick(&[0.0, 0.3, 0.7, 1.0]),
            compute_ipc: *rng.pick(&[0.25, 1.0, 2.0, 4.0, 8.0]),
            phases: *rng.pick(&PhaseSpec::ALL),
            idle: if rng.chance(0.3) {
                Some((rng.range(100, 20_000), rng.range(100, 50_000)))
            } else {
                None
            },
        }
    }

    /// The neutral spec shrinking resets toward (the `mixed` preset shape).
    pub fn baseline() -> ProfileSpec {
        ProfileSpec {
            mem_refs_per_kilo_inst: 70.0,
            working_set_bytes: 16 << 20,
            spatial_locality: 0.7,
            hot_regions: 4,
            pointer_chase_fraction: 0.1,
            write_fraction: 0.3,
            compute_ipc: 2.0,
            phases: PhaseSpec::Alternating,
            idle: None,
        }
    }
}

/// One fully-specified fuzz scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Number of cores.
    pub cores: usize,
    /// Independent memory channels (topology; clamped to `cores`).
    pub channels: usize,
    /// Shard count for the sharded engine — must never change any
    /// result; the differ cross-checks sharded-vs-wheel substrate runs.
    pub shards: usize,
    /// Instructions each core retires.
    pub instructions: u64,
    /// Simulation master seed.
    pub sim_seed: u64,
    /// Gating policy under test.
    pub policy: PolicyKind,
    /// Workload-profile knobs (all cores run the same profile with
    /// per-core seeds, like the headline experiments).
    pub profile: ProfileSpec,
    /// When set, drive the run from quantized recordings (the throughput
    /// benchmark's replay path) instead of live generators.
    pub compute_quantum: Option<u64>,
    /// Token-limited wake-ups with this capacity, when set.
    pub tokens: Option<usize>,
    /// Safe-mode watchdog thresholds, when enabled.
    pub watchdog: Option<WatchdogConfig>,
    /// Fault-injection plan (a no-op plan disables injection).
    pub faults: FaultPlan,
    /// Sleep-transistor width ratio, `[0.005, 0.2]`.
    pub switch_width_ratio: f64,
    /// Non-retentive PG circuit (cold-start penalty on wake).
    pub non_retentive: bool,
    /// Core MLP bound.
    pub mlp_limit: usize,
    /// MSHR entries at the LLC.
    pub mshr_entries: usize,
    /// DRAM closed-page policy instead of open-page.
    pub closed_page: bool,
    /// Stream prefetcher enabled.
    pub stream_prefetch: bool,
    /// DRAM timing scale factor (1.0 = DDR3-1333 baseline).
    pub dram_latency_scale: f64,
    /// DRAM bank count.
    pub dram_banks: u32,
    /// Nap chaining (re-gate after early wake) enabled.
    pub regate: bool,
    /// Record the power-state timeline.
    pub timeline: bool,
    /// Trace ring capacity; small values exercise the drop path.
    pub trace_capacity: usize,
}

/// Policies the generator samples from (superset of the comparison set).
const POLICY_POOL: [PolicyKind; 13] = [
    PolicyKind::NoGating,
    PolicyKind::ClockGating,
    PolicyKind::DvfsStall,
    PolicyKind::NaiveOnMiss,
    PolicyKind::Timeout { idle_cycles: 20 },
    PolicyKind::Timeout { idle_cycles: 500 },
    PolicyKind::Mapg,
    PolicyKind::MapgOracle,
    PolicyKind::MapgAlwaysGate,
    PolicyKind::MapgNoEarlyWake,
    PolicyKind::MapgWith {
        predictor: PredictorKind::Static,
    },
    PolicyKind::MapgWith {
        predictor: PredictorKind::LastValue,
    },
    PolicyKind::MapgWith {
        predictor: PredictorKind::Ewma,
    },
];

impl Scenario {
    /// Deterministically generates scenario `index` of a campaign.
    pub fn generate(campaign_seed: u64, index: u64) -> Scenario {
        // Mix the index through one SplitMix64 step so consecutive indices
        // land in unrelated regions of the space.
        let mut rng = SplitMix64::new(campaign_seed ^ SplitMix64::new(index).next_u64());
        let cores = *rng.pick(&[1usize, 2, 3, 4, 8, 16]);
        let faults = if rng.chance(0.5) {
            FaultPlan::none()
        } else {
            FaultPlan {
                slow_wake_prob: *rng.pick(&[0.0, 0.05, 0.5, 1.0]),
                slow_wake_factor: *rng.pick(&[1.0, 4.0, 64.0]),
                token_drop_prob: *rng.pick(&[0.0, 0.1, 1.0]),
                token_retry_cycles: Cycles::new(rng.range(1, 500)),
                predictor_corrupt_prob: *rng.pick(&[0.0, 0.2, 1.0]),
                brownout_prob: *rng.pick(&[0.0, 0.05, 1.0]),
                brownout_hold_cycles: Cycles::new(rng.range(1, 50_000)),
                dram_spike_prob: *rng.pick(&[0.0, 0.3, 0.9]),
                dram_spike_cycles: Cycles::new(rng.range(1, 2_000)),
                dram_window_cycles: rng.range(100, 5_000),
            }
        };
        Scenario {
            cores,
            // Weighted toward 1 (the classic shared topology); larger
            // values exercise clamping (channels > cores is legal).
            channels: *rng.pick(&[1usize, 1, 1, 2, 3, 4, 8]),
            shards: *rng.pick(&[1usize, 2, 3, 5, 8]),
            instructions: *rng.pick(&[50, 200, 1_000, 5_000, 20_000, 80_000]),
            sim_seed: rng.below(1 << 48),
            policy: *rng.pick(&POLICY_POOL),
            profile: ProfileSpec::generate(&mut rng),
            compute_quantum: if rng.chance(0.35) {
                Some(rng.range(1, 64))
            } else {
                None
            },
            tokens: if rng.chance(0.4) {
                Some(rng.range(1, cores as u64) as usize)
            } else {
                None
            },
            watchdog: if rng.chance(0.4) {
                Some(WatchdogConfig {
                    window: rng.range(1, 32) as usize,
                    min_samples: 1,
                    penalty_ratio: *rng.pick(&[0.25, 0.5, 2.0, 8.0]),
                    failure_threshold: *rng.pick(&[0.01, 0.2, 0.9]),
                    backoff_base: Cycles::new(rng.range(50, 5_000)),
                    backoff_max: Cycles::new(rng.range(5_000, 100_000)),
                })
            } else {
                None
            },
            faults,
            switch_width_ratio: *rng.pick(&[0.005, 0.01, 0.03, 0.08, 0.2]),
            non_retentive: rng.chance(0.25),
            mlp_limit: *rng.pick(&[1usize, 2, 8, 16]),
            mshr_entries: *rng.pick(&[1usize, 2, 4, 16, 32]),
            closed_page: rng.chance(0.3),
            stream_prefetch: rng.chance(0.3),
            dram_latency_scale: *rng.pick(&[0.5, 1.0, 2.0, 4.0]),
            // Non-power-of-two bank counts (3, 6) drive the division
            // fallback in the flattened DRAM bank/row split.
            dram_banks: *rng.pick(&[1u32, 2, 3, 6, 8, 16]),
            regate: !rng.chance(0.2),
            timeline: rng.chance(0.2),
            trace_capacity: *rng.pick(&[1usize, 64, 1 << 20]),
        }
    }

    /// Builds the simulation configuration this scenario describes.
    ///
    /// Trace + metrics capture are always enabled: the differ's law checks
    /// need them, and repro replay must match the fuzzing run exactly.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] when a field is out of range
    /// (possible for hand-edited repro files; generated scenarios are
    /// always valid).
    pub fn build_config(&self) -> Result<SimConfig, MapgError> {
        let invalid = |what: &str| MapgError::invalid(format!("scenario {what} out of range"));
        let profile = self.profile.build("fuzz")?;
        if self.mlp_limit == 0 {
            return Err(invalid("mlp_limit"));
        }
        if !(self.dram_latency_scale.is_finite() && self.dram_latency_scale > 0.0) {
            return Err(invalid("dram_latency_scale"));
        }
        if self.trace_capacity == 0 {
            return Err(invalid("trace_capacity"));
        }
        let mut dram = DramConfig::ddr3_1333().with_latency_scaled(self.dram_latency_scale);
        dram.banks = self.dram_banks;
        dram = dram.with_page_policy(if self.closed_page {
            PagePolicy::Closed
        } else {
            PagePolicy::Open
        });
        let memory = HierarchyConfig {
            dram,
            mshr_entries: self.mshr_entries,
            prefetch: if self.stream_prefetch {
                PrefetchConfig::stream()
            } else {
                PrefetchConfig::disabled()
            },
            ..HierarchyConfig::baseline()
        };
        // Zero banks / zero MSHRs and any other memory inconsistency come
        // back through the hierarchy's own validation (same messages the
        // panicking constructors use) instead of ad-hoc field checks.
        memory.try_validate()?;
        let core = CoreConfig {
            mlp_limit: self.mlp_limit,
            ..CoreConfig::baseline()
        };
        let mut config = SimConfig::default()
            .with_profile(profile)
            .try_with_cores(self.cores)?
            .try_with_channels(self.channels)?
            .try_with_shards(self.shards)?
            .try_with_instructions(self.instructions)?
            .with_seed(self.sim_seed)
            .with_core(core)
            .with_memory(memory)
            .try_with_switch_width(self.switch_width_ratio)?
            .with_retention(if self.non_retentive {
                RetentionStyle::NonRetentive
            } else {
                RetentionStyle::Retentive
            })
            .try_with_fault_plan(self.faults)?
            .with_trace_capacity(self.trace_capacity)
            .with_metrics();
        if let Some(quantum) = self.compute_quantum {
            config = config.try_with_compute_quantum(quantum)?;
        }
        if let Some(tokens) = self.tokens {
            config = config.try_with_tokens(tokens)?;
        }
        if let Some(watchdog) = self.watchdog {
            watchdog.validate().map_err(MapgError::invalid)?;
            config = config.with_safe_mode(watchdog);
        }
        if let PolicyKind::Timeout { idle_cycles } = self.policy {
            if idle_cycles == 0 {
                return Err(invalid("timeout idle_cycles"));
            }
        }
        if !self.regate {
            config = config.without_regate();
        }
        if self.timeline {
            config = config.with_timeline();
        }
        Ok(config)
    }

    /// Serializes the scenario to a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let opt_u64 = |v: Option<u64>| match v {
            Some(n) => JsonValue::Number(n.to_string()),
            None => JsonValue::Null,
        };
        let num_u = |n: u64| JsonValue::Number(n.to_string());
        let num_f = |x: f64| JsonValue::Number(json::render_f64(x));
        let policy = match self.policy {
            PolicyKind::Timeout { idle_cycles } => JsonValue::Object(vec![
                ("name".into(), JsonValue::String("timeout".into())),
                ("idle_cycles".into(), num_u(idle_cycles)),
            ]),
            other => JsonValue::Object(vec![(
                "name".into(),
                JsonValue::String(other.name().into()),
            )]),
        };
        let profile = JsonValue::Object(vec![
            (
                "mem_refs_per_kilo_inst".into(),
                num_f(self.profile.mem_refs_per_kilo_inst),
            ),
            (
                "working_set_bytes".into(),
                num_u(self.profile.working_set_bytes),
            ),
            (
                "spatial_locality".into(),
                num_f(self.profile.spatial_locality),
            ),
            ("hot_regions".into(), num_u(self.profile.hot_regions.into())),
            (
                "pointer_chase_fraction".into(),
                num_f(self.profile.pointer_chase_fraction),
            ),
            ("write_fraction".into(), num_f(self.profile.write_fraction)),
            ("compute_ipc".into(), num_f(self.profile.compute_ipc)),
            (
                "phases".into(),
                JsonValue::String(self.profile.phases.tag().into()),
            ),
            (
                "idle_interval_instructions".into(),
                opt_u64(self.profile.idle.map(|(i, _)| i)),
            ),
            (
                "idle_duration_cycles".into(),
                opt_u64(self.profile.idle.map(|(_, d)| d)),
            ),
        ]);
        let faults = JsonValue::Object(vec![
            ("slow_wake_prob".into(), num_f(self.faults.slow_wake_prob)),
            (
                "slow_wake_factor".into(),
                num_f(self.faults.slow_wake_factor),
            ),
            ("token_drop_prob".into(), num_f(self.faults.token_drop_prob)),
            (
                "token_retry_cycles".into(),
                num_u(self.faults.token_retry_cycles.raw()),
            ),
            (
                "predictor_corrupt_prob".into(),
                num_f(self.faults.predictor_corrupt_prob),
            ),
            ("brownout_prob".into(), num_f(self.faults.brownout_prob)),
            (
                "brownout_hold_cycles".into(),
                num_u(self.faults.brownout_hold_cycles.raw()),
            ),
            ("dram_spike_prob".into(), num_f(self.faults.dram_spike_prob)),
            (
                "dram_spike_cycles".into(),
                num_u(self.faults.dram_spike_cycles.raw()),
            ),
            (
                "dram_window_cycles".into(),
                num_u(self.faults.dram_window_cycles),
            ),
        ]);
        let watchdog = match &self.watchdog {
            None => JsonValue::Null,
            Some(w) => JsonValue::Object(vec![
                ("window".into(), num_u(w.window as u64)),
                ("min_samples".into(), num_u(w.min_samples as u64)),
                ("penalty_ratio".into(), num_f(w.penalty_ratio)),
                ("failure_threshold".into(), num_f(w.failure_threshold)),
                ("backoff_base".into(), num_u(w.backoff_base.raw())),
                ("backoff_max".into(), num_u(w.backoff_max.raw())),
            ]),
        };
        JsonValue::Object(vec![
            ("cores".into(), num_u(self.cores as u64)),
            ("channels".into(), num_u(self.channels as u64)),
            ("shards".into(), num_u(self.shards as u64)),
            ("instructions".into(), num_u(self.instructions)),
            ("sim_seed".into(), num_u(self.sim_seed)),
            ("policy".into(), policy),
            ("profile".into(), profile),
            ("compute_quantum".into(), opt_u64(self.compute_quantum)),
            ("tokens".into(), opt_u64(self.tokens.map(|t| t as u64))),
            ("watchdog".into(), watchdog),
            ("faults".into(), faults),
            ("switch_width_ratio".into(), num_f(self.switch_width_ratio)),
            ("non_retentive".into(), JsonValue::Bool(self.non_retentive)),
            ("mlp_limit".into(), num_u(self.mlp_limit as u64)),
            ("mshr_entries".into(), num_u(self.mshr_entries as u64)),
            ("closed_page".into(), JsonValue::Bool(self.closed_page)),
            (
                "stream_prefetch".into(),
                JsonValue::Bool(self.stream_prefetch),
            ),
            ("dram_latency_scale".into(), num_f(self.dram_latency_scale)),
            ("dram_banks".into(), num_u(self.dram_banks.into())),
            ("regate".into(), JsonValue::Bool(self.regate)),
            ("timeline".into(), JsonValue::Bool(self.timeline)),
            ("trace_capacity".into(), num_u(self.trace_capacity as u64)),
        ])
    }

    /// Deserializes a scenario from its JSON object form.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] when a field is missing or has
    /// the wrong type. Range validation happens in
    /// [`Scenario::build_config`].
    pub fn from_json(value: &JsonValue) -> Result<Scenario, MapgError> {
        let missing = |field: &str| {
            MapgError::invalid(format!("scenario field '{field}' missing or mistyped"))
        };
        let u64_of = |field: &str| {
            value
                .get(field)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| missing(field))
        };
        let f64_of = |field: &str| {
            value
                .get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| missing(field))
        };
        let bool_of = |field: &str| {
            value
                .get(field)
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| missing(field))
        };
        let opt_u64_of = |field: &str| -> Result<Option<u64>, MapgError> {
            match value.get(field) {
                None => Err(missing(field)),
                Some(JsonValue::Null) => Ok(None),
                Some(v) => v.as_u64().map(Some).ok_or_else(|| missing(field)),
            }
        };

        let policy_value = value.get("policy").ok_or_else(|| missing("policy"))?;
        let policy_name = policy_value
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| missing("policy.name"))?;
        let policy = if policy_name == "timeout" {
            PolicyKind::Timeout {
                idle_cycles: policy_value
                    .get("idle_cycles")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| missing("policy.idle_cycles"))?,
            }
        } else {
            parse_policy_name(policy_name)
                .ok_or_else(|| MapgError::invalid(format!("unknown policy '{policy_name}'")))?
        };

        let p = value.get("profile").ok_or_else(|| missing("profile"))?;
        let pf = |field: &str| {
            p.get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| missing(field))
        };
        let pu = |field: &str| {
            p.get(field)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| missing(field))
        };
        let phases_tag = p
            .get("phases")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| missing("profile.phases"))?;
        let idle_interval = match p.get("idle_interval_instructions") {
            Some(JsonValue::Null) | None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| missing("idle_interval_instructions"))?,
            ),
        };
        let idle_duration = match p.get("idle_duration_cycles") {
            Some(JsonValue::Null) | None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| missing("idle_duration_cycles"))?),
        };
        let idle = match (idle_interval, idle_duration) {
            (Some(i), Some(d)) => Some((i, d)),
            (None, None) => None,
            _ => {
                return Err(MapgError::invalid(
                    "idle injection needs both interval and duration (or neither)",
                ))
            }
        };
        let profile = ProfileSpec {
            mem_refs_per_kilo_inst: pf("mem_refs_per_kilo_inst")?,
            working_set_bytes: pu("working_set_bytes")?,
            spatial_locality: pf("spatial_locality")?,
            hot_regions: p
                .get("hot_regions")
                .and_then(JsonValue::as_u32)
                .ok_or_else(|| missing("profile.hot_regions"))?,
            pointer_chase_fraction: pf("pointer_chase_fraction")?,
            write_fraction: pf("write_fraction")?,
            compute_ipc: pf("compute_ipc")?,
            phases: PhaseSpec::from_tag(phases_tag).ok_or_else(|| {
                MapgError::invalid(format!("unknown phase preset '{phases_tag}'"))
            })?,
            idle,
        };

        let f = value.get("faults").ok_or_else(|| missing("faults"))?;
        let ff = |field: &str| {
            f.get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| missing(field))
        };
        let fu = |field: &str| {
            f.get(field)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| missing(field))
        };
        let faults = FaultPlan {
            slow_wake_prob: ff("slow_wake_prob")?,
            slow_wake_factor: ff("slow_wake_factor")?,
            token_drop_prob: ff("token_drop_prob")?,
            token_retry_cycles: Cycles::new(fu("token_retry_cycles")?),
            predictor_corrupt_prob: ff("predictor_corrupt_prob")?,
            brownout_prob: ff("brownout_prob")?,
            brownout_hold_cycles: Cycles::new(fu("brownout_hold_cycles")?),
            dram_spike_prob: ff("dram_spike_prob")?,
            dram_spike_cycles: Cycles::new(fu("dram_spike_cycles")?),
            dram_window_cycles: fu("dram_window_cycles")?,
        };

        let watchdog = match value.get("watchdog") {
            Some(JsonValue::Null) | None => None,
            Some(w) => {
                let wf = |field: &str| {
                    w.get(field)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| missing(field))
                };
                let wu = |field: &str| {
                    w.get(field)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| missing(field))
                };
                Some(WatchdogConfig {
                    window: wu("window")? as usize,
                    min_samples: wu("min_samples")? as usize,
                    penalty_ratio: wf("penalty_ratio")?,
                    failure_threshold: wf("failure_threshold")?,
                    backoff_base: Cycles::new(wu("backoff_base")?),
                    backoff_max: Cycles::new(wu("backoff_max")?),
                })
            }
        };

        // Channels/shards default to 1 when absent so repro files written
        // before those dimensions existed still replay bit-for-bit (1 is
        // exactly the behaviour those runs had).
        let legacy_default = |field: &str| -> Result<usize, MapgError> {
            match value.get(field) {
                None | Some(JsonValue::Null) => Ok(1),
                Some(v) => v.as_u64().map(|n| n as usize).ok_or_else(|| missing(field)),
            }
        };

        Ok(Scenario {
            cores: u64_of("cores")? as usize,
            channels: legacy_default("channels")?,
            shards: legacy_default("shards")?,
            instructions: u64_of("instructions")?,
            sim_seed: u64_of("sim_seed")?,
            policy,
            profile,
            compute_quantum: opt_u64_of("compute_quantum")?,
            tokens: opt_u64_of("tokens")?.map(|t| t as usize),
            watchdog,
            faults,
            switch_width_ratio: f64_of("switch_width_ratio")?,
            non_retentive: bool_of("non_retentive")?,
            mlp_limit: u64_of("mlp_limit")? as usize,
            mshr_entries: u64_of("mshr_entries")? as usize,
            closed_page: bool_of("closed_page")?,
            stream_prefetch: bool_of("stream_prefetch")?,
            dram_latency_scale: f64_of("dram_latency_scale")?,
            dram_banks: value
                .get("dram_banks")
                .and_then(JsonValue::as_u32)
                .ok_or_else(|| missing("dram_banks"))?,
            regate: bool_of("regate")?,
            timeline: bool_of("timeline")?,
            trace_capacity: u64_of("trace_capacity")? as usize,
        })
    }
}

fn parse_policy_name(name: &str) -> Option<PolicyKind> {
    let fixed = [
        PolicyKind::NoGating,
        PolicyKind::ClockGating,
        PolicyKind::DvfsStall,
        PolicyKind::NaiveOnMiss,
        PolicyKind::Mapg,
        PolicyKind::MapgOracle,
        PolicyKind::MapgAlwaysGate,
        PolicyKind::MapgNoEarlyWake,
    ];
    if let Some(kind) = fixed.iter().find(|k| k.name() == name) {
        return Some(*kind);
    }
    PredictorKind::ALL
        .iter()
        .find(|p| p.policy_name() == name)
        .map(|p| PolicyKind::MapgWith { predictor: *p })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::json::{parse, write};

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::generate(42, 7);
        let b = Scenario::generate(42, 7);
        assert_eq!(a, b);
        assert_ne!(a, Scenario::generate(42, 8));
        assert_ne!(a, Scenario::generate(43, 7));
    }

    #[test]
    fn generated_scenarios_build_valid_configs() {
        for index in 0..200 {
            let scenario = Scenario::generate(0xF00D, index);
            scenario
                .build_config()
                .unwrap_or_else(|e| panic!("scenario {index} invalid: {e}"));
        }
    }

    #[test]
    fn scenarios_round_trip_through_json() {
        for index in 0..100 {
            let scenario = Scenario::generate(0xBEEF, index);
            let text = write(&scenario.to_json());
            let back = Scenario::from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(scenario, back, "index {index}:\n{text}");
        }
    }

    #[test]
    fn every_policy_name_round_trips() {
        for policy in POLICY_POOL {
            let scenario = Scenario {
                policy,
                ..Scenario::generate(1, 1)
            };
            let text = write(&scenario.to_json());
            let back = Scenario::from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(back.policy, policy);
        }
    }

    /// Repro files written before the channels/shards dimensions existed
    /// must parse with both defaulted to 1 — the behaviour those runs
    /// actually had.
    #[test]
    fn legacy_json_without_channels_or_shards_defaults_to_one() {
        let scenario = Scenario::generate(0xCAFE, 3);
        let JsonValue::Object(mut fields) = scenario.to_json() else {
            panic!("scenario JSON is an object");
        };
        fields.retain(|(k, _)| k != "channels" && k != "shards");
        let back = Scenario::from_json(&JsonValue::Object(fields)).unwrap();
        assert_eq!(back.channels, 1);
        assert_eq!(back.shards, 1);
        assert_eq!(
            Scenario {
                channels: 1,
                shards: 1,
                ..scenario
            },
            back
        );
    }

    #[test]
    fn hand_edited_out_of_range_fields_are_rejected() {
        let mut scenario = Scenario::generate(5, 5);
        scenario.switch_width_ratio = 0.5;
        assert!(scenario.build_config().is_err());
        let mut scenario = Scenario::generate(5, 5);
        scenario.channels = 0;
        assert!(scenario.build_config().is_err());
        let mut scenario = Scenario::generate(5, 5);
        scenario.shards = 0;
        assert!(scenario.build_config().is_err());
        let mut scenario = Scenario::generate(5, 5);
        scenario.profile.compute_ipc = 100.0;
        assert!(scenario.build_config().is_err());
        let mut scenario = Scenario::generate(5, 5);
        scenario.mlp_limit = 0;
        assert!(scenario.build_config().is_err());
        // Memory-side rejections flow through the hierarchy's try_validate
        // and carry the mem crate's message text.
        let mut scenario = Scenario::generate(5, 5);
        scenario.mshr_entries = 0;
        let e = scenario.build_config().unwrap_err();
        assert!(e.to_string().contains("MSHR capacity must be non-zero"));
        let mut scenario = Scenario::generate(5, 5);
        scenario.dram_banks = 0;
        let e = scenario.build_config().unwrap_err();
        assert!(e.to_string().contains("at least one bank"));
    }
}
