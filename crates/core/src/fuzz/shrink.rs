//! Greedy deterministic scenario shrinking.
//!
//! Each pass proposes one simplification (fewer instructions, fewer
//! cores, a dropped subsystem, a neutralized fault group, a reset knob).
//! A candidate is accepted only when the *same finding class* still
//! reproduces, so the shrunk scenario demonstrates the original bug, not
//! a different one. Passes run to a fixpoint under a total run budget;
//! everything is pure scenario surgery, so shrinking is as deterministic
//! as the simulations themselves.

use crate::fuzz::differ::{run_scenario, Finding};
use crate::fuzz::scenario::{ProfileSpec, Scenario};
use mapg_units::Cycles;

/// Result of shrinking one finding.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The smallest scenario that still reproduces the finding class.
    pub scenario: Scenario,
    /// The finding the shrunk scenario produces (same class as the
    /// original; detail may differ).
    pub finding: Finding,
    /// Accepted simplification steps.
    pub steps: u64,
    /// Simulation pairs spent (each candidate costs one live+reference
    /// run).
    pub runs: u64,
}

type Pass = (&'static str, fn(&Scenario) -> Option<Scenario>);

fn halve_instructions(s: &Scenario) -> Option<Scenario> {
    if s.instructions <= 50 {
        return None;
    }
    let mut out = s.clone();
    out.instructions = (s.instructions / 2).max(50);
    Some(out)
}

fn halve_cores(s: &Scenario) -> Option<Scenario> {
    if s.cores <= 1 {
        return None;
    }
    let mut out = s.clone();
    out.cores = (s.cores / 2).max(1);
    if let Some(tokens) = out.tokens {
        out.tokens = Some(tokens.min(out.cores));
    }
    Some(out)
}

fn halve_channels(s: &Scenario) -> Option<Scenario> {
    if s.channels <= 1 {
        return None;
    }
    let mut out = s.clone();
    out.channels = (s.channels / 2).max(1);
    Some(out)
}

fn halve_shards(s: &Scenario) -> Option<Scenario> {
    if s.shards <= 1 {
        return None;
    }
    let mut out = s.clone();
    out.shards = (s.shards / 2).max(1);
    Some(out)
}

fn drop_timeline(s: &Scenario) -> Option<Scenario> {
    if !s.timeline {
        return None;
    }
    let mut out = s.clone();
    out.timeline = false;
    Some(out)
}

fn drop_quantum(s: &Scenario) -> Option<Scenario> {
    s.compute_quantum?;
    let mut out = s.clone();
    out.compute_quantum = None;
    Some(out)
}

fn drop_watchdog(s: &Scenario) -> Option<Scenario> {
    s.watchdog?;
    let mut out = s.clone();
    out.watchdog = None;
    Some(out)
}

fn drop_tokens(s: &Scenario) -> Option<Scenario> {
    s.tokens?;
    let mut out = s.clone();
    out.tokens = None;
    Some(out)
}

fn drop_idle(s: &Scenario) -> Option<Scenario> {
    s.profile.idle?;
    let mut out = s.clone();
    out.profile.idle = None;
    Some(out)
}

fn zero_slow_wake(s: &Scenario) -> Option<Scenario> {
    if s.faults.slow_wake_prob == 0.0 {
        return None;
    }
    let mut out = s.clone();
    out.faults.slow_wake_prob = 0.0;
    Some(out)
}

fn zero_token_drop(s: &Scenario) -> Option<Scenario> {
    if s.faults.token_drop_prob == 0.0 {
        return None;
    }
    let mut out = s.clone();
    out.faults.token_drop_prob = 0.0;
    Some(out)
}

fn zero_predictor_corrupt(s: &Scenario) -> Option<Scenario> {
    if s.faults.predictor_corrupt_prob == 0.0 {
        return None;
    }
    let mut out = s.clone();
    out.faults.predictor_corrupt_prob = 0.0;
    Some(out)
}

fn zero_brownout(s: &Scenario) -> Option<Scenario> {
    if s.faults.brownout_prob == 0.0 {
        return None;
    }
    let mut out = s.clone();
    out.faults.brownout_prob = 0.0;
    Some(out)
}

fn zero_dram_spikes(s: &Scenario) -> Option<Scenario> {
    if s.faults.dram_spike_prob == 0.0 {
        return None;
    }
    let mut out = s.clone();
    out.faults.dram_spike_prob = 0.0;
    Some(out)
}

fn reset_profile(s: &Scenario) -> Option<Scenario> {
    let baseline = ProfileSpec {
        idle: s.profile.idle,
        ..ProfileSpec::baseline()
    };
    if s.profile == baseline {
        return None;
    }
    let mut out = s.clone();
    out.profile = baseline;
    Some(out)
}

fn reset_memory(s: &Scenario) -> Option<Scenario> {
    if s.mlp_limit == 8
        && s.mshr_entries == 16
        && !s.closed_page
        && !s.stream_prefetch
        && s.dram_latency_scale == 1.0
        && s.dram_banks == 8
    {
        return None;
    }
    let mut out = s.clone();
    out.mlp_limit = 8;
    out.mshr_entries = 16;
    out.closed_page = false;
    out.stream_prefetch = false;
    out.dram_latency_scale = 1.0;
    out.dram_banks = 8;
    Some(out)
}

fn reset_circuit(s: &Scenario) -> Option<Scenario> {
    if s.switch_width_ratio == 0.03 && !s.non_retentive && s.regate {
        return None;
    }
    let mut out = s.clone();
    out.switch_width_ratio = 0.03;
    out.non_retentive = false;
    out.regate = true;
    Some(out)
}

fn widen_trace(s: &Scenario) -> Option<Scenario> {
    if s.trace_capacity >= 1 << 20 {
        return None;
    }
    let mut out = s.clone();
    out.trace_capacity = 1 << 20;
    Some(out)
}

fn shorten_fault_holds(s: &Scenario) -> Option<Scenario> {
    let mut out = s.clone();
    let mut changed = false;
    if out.faults.brownout_hold_cycles.raw() > 1 && out.faults.brownout_prob > 0.0 {
        out.faults.brownout_hold_cycles = Cycles::new(out.faults.brownout_hold_cycles.raw() / 2);
        changed = true;
    }
    if out.faults.dram_spike_cycles.raw() > 1 && out.faults.dram_spike_prob > 0.0 {
        out.faults.dram_spike_cycles = Cycles::new(out.faults.dram_spike_cycles.raw() / 2);
        changed = true;
    }
    if changed {
        Some(out)
    } else {
        None
    }
}

/// Passes in the order tried each fixpoint round: big structural cuts
/// first, knob resets last.
const PASSES: [Pass; 19] = [
    ("halve-instructions", halve_instructions),
    ("halve-cores", halve_cores),
    ("halve-channels", halve_channels),
    ("halve-shards", halve_shards),
    ("drop-quantum", drop_quantum),
    ("drop-watchdog", drop_watchdog),
    ("drop-tokens", drop_tokens),
    ("drop-timeline", drop_timeline),
    ("drop-idle", drop_idle),
    ("zero-slow-wake", zero_slow_wake),
    ("zero-token-drop", zero_token_drop),
    ("zero-predictor-corrupt", zero_predictor_corrupt),
    ("zero-brownout", zero_brownout),
    ("zero-dram-spikes", zero_dram_spikes),
    ("shorten-fault-holds", shorten_fault_holds),
    ("widen-trace", widen_trace),
    ("reset-profile", reset_profile),
    ("reset-memory", reset_memory),
    ("reset-circuit", reset_circuit),
];

/// Shrinks `scenario` while `finding`'s class keeps reproducing, spending
/// at most `budget` candidate evaluations.
pub fn shrink(scenario: &Scenario, finding: &Finding, budget: u64) -> ShrinkOutcome {
    let mut current = scenario.clone();
    let mut current_finding = finding.clone();
    let mut steps = 0u64;
    let mut runs = 0u64;
    let mut progress = true;
    while progress && runs < budget {
        progress = false;
        for (_, pass) in PASSES {
            if runs >= budget {
                break;
            }
            let Some(candidate) = pass(&current) else {
                continue;
            };
            if candidate == current {
                continue;
            }
            runs += 1;
            if let Ok(Some(found)) = run_scenario(&candidate) {
                if found.class == current_finding.class {
                    current = candidate;
                    current_finding = found;
                    steps += 1;
                    progress = true;
                }
            }
        }
    }
    ShrinkOutcome {
        scenario: current,
        finding: current_finding,
        steps,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::differ::FindingClass;

    /// Shrinking a scenario whose finding never reproduces (the class is
    /// impossible) must terminate quickly and leave it untouched.
    #[test]
    fn shrink_without_reproduction_keeps_the_scenario() {
        let scenario = Scenario::generate(9, 9);
        let finding = Finding {
            class: FindingClass::Panic,
            detail: "synthetic".into(),
        };
        let outcome = shrink(&scenario, &finding, 40);
        assert_eq!(outcome.scenario, scenario);
        assert_eq!(outcome.steps, 0);
        assert!(outcome.runs <= 40);
    }

    #[test]
    fn passes_propose_strictly_different_scenarios() {
        let scenario = Scenario::generate(77, 3);
        for (name, pass) in PASSES {
            if let Some(candidate) = pass(&scenario) {
                assert_ne!(candidate, scenario, "pass {name} proposed a no-op");
            }
        }
    }
}
