//! Self-contained crash-repro files.
//!
//! A repro file carries everything needed to replay a divergence
//! bit-for-bit: the shrunk scenario, the finding it produced, and the
//! campaign provenance (`campaign_seed`, `scenario_index`, shrink count)
//! that lets anyone regenerate the original unshrunk scenario too.
//! `mapgsim --repro file.json` and the committed regression tests both
//! replay through [`ReproFile::replay`].

use std::path::Path;

use crate::error::MapgError;
use crate::fuzz::differ::{run_scenario, Finding, FindingClass};
use crate::fuzz::json::{self, JsonValue};
use crate::fuzz::scenario::Scenario;

/// Repro-file schema version.
pub const REPRO_SCHEMA: u32 = 1;

/// A serialized divergence: scenario + expected finding + provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproFile {
    /// Campaign seed the scenario came from (absent for hand-written
    /// repros).
    pub campaign_seed: Option<u64>,
    /// Scenario index within the campaign.
    pub scenario_index: Option<u64>,
    /// Accepted shrink steps between the generated and stored scenario.
    pub shrink_steps: u64,
    /// The finding class this scenario reproduces.
    pub finding_class: FindingClass,
    /// Human-readable detail captured when the finding was recorded.
    pub finding_detail: String,
    /// The (shrunk) scenario to replay.
    pub scenario: Scenario,
}

impl ReproFile {
    /// Renders the repro as a JSON document.
    pub fn to_json_text(&self) -> String {
        let opt = |v: Option<u64>| match v {
            Some(n) => JsonValue::Number(n.to_string()),
            None => JsonValue::Null,
        };
        let doc = JsonValue::Object(vec![
            ("schema".into(), JsonValue::Number(REPRO_SCHEMA.to_string())),
            ("campaign_seed".into(), opt(self.campaign_seed)),
            ("scenario_index".into(), opt(self.scenario_index)),
            (
                "shrink_steps".into(),
                JsonValue::Number(self.shrink_steps.to_string()),
            ),
            (
                "finding_class".into(),
                JsonValue::String(self.finding_class.tag().into()),
            ),
            (
                "finding_detail".into(),
                JsonValue::String(self.finding_detail.clone()),
            ),
            ("scenario".into(), self.scenario.to_json()),
        ]);
        let mut text = json::write(&doc);
        text.push('\n');
        text
    }

    /// Parses a repro document.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] on malformed JSON, an
    /// unsupported schema version, or a mistyped field.
    pub fn from_json_text(text: &str) -> Result<ReproFile, MapgError> {
        let doc = json::parse(text).map_err(|e| MapgError::invalid(format!("repro file: {e}")))?;
        let missing =
            |field: &str| MapgError::invalid(format!("repro field '{field}' missing or mistyped"));
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_u32)
            .ok_or_else(|| missing("schema"))?;
        if schema != REPRO_SCHEMA {
            return Err(MapgError::invalid(format!(
                "unsupported repro schema {schema} (this build reads {REPRO_SCHEMA})"
            )));
        }
        let opt = |field: &str| -> Result<Option<u64>, MapgError> {
            match doc.get(field) {
                None => Err(missing(field)),
                Some(JsonValue::Null) => Ok(None),
                Some(v) => v.as_u64().map(Some).ok_or_else(|| missing(field)),
            }
        };
        let class_tag = doc
            .get("finding_class")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| missing("finding_class"))?;
        Ok(ReproFile {
            campaign_seed: opt("campaign_seed")?,
            scenario_index: opt("scenario_index")?,
            shrink_steps: doc
                .get("shrink_steps")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| missing("shrink_steps"))?,
            finding_class: FindingClass::from_tag(class_tag).ok_or_else(|| {
                MapgError::invalid(format!("unknown finding class '{class_tag}'"))
            })?,
            finding_detail: doc
                .get("finding_detail")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| missing("finding_detail"))?
                .to_owned(),
            scenario: Scenario::from_json(doc.get("scenario").ok_or_else(|| missing("scenario"))?)?,
        })
    }

    /// Writes the repro to `path` atomically (staged to `<path>.tmp`,
    /// fsync'd, renamed), so a crash mid-write never leaves a
    /// truncated repro.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] when the file cannot be
    /// written.
    pub fn save(&self, path: &Path) -> Result<(), MapgError> {
        crate::fsutil::write_atomic(path, self.to_json_text().as_bytes())
            .map_err(|e| MapgError::invalid(format!("cannot write {}: {e}", path.display())))
    }

    /// Reads a repro from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] when the file cannot be read
    /// or parsed.
    pub fn load(path: &Path) -> Result<ReproFile, MapgError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| MapgError::invalid(format!("cannot read {}: {e}", path.display())))?;
        ReproFile::from_json_text(&text)
    }

    /// Replays the stored scenario through the differential oracle and
    /// reports what it produces *now* (which a regression test compares
    /// against [`ReproFile::finding_class`]).
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] when the stored scenario is
    /// out of range.
    pub fn replay(&self) -> Result<Option<Finding>, MapgError> {
        run_scenario(&self.scenario)
    }

    /// True when replaying still produces the recorded finding class.
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] when the stored scenario is
    /// out of range.
    pub fn still_reproduces(&self) -> Result<bool, MapgError> {
        Ok(self
            .replay()?
            .is_some_and(|finding| finding.class == self.finding_class))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReproFile {
        ReproFile {
            campaign_seed: Some(0xFEED_F00D_DEAD_BEEF),
            scenario_index: Some(17),
            shrink_steps: 4,
            finding_class: FindingClass::StatsMismatch,
            finding_detail: "live and reference reports differ in: makespan".into(),
            scenario: Scenario::generate(0xFEED_F00D_DEAD_BEEF, 17),
        }
    }

    #[test]
    fn repro_files_round_trip() {
        let repro = sample();
        let text = repro.to_json_text();
        let back = ReproFile::from_json_text(&text).unwrap();
        assert_eq!(repro, back);
    }

    #[test]
    fn future_schemas_are_rejected() {
        let text = sample()
            .to_json_text()
            .replace("\"schema\": 1", "\"schema\": 99");
        let err = ReproFile::from_json_text(&text).unwrap_err();
        assert!(err.to_string().contains("unsupported repro schema"));
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let repro = sample();
        let path =
            std::env::temp_dir().join(format!("mapg-repro-test-{}.json", std::process::id()));
        repro.save(&path).unwrap();
        let back = ReproFile::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(repro, back);
    }

    /// A clean scenario's repro does not "reproduce" — the guard the
    /// regression runner relies on.
    #[test]
    fn clean_scenarios_do_not_reproduce() {
        let repro = ReproFile {
            campaign_seed: None,
            scenario_index: None,
            shrink_steps: 0,
            finding_class: FindingClass::Panic,
            finding_detail: "synthetic".into(),
            scenario: Scenario::generate(0xC1EA, 3),
        };
        assert!(!repro.still_reproduces().unwrap());
    }
}
