//! The differential oracle: runs one scenario through the live stack and
//! the frozen reference stack, compares the full reports, and checks the
//! observability reconciliation laws — turning any disagreement into a
//! typed [`Finding`].

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::error::MapgError;
use crate::fuzz::scenario::Scenario;
use crate::invariants::InvariantKind;
use crate::report::RunReport;
use crate::sim::{SimConfig, Simulation};
use mapg_obs::{EventKind, Scope, TraceBuffer};

/// What kind of disagreement a scenario exposed, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingClass {
    /// A simulation panicked (or failed with a runtime error).
    Panic,
    /// Live and reference stacks produced different reports.
    StatsMismatch,
    /// The sharded cluster engine diverged from the global wheel on the
    /// scenario's memory substrate (stats, trace, or metrics) — a break
    /// of the engine's bit-identical-at-any-shard-count contract.
    ShardDivergence,
    /// The run's own invariant checker reported violations (other than
    /// pure ledger-reconciliation kinds).
    InvariantViolation,
    /// Only the energy/token ledger reconciliation checks failed.
    LedgerNonReconciliation,
    /// Trace, metrics, and report disagree with each other.
    TraceMetricsAsymmetry,
}

impl FindingClass {
    /// All classes, most severe first.
    pub const ALL: [FindingClass; 6] = [
        FindingClass::Panic,
        FindingClass::StatsMismatch,
        FindingClass::ShardDivergence,
        FindingClass::InvariantViolation,
        FindingClass::LedgerNonReconciliation,
        FindingClass::TraceMetricsAsymmetry,
    ];

    /// Stable kebab-case tag (used in repro files and manifests).
    pub fn tag(self) -> &'static str {
        match self {
            FindingClass::Panic => "panic",
            FindingClass::StatsMismatch => "stats-mismatch",
            FindingClass::ShardDivergence => "shard-divergence",
            FindingClass::InvariantViolation => "invariant-violation",
            FindingClass::LedgerNonReconciliation => "ledger-non-reconciliation",
            FindingClass::TraceMetricsAsymmetry => "trace-metrics-asymmetry",
        }
    }

    /// Parses a tag produced by [`FindingClass::tag`].
    pub fn from_tag(tag: &str) -> Option<FindingClass> {
        FindingClass::ALL.iter().copied().find(|c| c.tag() == tag)
    }
}

impl core::fmt::Display for FindingClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.tag())
    }
}

/// One confirmed divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Divergence class.
    pub class: FindingClass,
    /// Human-readable description of what disagreed.
    pub detail: String,
}

/// Runs `scenario` through both stacks and reports the most severe
/// disagreement, or `None` when the scenario is clean.
///
/// # Errors
///
/// Returns [`MapgError::InvalidConfig`] when the scenario itself is
/// malformed (hand-edited repro files); a scenario that *runs* never
/// errors — disagreements come back as findings.
pub fn run_scenario(scenario: &Scenario) -> Result<Option<Finding>, MapgError> {
    let config = scenario.build_config()?;
    let live = run_guarded(config.clone(), scenario, "live");
    let reference = run_guarded(
        config.clone().with_reference_scheduler(),
        scenario,
        "reference",
    );
    let (live, reference) = match (live, reference) {
        (Err(detail), _) | (_, Err(detail)) => {
            return Ok(Some(Finding {
                class: FindingClass::Panic,
                detail,
            }))
        }
        (Ok(live), Ok(reference)) => (live, reference),
    };
    if live != reference {
        return Ok(Some(Finding {
            class: FindingClass::StatsMismatch,
            detail: diff_sections(&live, &reference),
        }));
    }
    // The sharded engine only takes a distinct code path when more than
    // one effective shard exists (shards, channels, and cores all > 1);
    // otherwise it *is* the global wheel and the comparison is vacuous.
    if scenario.shards.min(scenario.channels).min(scenario.cores) > 1 {
        let crosscheck = catch_unwind(AssertUnwindSafe(|| config.crosscheck_sharded()));
        match crosscheck {
            Ok(Ok(None)) => {}
            Ok(Ok(Some(detail))) => {
                return Ok(Some(Finding {
                    class: FindingClass::ShardDivergence,
                    detail,
                }))
            }
            Ok(Err(e)) => {
                return Ok(Some(Finding {
                    class: FindingClass::Panic,
                    detail: format!("shard crosscheck failed: {e}"),
                }))
            }
            Err(payload) => {
                return Ok(Some(Finding {
                    class: FindingClass::Panic,
                    detail: format!(
                        "shard crosscheck panicked: {}",
                        panic_text(payload.as_ref())
                    ),
                }))
            }
        }
    }
    if !live.invariants.is_clean() {
        let ledger_only = live.invariants.violations.iter().all(|v| {
            matches!(
                v.kind,
                InvariantKind::EnergyLedger | InvariantKind::TokenLedger
            )
        });
        let class = if ledger_only {
            FindingClass::LedgerNonReconciliation
        } else {
            FindingClass::InvariantViolation
        };
        return Ok(Some(Finding {
            class,
            detail: format!("{}", live.invariants),
        }));
    }
    Ok(check_reconciliation(&live).map(|detail| Finding {
        class: FindingClass::TraceMetricsAsymmetry,
        detail,
    }))
}

fn run_guarded(config: SimConfig, scenario: &Scenario, stack: &str) -> Result<RunReport, String> {
    let policy = scenario.policy;
    match catch_unwind(AssertUnwindSafe(move || {
        Simulation::new(config, policy).try_run()
    })) {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(e)) => Err(format!("{stack} stack failed: {e}")),
        // `as_ref` matters: `&payload` would coerce the `Box` itself to
        // `&dyn Any` and every downcast would miss.
        Err(payload) => Err(format!(
            "{stack} stack panicked: {}",
            panic_text(payload.as_ref())
        )),
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Names the report sections that differ (both reports compare unequal).
fn diff_sections(live: &RunReport, reference: &RunReport) -> String {
    let mut parts: Vec<&str> = Vec::new();
    if live.makespan_cycles != reference.makespan_cycles {
        parts.push("makespan");
    }
    if live.energy != reference.energy {
        parts.push("energy");
    }
    if live.gating != reference.gating {
        parts.push("gating");
    }
    if live.core_stats != reference.core_stats {
        parts.push("core_stats");
    }
    if live.memory != reference.memory {
        parts.push("memory");
    }
    if live.predictor != reference.predictor {
        parts.push("predictor");
    }
    if live.peak_concurrent_wakes != reference.peak_concurrent_wakes {
        parts.push("peak_concurrent_wakes");
    }
    if live.invariants != reference.invariants {
        parts.push("invariants");
    }
    if live.degradation != reference.degradation {
        parts.push("degradation");
    }
    if live.faults != reference.faults {
        parts.push("faults");
    }
    if live.timeline != reference.timeline {
        parts.push("timeline");
    }
    if live.trace != reference.trace {
        parts.push("trace");
    }
    if live.metrics != reference.metrics {
        parts.push("metrics");
    }
    if parts.is_empty() {
        parts.push("unattributed-field");
    }
    format!(
        "live and reference reports differ in: {} \
         (live makespan {}, reference makespan {})",
        parts.join(", "),
        live.makespan_cycles,
        reference.makespan_cycles
    )
}

/// Checks the cross-artifact reconciliation laws on one report.
///
/// Metrics/report laws always apply; trace-derived laws only when the
/// trace ring kept every record (`dropped() == 0`).
pub fn check_reconciliation(report: &RunReport) -> Option<String> {
    let mut problems: Vec<String> = Vec::new();
    let gating = &report.gating;

    if let Some(metrics) = report.metrics.as_ref() {
        if metrics.counter("gates") != gating.gated {
            problems.push(format!(
                "metrics gates {} != report gated {}",
                metrics.counter("gates"),
                gating.gated
            ));
        }
        if metrics.counter("regates") != gating.regates {
            problems.push(format!(
                "metrics regates {} != report regates {}",
                metrics.counter("regates"),
                gating.regates
            ));
        }
        if metrics.counter("fsm_sleeping_cycles") != gating.gated_cycles {
            problems.push(format!(
                "metrics fsm_sleeping_cycles {} != report gated_cycles {}",
                metrics.counter("fsm_sleeping_cycles"),
                gating.gated_cycles
            ));
        }
        match metrics.histogram("gated_duration") {
            Some(h) => {
                if h.count() != gating.gated + gating.regates {
                    problems.push(format!(
                        "gated_duration count {} != gated+regates {}",
                        h.count(),
                        gating.gated + gating.regates
                    ));
                }
                if h.sum() != gating.gated_cycles {
                    problems.push(format!(
                        "gated_duration sum {} != gated_cycles {}",
                        h.sum(),
                        gating.gated_cycles
                    ));
                }
            }
            None => {
                if gating.gated > 0 {
                    problems.push("gated_duration histogram missing".into());
                }
            }
        }
    }

    if let Some(trace) = report.trace.as_ref() {
        if trace.dropped() == 0 {
            check_trace_laws(trace, report, &mut problems);
        }
    }

    if problems.is_empty() {
        None
    } else {
        Some(problems.join("; "))
    }
}

fn check_trace_laws(trace: &TraceBuffer, report: &RunReport, problems: &mut Vec<String>) {
    let gating = &report.gating;
    let traced: u64 = trace.gated_cycles_per_core().values().sum();
    if traced != gating.gated_cycles {
        problems.push(format!(
            "trace gated cycles {} != report gated_cycles {}",
            traced, gating.gated_cycles
        ));
    }
    let enters = trace.count_kind(EventKind::SleepEnter) as u64;
    if enters != gating.gated + gating.regates {
        problems.push(format!(
            "SleepEnter count {} != gated+regates {}",
            enters,
            gating.gated + gating.regates
        ));
    }
    for core in 0..report.cores as u32 {
        let scope = Scope::Core(core);
        for (begin, end) in [
            (EventKind::StallBegin, EventKind::StallEnd),
            (EventKind::SleepEnter, EventKind::SleepExit),
            (EventKind::WakeStart, EventKind::WakeDone),
        ] {
            if let Some(problem) = span_balance(trace, scope, begin, end) {
                problems.push(problem);
            }
        }
        if let Some(problem) = monotonic_timestamps(trace, scope) {
            problems.push(problem);
        }
    }
    if let Some(problem) = span_balance(
        trace,
        Scope::Global,
        EventKind::SafeModeEnter,
        EventKind::SafeModeExit,
    ) {
        problems.push(problem);
    }
    if let Some(problem) = monotonic_timestamps(trace, Scope::Global) {
        problems.push(problem);
    }
}

fn span_balance(
    trace: &TraceBuffer,
    scope: Scope,
    begin: EventKind,
    end: EventKind,
) -> Option<String> {
    let mut open = 0i64;
    for record in trace.iter().filter(|r| r.scope == scope) {
        if record.kind == begin {
            open += 1;
            if open > 1 {
                return Some(format!("{scope}: {begin:?} opened twice at {}", record.at));
            }
        } else if record.kind == end {
            open -= 1;
            if open < 0 {
                return Some(format!(
                    "{scope}: {end:?} without {begin:?} at {}",
                    record.at
                ));
            }
        }
    }
    if open != 0 {
        return Some(format!("{scope}: {open} unclosed {begin:?}"));
    }
    None
}

/// Within one scope, records must appear in non-decreasing time order:
/// each core's stall lifecycle is emitted in stall order, and the
/// controller's own monotonic-time invariant promises starts never move
/// backwards.
fn monotonic_timestamps(trace: &TraceBuffer, scope: Scope) -> Option<String> {
    let mut last: Option<u64> = None;
    for record in trace.iter().filter(|r| r.scope == scope) {
        if let Some(prev) = last {
            if record.at < prev {
                return Some(format!(
                    "{scope}: timestamp moved backwards, {} after {prev} ({:?})",
                    record.at, record.kind
                ));
            }
        }
        last = Some(record.at);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_scenario_yields_no_finding() {
        let scenario = Scenario::generate(0xC1EA, 3);
        let outcome = run_scenario(&scenario).expect("valid scenario");
        assert_eq!(outcome, None, "{outcome:?}");
    }

    /// A multi-channel, multi-shard scenario exercises the sharded
    /// crosscheck for real (effective shards > 1) and must come back
    /// clean: the engine's determinism contract holds on fuzz inputs.
    #[test]
    fn sharded_scenarios_pass_the_crosscheck() {
        let scenario = Scenario {
            cores: 8,
            channels: 4,
            shards: 3,
            ..Scenario::generate(0xC1EA, 3)
        };
        let outcome = run_scenario(&scenario).expect("valid scenario");
        assert_eq!(outcome, None, "{outcome:?}");
    }

    #[test]
    fn malformed_scenarios_error_instead_of_panicking() {
        let mut scenario = Scenario::generate(1, 1);
        scenario.trace_capacity = 0;
        assert!(run_scenario(&scenario).is_err());
    }

    #[test]
    fn panic_payloads_surface_their_message() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let formatted = catch_unwind(|| panic!("boom {}", 41 + 1)).unwrap_err();
        let literal = catch_unwind(|| panic!("plain boom")).unwrap_err();
        std::panic::set_hook(hook);
        assert_eq!(panic_text(formatted.as_ref()), "boom 42");
        assert_eq!(panic_text(literal.as_ref()), "plain boom");
    }

    #[test]
    fn finding_class_tags_round_trip() {
        for class in FindingClass::ALL {
            assert_eq!(FindingClass::from_tag(class.tag()), Some(class));
        }
        assert_eq!(FindingClass::from_tag("nonsense"), None);
    }
}
