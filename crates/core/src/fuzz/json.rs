//! A minimal JSON reader/writer for repro files.
//!
//! The build environment has no registry access, so no serde: rendering
//! follows the hand-written style of `mapg-bench`'s manifest, and this
//! module adds the inverse — a small recursive-descent parser producing a
//! [`JsonValue`] tree. Numbers keep their raw text so `u64` seeds survive
//! beyond 2^53 and floats round-trip bit-exactly through Rust's
//! shortest-representation formatting.

use core::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text.
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a number with `u64` text.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// True when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// A malformed JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing content after document"));
    }
    Ok(value)
}

fn err(at: usize, reason: impl Into<String>) -> JsonParseError {
    JsonParseError {
        at,
        reason: reason.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonParseError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{}'", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(err(*pos, format!("unexpected byte '{}'", *c as char))),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonParseError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{literal}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let raw =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "non-UTF-8 number"))?;
    if raw.parse::<f64>().is_err() {
        return Err(err(start, format!("malformed number '{raw}'")));
    }
    Ok(JsonValue::Number(raw.to_owned()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-UTF-8 \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "malformed \\u escape"))?;
                        // Repro files only ever contain BMP scalar values;
                        // reject surrogates instead of pairing them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "\\u escape is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar value.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "non-UTF-8 string content"))?;
                let c = rest.chars().next().expect("non-empty by case analysis");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonParseError> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(entries));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

/// Renders a value as a compact JSON document with stable field order.
pub fn write(value: &JsonValue) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Number(raw) => out.push_str(raw),
        JsonValue::String(s) => out.push_str(&render_string(s)),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&render_string(key));
                out.push_str(": ");
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

/// Escapes a string per RFC 8259 and wraps it in quotes.
pub fn render_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite float with shortest round-trip precision (Rust's
/// `{:?}`), so parse(render(x)) == x bit-for-bit.
///
/// # Panics
///
/// Panics on non-finite values — scenario fields are validated finite
/// before rendering.
pub fn render_f64(value: f64) -> String {
    assert!(value.is_finite(), "cannot render non-finite float {value}");
    format!("{value:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let text = r#"{"a": 1, "b": [true, null, "x\n\"y"], "c": {"d": -2.5e3}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let b = match v.get("b").unwrap() {
            JsonValue::Array(items) => items,
            other => panic!("{other:?}"),
        };
        assert_eq!(b[0].as_bool(), Some(true));
        assert!(b[1].is_null());
        assert_eq!(b[2].as_str(), Some("x\n\"y"));
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-2500.0)
        );
    }

    #[test]
    fn u64_seeds_survive_beyond_f64_precision() {
        let text = format!("{{\"seed\": {}}}", u64::MAX);
        let v = parse(&text).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 0.7f64.powi(7), f64::MAX] {
            let rendered = render_f64(x);
            let parsed = parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), x.to_bits(), "{rendered}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "tab\tquote\"back\\slash\nctrl\u{1}";
        let rendered = render_string(original);
        let parsed = parse(&rendered).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }
}
