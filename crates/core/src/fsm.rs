//! The per-core power-gating state machine.
//!
//! Tracks which power state a core is in, enforces transition legality
//! (software bugs in gating controllers manifest as illegal transitions,
//! e.g. waking a core that never slept), and accumulates per-state
//! residency — the quantity the energy ledger integrates.

use mapg_units::{Cycle, Cycles};

use core::fmt;

/// A core's power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PgState {
    /// Powered and executing (or idling ungated).
    Active,
    /// Draining/isolating on the way into sleep.
    Entering,
    /// Power-gated: virtual rail collapsed, residual leakage only.
    Sleeping,
    /// Virtual rail recharging on the way back to active.
    Waking,
}

impl fmt::Display for PgState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PgState::Active => "active",
            PgState::Entering => "entering",
            PgState::Sleeping => "sleeping",
            PgState::Waking => "waking",
        };
        f.write_str(s)
    }
}

/// Cycles accumulated in each state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateResidency {
    /// Cycles in [`PgState::Active`].
    pub active: Cycles,
    /// Cycles in [`PgState::Entering`].
    pub entering: Cycles,
    /// Cycles in [`PgState::Sleeping`].
    pub sleeping: Cycles,
    /// Cycles in [`PgState::Waking`].
    pub waking: Cycles,
}

impl StateResidency {
    /// Total cycles across all states.
    pub fn total(&self) -> Cycles {
        self.active + self.entering + self.sleeping + self.waking
    }

    /// Dumps the residency into an observability registry as
    /// `fsm_*_cycles` counters. Summed over all cores these reconcile
    /// with the trace-derived sleep spans and the gating statistics.
    pub fn record_metrics(&self, obs: &mapg_obs::ObsHandle) {
        obs.count("fsm_active_cycles", self.active.raw());
        obs.count("fsm_entering_cycles", self.entering.raw());
        obs.count("fsm_sleeping_cycles", self.sleeping.raw());
        obs.count("fsm_waking_cycles", self.waking.raw());
    }
}

/// The state machine. Legal transitions:
///
/// ```text
/// Active ──sleep──▶ Entering ──collapse──▶ Sleeping ──wake──▶ Waking ──done──▶ Active
/// ```
///
/// ```
/// use mapg::{GatingFsm, PgState};
/// use mapg_units::Cycle;
///
/// let mut fsm = GatingFsm::new();
/// fsm.begin_entry(Cycle::new(100));
/// fsm.begin_sleep(Cycle::new(106));
/// fsm.begin_wake(Cycle::new(400));
/// fsm.complete_wake(Cycle::new(420));
/// assert_eq!(fsm.state(), PgState::Active);
/// assert_eq!(fsm.residency().sleeping.raw(), 294);
/// assert_eq!(fsm.sleep_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GatingFsm {
    state: PgState,
    since: Cycle,
    residency: StateResidency,
    sleep_count: u64,
}

impl GatingFsm {
    /// A new FSM, active since cycle zero.
    pub fn new() -> Self {
        GatingFsm {
            state: PgState::Active,
            since: Cycle::ZERO,
            residency: StateResidency::default(),
            sleep_count: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> PgState {
        self.state
    }

    /// Per-state residency accumulated so far (time in the *current* state
    /// is not yet included; call [`GatingFsm::finish`] at end of run).
    pub fn residency(&self) -> &StateResidency {
        &self.residency
    }

    /// Number of completed sleep entries.
    pub fn sleep_count(&self) -> u64 {
        self.sleep_count
    }

    /// Active → Entering.
    ///
    /// # Panics
    ///
    /// Panics on an illegal transition or a time regression.
    pub fn begin_entry(&mut self, at: Cycle) {
        unwrap_transition(self.try_begin_entry(at));
    }

    /// Active → Entering, reporting failure instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the violation message on an illegal transition or a time
    /// regression, leaving the FSM unchanged.
    pub fn try_begin_entry(&mut self, at: Cycle) -> Result<(), String> {
        self.transition(PgState::Active, PgState::Entering, at)?;
        self.sleep_count += 1;
        Ok(())
    }

    /// Entering → Sleeping.
    ///
    /// # Panics
    ///
    /// Panics on an illegal transition or a time regression.
    pub fn begin_sleep(&mut self, at: Cycle) {
        unwrap_transition(self.try_begin_sleep(at));
    }

    /// Entering → Sleeping, reporting failure instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the violation message on an illegal transition or a time
    /// regression, leaving the FSM unchanged.
    pub fn try_begin_sleep(&mut self, at: Cycle) -> Result<(), String> {
        self.transition(PgState::Entering, PgState::Sleeping, at)
    }

    /// Sleeping → Waking.
    ///
    /// # Panics
    ///
    /// Panics on an illegal transition or a time regression.
    pub fn begin_wake(&mut self, at: Cycle) {
        unwrap_transition(self.try_begin_wake(at));
    }

    /// Sleeping → Waking, reporting failure instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the violation message on an illegal transition or a time
    /// regression, leaving the FSM unchanged.
    pub fn try_begin_wake(&mut self, at: Cycle) -> Result<(), String> {
        self.transition(PgState::Sleeping, PgState::Waking, at)
    }

    /// Waking → Active.
    ///
    /// # Panics
    ///
    /// Panics on an illegal transition or a time regression.
    pub fn complete_wake(&mut self, at: Cycle) {
        unwrap_transition(self.try_complete_wake(at));
    }

    /// Waking → Active, reporting failure instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the violation message on an illegal transition or a time
    /// regression, leaving the FSM unchanged.
    pub fn try_complete_wake(&mut self, at: Cycle) -> Result<(), String> {
        self.transition(PgState::Waking, PgState::Active, at)
    }

    /// Closes the books at end of run: accumulates the residency of the
    /// final state up to `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last transition.
    pub fn finish(&mut self, at: Cycle) {
        unwrap_transition(self.try_finish(at));
    }

    /// Closes the books, reporting a time regression instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the violation message if `at` precedes the last transition,
    /// leaving the FSM unchanged.
    pub fn try_finish(&mut self, at: Cycle) -> Result<(), String> {
        self.accumulate(at)?;
        self.since = at;
        Ok(())
    }

    fn transition(&mut self, expect: PgState, next: PgState, at: Cycle) -> Result<(), String> {
        if self.state != expect {
            return Err(format!(
                "illegal transition to {next} from {} (expected {expect})",
                self.state
            ));
        }
        self.accumulate(at)?;
        self.state = next;
        self.since = at;
        Ok(())
    }

    fn accumulate(&mut self, at: Cycle) -> Result<(), String> {
        if at < self.since {
            return Err(format!("time regression: {at} before {}", self.since));
        }
        let span = at - self.since;
        match self.state {
            PgState::Active => self.residency.active += span,
            PgState::Entering => self.residency.entering += span,
            PgState::Sleeping => self.residency.sleeping += span,
            PgState::Waking => self.residency.waking += span,
        }
        Ok(())
    }
}

/// Panics with the violation message, preserving the documented panic
/// behaviour of the non-`try` methods.
fn unwrap_transition(result: Result<(), String>) {
    if let Err(message) = result {
        panic!("{message}");
    }
}

impl Default for GatingFsm {
    fn default() -> Self {
        GatingFsm::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cycle_residency() {
        let mut fsm = GatingFsm::new();
        fsm.begin_entry(Cycle::new(10)); // active: 0..10
        fsm.begin_sleep(Cycle::new(13)); // entering: 10..13
        fsm.begin_wake(Cycle::new(113)); // sleeping: 13..113
        fsm.complete_wake(Cycle::new(123)); // waking: 113..123
        fsm.finish(Cycle::new(200)); // active: 123..200

        let r = *fsm.residency();
        assert_eq!(r.active, Cycles::new(10 + 77));
        assert_eq!(r.entering, Cycles::new(3));
        assert_eq!(r.sleeping, Cycles::new(100));
        assert_eq!(r.waking, Cycles::new(10));
        assert_eq!(r.total(), Cycles::new(200));
        assert_eq!(fsm.sleep_count(), 1);
        assert_eq!(fsm.state(), PgState::Active);
    }

    #[test]
    fn repeated_cycles_accumulate() {
        let mut fsm = GatingFsm::new();
        let mut t = 0u64;
        for _ in 0..5 {
            fsm.begin_entry(Cycle::new(t + 10));
            fsm.begin_sleep(Cycle::new(t + 13));
            fsm.begin_wake(Cycle::new(t + 50));
            fsm.complete_wake(Cycle::new(t + 60));
            t += 100;
        }
        assert_eq!(fsm.sleep_count(), 5);
        assert_eq!(fsm.residency().sleeping, Cycles::new(5 * 37));
        assert_eq!(fsm.residency().entering, Cycles::new(15));
    }

    #[test]
    #[should_panic(expected = "illegal transition")]
    fn cannot_wake_from_active() {
        let mut fsm = GatingFsm::new();
        fsm.begin_wake(Cycle::new(5));
    }

    #[test]
    #[should_panic(expected = "illegal transition")]
    fn cannot_sleep_twice() {
        let mut fsm = GatingFsm::new();
        fsm.begin_entry(Cycle::new(1));
        fsm.begin_sleep(Cycle::new(2));
        fsm.begin_sleep(Cycle::new(3));
    }

    #[test]
    #[should_panic(expected = "time regression")]
    fn time_cannot_go_backwards() {
        let mut fsm = GatingFsm::new();
        fsm.begin_entry(Cycle::new(100));
        fsm.begin_sleep(Cycle::new(50));
    }

    #[test]
    fn zero_length_states_are_legal() {
        let mut fsm = GatingFsm::new();
        fsm.begin_entry(Cycle::new(10));
        fsm.begin_sleep(Cycle::new(10));
        fsm.begin_wake(Cycle::new(10));
        fsm.complete_wake(Cycle::new(10));
        assert_eq!(fsm.residency().total(), Cycles::new(10));
    }

    #[test]
    fn try_variants_report_instead_of_panicking() {
        let mut fsm = GatingFsm::new();
        let err = fsm.try_begin_wake(Cycle::new(5)).unwrap_err();
        assert!(err.contains("illegal transition"), "{err}");
        assert_eq!(fsm.state(), PgState::Active, "FSM unchanged on error");

        fsm.try_begin_entry(Cycle::new(100)).unwrap();
        let err = fsm.try_begin_sleep(Cycle::new(50)).unwrap_err();
        assert!(err.contains("time regression"), "{err}");
        assert_eq!(fsm.state(), PgState::Entering, "FSM unchanged on error");
        assert_eq!(fsm.sleep_count(), 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(PgState::Active.to_string(), "active");
        assert_eq!(PgState::Entering.to_string(), "entering");
        assert_eq!(PgState::Sleeping.to_string(), "sleeping");
        assert_eq!(PgState::Waking.to_string(), "waking");
    }
}
