//! Multi-seed replication: statistical confidence for simulation claims.
//!
//! A single seeded run is deterministic but still one draw from the
//! workload generator's distribution. Replicating a configuration across
//! seeds and reporting mean ± deviation separates real policy effects from
//! generator noise — the hygiene behind experiment R-T4.

use core::fmt;

use crate::policy::PolicyKind;
use crate::report::RunReport;
use crate::sim::{SimConfig, Simulation};

/// Summary statistics of one scalar metric across replicas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (zero for a single replica).
    pub stdev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl MetricSummary {
    /// Summarizes a sample set.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        assert!(
            samples.iter().all(|s| s.is_finite()),
            "samples must be finite"
        );
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stdev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        MetricSummary {
            mean,
            stdev,
            min,
            max,
            n,
        }
    }

    /// Half-width of the normal-approximation 95 % confidence interval on
    /// the mean (`1.96 · s/√n`).
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stdev / (self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation (`stdev / |mean|`); infinity when the mean
    /// is zero but the deviation is not.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            if self.stdev == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.stdev / self.mean.abs()
        }
    }
}

impl fmt::Display for MetricSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={}, range {:.4}..{:.4})",
            self.mean, self.stdev, self.n, self.min, self.max
        )
    }
}

/// The reports of one configuration replicated across seeds.
///
/// ```
/// use mapg::{PolicyKind, Replication, SimConfig};
///
/// let config = SimConfig::default().with_instructions(20_000);
/// let replicas = Replication::run(config, PolicyKind::Mapg, 3);
/// let ipc = replicas.summarize(|r| r.ipc());
/// assert_eq!(ipc.n, 3);
/// assert!(ipc.mean > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Replication {
    reports: Vec<RunReport>,
}

impl Replication {
    /// Runs `config` under `policy` once per seed (`base_seed + i`).
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn run(config: SimConfig, policy: PolicyKind, replicas: usize) -> Self {
        assert!(replicas > 0, "need at least one replica");
        let reports = (0..replicas)
            .map(|i| {
                let seeded = config.clone().with_seed(1_000 + 977 * i as u64);
                Simulation::new(seeded, policy).run()
            })
            .collect();
        Replication { reports }
    }

    /// The individual reports (seed order).
    pub fn reports(&self) -> &[RunReport] {
        &self.reports
    }

    /// Summarizes a scalar metric across replicas.
    pub fn summarize<F: Fn(&RunReport) -> f64>(&self, metric: F) -> MetricSummary {
        let samples: Vec<f64> = self.reports.iter().map(metric).collect();
        MetricSummary::from_samples(&samples)
    }

    /// Summarizes a *paired* metric against a baseline replication with the
    /// same seeds (e.g. per-seed energy savings). Pairing removes the
    /// between-seed workload variance from the comparison.
    ///
    /// # Panics
    ///
    /// Panics if the replica counts differ.
    pub fn summarize_paired<F>(&self, baseline: &Replication, metric: F) -> MetricSummary
    where
        F: Fn(&RunReport, &RunReport) -> f64,
    {
        assert!(
            self.reports.len() == baseline.reports.len(),
            "paired summaries need equal replica counts"
        );
        let samples: Vec<f64> = self
            .reports
            .iter()
            .zip(&baseline.reports)
            .map(|(a, b)| metric(a, b))
            .collect();
        MetricSummary::from_samples(&samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics_are_correct() {
        let s = MetricSummary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.stdev - 1.2909944487358056).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.n, 4);
        assert!(s.ci95_halfwidth() > 0.0);
        assert!((s.cv() - s.stdev / 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = MetricSummary::from_samples(&[7.5]);
        assert_eq!(s.stdev, 0.0);
        assert_eq!(s.ci95_halfwidth(), 0.0);
        assert_eq!(s.min, s.max);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_rejected() {
        let _ = MetricSummary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_samples_rejected() {
        let _ = MetricSummary::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    fn replication_produces_distinct_but_similar_runs() {
        let config = SimConfig::default().with_instructions(20_000);
        let replicas = Replication::run(config, PolicyKind::NoGating, 4);
        assert_eq!(replicas.reports().len(), 4);
        let cycles = replicas.summarize(|r| r.makespan_cycles as f64);
        // Different seeds give different runs...
        assert!(cycles.stdev > 0.0, "seeds should differ");
        // ...but the same workload distribution: spread within 20 %.
        assert!(
            cycles.cv() < 0.2,
            "coefficient of variation too large: {}",
            cycles.cv()
        );
    }

    #[test]
    fn paired_savings_are_tighter_than_unpaired() {
        let config = SimConfig::default().with_instructions(20_000);
        let baseline = Replication::run(config.clone(), PolicyKind::NoGating, 4);
        let mapg = Replication::run(config, PolicyKind::Mapg, 4);
        let paired = mapg.summarize_paired(&baseline, |m, b| m.core_energy_savings_vs(b));
        assert!(paired.mean > 0.0, "MAPG saves energy on every seed");
        assert!(paired.min > 0.0);
    }

    #[test]
    #[should_panic(expected = "equal replica counts")]
    fn mismatched_pairing_rejected() {
        let config = SimConfig::default().with_instructions(10_000);
        let a = Replication::run(config.clone(), PolicyKind::NoGating, 2);
        let b = Replication::run(config, PolicyKind::Mapg, 3);
        let _ = b.summarize_paired(&a, |x, y| x.perf_overhead_vs(y));
    }

    #[test]
    fn display_form() {
        let s = MetricSummary::from_samples(&[1.0, 2.0]);
        let text = s.to_string();
        assert!(text.contains("n=2"), "{text}");
    }
}
