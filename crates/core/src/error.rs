//! The crate's error type for user-supplied configuration.
//!
//! The builder APIs keep their documented panicking behaviour (a bad
//! hard-coded config in a benchmark *should* abort), but every validation
//! also exists as a fallible `try_*` method returning [`MapgError`], which
//! the `mapgsim` CLI and other front-ends use to turn bad user input into
//! error messages instead of panics.

use core::fmt;

/// Why a user-supplied configuration or name was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapgError {
    /// A configuration value is out of range or inconsistent. The message
    /// is the same text the corresponding panicking builder would abort
    /// with.
    InvalidConfig(String),
    /// A name (workload, policy, fault-plan preset) did not match anything
    /// known.
    UnknownName {
        /// What kind of name was looked up ("workload", "policy", ...).
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
}

impl MapgError {
    /// Shorthand for an [`MapgError::InvalidConfig`].
    pub fn invalid(message: impl Into<String>) -> Self {
        MapgError::InvalidConfig(message.into())
    }
}

impl fmt::Display for MapgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapgError::InvalidConfig(message) => f.write_str(message),
            MapgError::UnknownName { kind, name } => {
                write!(f, "unknown {kind} '{name}'")
            }
        }
    }
}

impl std::error::Error for MapgError {}

impl From<mapg_cpu::RunError> for MapgError {
    /// Cluster/core run rejections surface as configuration errors: every
    /// one of them (zero instructions, no cores) is a bad user-supplied
    /// value, phrased with the same message the panicking path would use.
    fn from(e: mapg_cpu::RunError) -> Self {
        MapgError::invalid(e.to_string())
    }
}

impl From<mapg_mem::ConfigError> for MapgError {
    /// Memory-hierarchy validation failures (zero DRAM banks, zero MSHRs,
    /// bad fault plans) surface as configuration errors with the same
    /// message text the panicking constructors abort with.
    fn from(e: mapg_mem::ConfigError) -> Self {
        MapgError::invalid(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_errors_convert_to_invalid_config() {
        let e = MapgError::from(mapg_cpu::RunError::ZeroInstructions);
        assert_eq!(e, MapgError::invalid("must run at least one instruction"));
    }

    #[test]
    fn memory_errors_convert_to_invalid_config() {
        let e = MapgError::from(mapg_mem::ConfigError::ZeroBanks);
        assert_eq!(e, MapgError::invalid("DRAM needs at least one bank"));
        let e = MapgError::from(mapg_mem::ConfigError::ZeroMshrs);
        assert_eq!(e, MapgError::invalid("MSHR capacity must be non-zero"));
    }

    #[test]
    fn display_preserves_message() {
        let e = MapgError::invalid("need at least one core");
        assert_eq!(e.to_string(), "need at least one core");
        let e = MapgError::UnknownName {
            kind: "policy",
            name: "warp-drive".to_owned(),
        };
        assert_eq!(e.to_string(), "unknown policy 'warp-drive'");
    }
}
