//! Suite runner: the workload-suite × policy-set experiment driver shared
//! by the benches, examples and integration tests.

use mapg_pool::{JobOutcome, Pool, Supervisor};
use mapg_trace::{WorkloadProfile, WorkloadSuite};

use crate::error::MapgError;
use crate::policy::PolicyKind;
use crate::report::{geometric_mean, RunReport};
use crate::sim::{SimConfig, Simulation};

/// Runs every (profile, policy) combination of a suite and collects the
/// reports.
///
/// The matrix is fanned out across a work-sharing thread pool
/// ([`mapg_pool::Pool`]); because every simulation is a seeded pure
/// function, the matrix is identical bit-for-bit at any job count — the
/// pool's ordered map keeps reports in (workload-major, policy-minor)
/// submission order regardless of completion order.
///
/// ```
/// use mapg::{PolicyKind, SimConfig, SuiteRunner};
/// use mapg_trace::WorkloadSuite;
///
/// let runner = SuiteRunner::new(
///     WorkloadSuite::extremes(),
///     SimConfig::default().with_instructions(20_000),
/// );
/// let matrix = runner.run(&[PolicyKind::NoGating, PolicyKind::Mapg]);
/// assert_eq!(matrix.reports().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SuiteRunner {
    suite: WorkloadSuite,
    base: SimConfig,
    jobs: Option<usize>,
}

impl SuiteRunner {
    /// Creates a runner; `base` supplies everything but the profile.
    ///
    /// Parallelism defaults to [`mapg_pool::default_jobs`] (available
    /// parallelism, or the ambient [`mapg_pool::with_default_jobs`]
    /// override); pin it explicitly with [`with_jobs`](Self::with_jobs).
    pub fn new(suite: WorkloadSuite, base: SimConfig) -> Self {
        SuiteRunner {
            suite,
            base,
            jobs: None,
        }
    }

    /// Pins the worker count used by [`run`](Self::run); `1` forces the
    /// serial path.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is zero.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        assert!(jobs > 0, "job count must be at least 1");
        self.jobs = Some(jobs);
        self
    }

    /// The worker count [`run`](Self::run) will use.
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or_else(mapg_pool::default_jobs)
    }

    /// The suite being run.
    pub fn suite(&self) -> &WorkloadSuite {
        &self.suite
    }

    /// Runs all combinations, in parallel across [`jobs`](Self::jobs)
    /// workers.
    pub fn run(&self, policies: &[PolicyKind]) -> SuiteMatrix {
        let combos: Vec<(WorkloadProfile, PolicyKind)> = self
            .suite
            .iter()
            .flat_map(|profile| policies.iter().map(|&policy| (profile.clone(), policy)))
            .collect();
        let reports = Pool::new(self.jobs()).map(combos, |(profile, policy)| {
            let config = self.base.clone().with_profile(profile);
            Simulation::new(config, policy).run()
        });
        SuiteMatrix { reports }
    }

    /// Runs all combinations through the supervised engine: a panicking
    /// or deadline-overrunning combination is quarantined instead of
    /// taking the whole matrix down.
    ///
    /// The `supervisor` supplies the worker count, deadline, retry and
    /// cancellation policy (this runner's own job pin is not consulted).
    /// A fully successful matrix is bit-identical to [`run`](Self::run).
    ///
    /// ```
    /// use mapg::{PolicyKind, SimConfig, SuiteRunner};
    /// use mapg_pool::Supervisor;
    /// use mapg_trace::WorkloadSuite;
    ///
    /// let runner = SuiteRunner::new(
    ///     WorkloadSuite::extremes(),
    ///     SimConfig::default().with_instructions(20_000),
    /// );
    /// let matrix = runner
    ///     .run_supervised(&[PolicyKind::NoGating, PolicyKind::Mapg], &Supervisor::new(2))
    ///     .expect("pure simulations do not fail");
    /// assert_eq!(matrix.reports().len(), 4);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`MapgError::InvalidConfig`] naming every quarantined
    /// (workload, policy) combination when any job failed; a partial
    /// matrix is never returned.
    pub fn run_supervised(
        &self,
        policies: &[PolicyKind],
        supervisor: &Supervisor,
    ) -> Result<SuiteMatrix, MapgError> {
        let combos: Vec<(WorkloadProfile, PolicyKind)> = self
            .suite
            .iter()
            .flat_map(|profile| policies.iter().map(|&policy| (profile.clone(), policy)))
            .collect();
        let labels: Vec<(String, PolicyKind)> = combos
            .iter()
            .map(|(profile, policy)| (profile.name().to_owned(), *policy))
            .collect();
        let base = self.base.clone();
        let outcomes = supervisor.map_supervised(combos, move |(profile, policy), _ctx| {
            let config = base.clone().with_profile(profile.clone());
            Simulation::new(config, *policy).run()
        });
        let mut reports = Vec::with_capacity(outcomes.len());
        let mut quarantined: Vec<String> = Vec::new();
        for ((workload, policy), job) in labels.into_iter().zip(outcomes) {
            match job.outcome {
                JobOutcome::Ok(report) => reports.push(report),
                outcome => quarantined.push(format!(
                    "{workload}/{policy:?}: {} after {} attempt(s)",
                    outcome.label(),
                    job.attempts
                )),
            }
        }
        if quarantined.is_empty() {
            Ok(SuiteMatrix { reports })
        } else {
            Err(MapgError::invalid(format!(
                "supervised suite quarantined {} combination(s): {}",
                quarantined.len(),
                quarantined.join("; ")
            )))
        }
    }
}

/// The (workload × policy) report matrix with comparison helpers.
#[derive(Debug, Clone)]
pub struct SuiteMatrix {
    reports: Vec<RunReport>,
}

impl SuiteMatrix {
    /// All reports, in (workload-major, policy-minor) order.
    pub fn reports(&self) -> &[RunReport] {
        &self.reports
    }

    /// The report for a (workload, policy) pair.
    pub fn get(&self, workload: &str, policy: &str) -> Option<&RunReport> {
        self.reports
            .iter()
            .find(|r| r.workload == workload && r.policy == policy)
    }

    /// Distinct workload names, in first-seen order.
    pub fn workloads(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for r in &self.reports {
            if !names.contains(&r.workload.as_str()) {
                names.push(&r.workload);
            }
        }
        names
    }

    /// Distinct policy names, in first-seen order.
    pub fn policies(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for r in &self.reports {
            if !names.contains(&r.policy) {
                names.push(r.policy);
            }
        }
        names
    }

    /// Geometric-mean *normalized core energy* of `policy` relative to
    /// `baseline` across workloads (`0.82` = 18 % geomean savings).
    ///
    /// # Panics
    ///
    /// Panics if either policy is missing for some workload.
    pub fn geomean_normalized_energy(&self, policy: &str, baseline: &str) -> f64 {
        geometric_mean(self.workloads().iter().map(|w| {
            let p = self.get(w, policy).expect("policy report missing");
            let b = self.get(w, baseline).expect("baseline report missing");
            p.core_energy() / b.core_energy()
        }))
    }

    /// Geometric-mean normalized runtime of `policy` relative to
    /// `baseline` (`1.01` = 1 % geomean slowdown).
    ///
    /// # Panics
    ///
    /// Panics if either policy is missing for some workload.
    pub fn geomean_normalized_runtime(&self, policy: &str, baseline: &str) -> f64 {
        geometric_mean(self.workloads().iter().map(|w| {
            let p = self.get(w, policy).expect("policy report missing");
            let b = self.get(w, baseline).expect("baseline report missing");
            p.makespan_cycles as f64 / b.makespan_cycles as f64
        }))
    }

    /// Geometric-mean normalized EDP of `policy` relative to `baseline`.
    ///
    /// # Panics
    ///
    /// Panics if either policy is missing for some workload.
    pub fn geomean_normalized_edp(&self, policy: &str, baseline: &str) -> f64 {
        geometric_mean(self.workloads().iter().map(|w| {
            let p = self.get(w, policy).expect("policy report missing");
            let b = self.get(w, baseline).expect("baseline report missing");
            p.edp() / b.edp()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapg_trace::WorkloadSuite;

    fn tiny_runner() -> SuiteRunner {
        SuiteRunner::new(
            WorkloadSuite::extremes(),
            SimConfig::default().with_instructions(30_000),
        )
    }

    #[test]
    fn matrix_covers_all_combinations() {
        let matrix = tiny_runner().run(&[
            PolicyKind::NoGating,
            PolicyKind::Mapg,
            PolicyKind::MapgOracle,
        ]);
        assert_eq!(matrix.reports().len(), 6);
        assert_eq!(matrix.workloads().len(), 2);
        assert_eq!(matrix.policies().len(), 3);
        assert!(matrix.get("mem_bound", "mapg").is_some());
        assert!(matrix.get("mem_bound", "nonexistent").is_none());
    }

    #[test]
    fn geomeans_are_sensible() {
        let matrix = tiny_runner().run(&[PolicyKind::NoGating, PolicyKind::Mapg]);
        let energy = matrix.geomean_normalized_energy("mapg", "no-gating");
        let runtime = matrix.geomean_normalized_runtime("mapg", "no-gating");
        let edp = matrix.geomean_normalized_edp("mapg", "no-gating");
        assert!(energy < 1.0, "MAPG should save energy: {energy}");
        assert!(runtime < 1.10, "runtime should stay close: {runtime}");
        assert!(edp < 1.05, "EDP should not blow up: {edp}");
    }

    #[test]
    fn parallel_matrix_is_bit_identical_to_serial() {
        let policies = [
            PolicyKind::NoGating,
            PolicyKind::Mapg,
            PolicyKind::NaiveOnMiss,
        ];
        let serial = tiny_runner().with_jobs(1).run(&policies);
        let parallel = tiny_runner().with_jobs(8).run(&policies);
        assert_eq!(serial.reports(), parallel.reports());
    }

    #[test]
    fn ambient_default_jobs_override_is_honoured() {
        let runner = tiny_runner();
        let pinned = mapg_pool::with_default_jobs(3, || runner.jobs());
        assert_eq!(pinned, 3);
        assert_eq!(runner.clone().with_jobs(5).jobs(), 5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_jobs_rejected() {
        let _ = tiny_runner().with_jobs(0);
    }

    #[test]
    fn supervised_matrix_is_bit_identical_to_plain_run() {
        let policies = [PolicyKind::NoGating, PolicyKind::Mapg];
        let plain = tiny_runner().with_jobs(2).run(&policies);
        let supervised = tiny_runner()
            .run_supervised(&policies, &Supervisor::new(2))
            .expect("pure simulations do not fail");
        assert_eq!(plain.reports(), supervised.reports());
    }

    #[test]
    fn baseline_normalized_to_itself_is_unity() {
        let matrix = tiny_runner().run(&[PolicyKind::NoGating]);
        let unity = matrix.geomean_normalized_energy("no-gating", "no-gating");
        assert!((unity - 1.0).abs() < 1e-12);
    }
}
