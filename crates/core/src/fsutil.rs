//! Crash-safe file writes.
//!
//! Every artifact the harness persists (manifests, journals, repro
//! files, traces, metrics, bench records) goes through
//! [`write_atomic`]: the bytes land in a sibling `*.tmp` file which is
//! fsync'd and then renamed over the target. A crash — including
//! SIGKILL — mid-write therefore never leaves a truncated JSON at the
//! final path; at worst it leaves a stale `*.tmp` that the next writer
//! overwrites and that readers (e.g. journal resume) ignore.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The sibling temp path `write_atomic` stages into: `<file>.tmp` in
/// the same directory (same filesystem, so the rename is atomic).
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_owned()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `contents` to `path` atomically: write `<path>.tmp`, fsync,
/// rename over `path`, then best-effort fsync the directory.
///
/// # Errors
///
/// Returns the underlying I/O error when the temp file cannot be
/// created, written, synced, or renamed into place.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    let mut file = File::create(&tmp)?;
    file.write_all(contents)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    // Durability of the rename itself needs the directory synced; not
    // all platforms/filesystems support opening a directory for sync,
    // so failures here are ignored (the rename is still atomic).
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(dir) = File::open(dir) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mapg-fsutil-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_land_and_tmp_is_gone() {
        let dir = temp_dir("basic");
        let path = dir.join("out.json");
        write_atomic(&path, b"{\"ok\": true}\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"ok\": true}\n");
        assert!(
            !tmp_path(&path).exists(),
            "temp file should be renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrites_are_atomic_replacements() {
        let dir = temp_dir("overwrite");
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A stale `*.tmp` left by a crashed writer is simply overwritten
    /// by the next atomic write and never shadows the real file.
    #[test]
    fn stale_tmp_files_are_overwritten() {
        let dir = temp_dir("stale");
        let path = dir.join("out.json");
        std::fs::write(tmp_path(&path), b"{\"truncat").unwrap();
        write_atomic(&path, b"clean").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"clean");
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_an_error() {
        let path = Path::new("/nonexistent-dir/out.json");
        assert!(write_atomic(path, b"x").is_err());
    }

    #[test]
    fn tmp_path_is_a_sibling() {
        assert_eq!(
            tmp_path(Path::new("/a/b/manifest.json")),
            PathBuf::from("/a/b/manifest.json.tmp")
        );
    }
}
