//! Crash-safe file writes.
//!
//! Every artifact the harness persists (manifests, journals, repro
//! files, traces, metrics, bench records) goes through
//! [`write_atomic`]: the bytes land in a sibling temp file which is
//! fsync'd and then renamed over the target. A crash — including
//! SIGKILL — mid-write therefore never leaves a truncated JSON at the
//! final path; at worst it leaves a stale `*.tmp` that readers (e.g.
//! journal resume) ignore.
//!
//! The temp name is unique per (process, write): `<file>.<pid>.<n>.tmp`
//! with `n` drawn from a process-wide counter. Two concurrent writers
//! targeting the same final path therefore never share a staging file —
//! each rename installs one writer's *complete* payload, and the last
//! rename wins whole. (The original fixed `<file>.tmp` name let one
//! writer truncate another's staging file mid-sync, or rename a
//! half-written file into place.) On any error the temp file is removed
//! so failed writes leave no strays behind.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide staging-file counter: distinguishes concurrent writers
/// (threads) within one process; the pid distinguishes processes.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// True when `name` looks like a `write_atomic` staging file
/// (`*.tmp`). Readers that scan directories (journal resume, golden
/// stray-file checks) use this to ignore leftovers from writers that
/// were killed mid-write.
pub fn is_tmp_name(name: &str) -> bool {
    name.ends_with(".tmp")
}

/// A unique sibling staging path for one atomic write of `path`:
/// `<file>.<pid>.<counter>.tmp` in the same directory (same
/// filesystem, so the rename is atomic).
fn unique_tmp_path(path: &Path) -> PathBuf {
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut name = path.file_name().map(|n| n.to_owned()).unwrap_or_default();
    name.push(format!(".{}.{n}.tmp", std::process::id()));
    path.with_file_name(name)
}

/// Writes `contents` to `path` atomically: write a uniquely named
/// sibling `*.tmp`, fsync, rename over `path`, then best-effort fsync
/// the directory.
///
/// Concurrent writers to the same `path` are safe: each stages into its
/// own temp file, so the final file is always exactly one writer's
/// complete payload (whichever rename lands last).
///
/// # Errors
///
/// Returns the underlying I/O error when the temp file cannot be
/// created, written, synced, or renamed into place. The temp file is
/// removed on every error path.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = unique_tmp_path(path);
    let stage = || -> io::Result<()> {
        let mut file = File::create(&tmp)?;
        file.write_all(contents)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    };
    if let Err(error) = stage() {
        // Failed writes must not leave staging strays behind (the
        // golden suite's stray-file check would flag them, and a pile
        // of orphaned temps is operator noise under a daemon).
        let _ = std::fs::remove_file(&tmp);
        return Err(error);
    }
    // Durability of the rename itself needs the directory synced; not
    // all platforms/filesystems support opening a directory for sync,
    // so failures here are ignored (the rename is still atomic).
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(dir) = File::open(dir) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mapg-fsutil-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Files other than `path` itself left in `dir` (staging strays).
    fn strays(dir: &Path, keep: &Path) -> Vec<String> {
        std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p != keep)
            .map(|p| p.display().to_string())
            .collect()
    }

    #[test]
    fn writes_land_and_tmp_is_gone() {
        let dir = temp_dir("basic");
        let path = dir.join("out.json");
        write_atomic(&path, b"{\"ok\": true}\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"ok\": true}\n");
        assert_eq!(strays(&dir, &path), Vec::<String>::new());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrites_are_atomic_replacements() {
        let dir = temp_dir("overwrite");
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A stale `*.tmp` left by a crashed writer never shadows the real
    /// file and is recognizable by name so directory scans can skip it.
    #[test]
    fn stale_tmp_files_do_not_shadow_the_target() {
        let dir = temp_dir("stale");
        let path = dir.join("out.json");
        let stale = dir.join(format!("out.json.{}.999999.tmp", std::process::id()));
        std::fs::write(&stale, b"{\"truncat").unwrap();
        write_atomic(&path, b"clean").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"clean");
        assert!(is_tmp_name(stale.file_name().unwrap().to_str().unwrap()));
        assert!(!is_tmp_name("out.json"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_an_error() {
        let path = Path::new("/nonexistent-dir/out.json");
        assert!(write_atomic(path, b"x").is_err());
    }

    /// Error paths must clean their staging file up: a failed write
    /// into a read-only directory leaves nothing behind.
    #[cfg(unix)]
    #[test]
    fn failed_writes_leave_no_strays() {
        use std::os::unix::fs::PermissionsExt;
        let dir = temp_dir("errclean");
        // The temp file is created, then the rename target is a
        // directory — rename fails, temp must be removed.
        let target = dir.join("occupied");
        std::fs::create_dir(&target).unwrap();
        assert!(write_atomic(&target, b"x").is_err());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != "occupied")
            .collect();
        assert_eq!(leftovers, Vec::<String>::new(), "stray staging files");
        // And a directory we cannot create the temp file in at all.
        let sealed = dir.join("sealed");
        std::fs::create_dir(&sealed).unwrap();
        std::fs::set_permissions(&sealed, std::fs::Permissions::from_mode(0o555)).unwrap();
        let denied = write_atomic(&sealed.join("out.json"), b"x");
        std::fs::set_permissions(&sealed, std::fs::Permissions::from_mode(0o755)).unwrap();
        if denied.is_err() {
            // (Root containers may ignore the mode bits; only assert
            // cleanliness when the write actually failed.)
            assert_eq!(
                std::fs::read_dir(&sealed).unwrap().count(),
                0,
                "stray staging files in sealed dir"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The concurrent-writer hammer: many threads, each repeatedly
    /// writing its own distinctive payload to the *same* path. At every
    /// instant — and at the end — the file must be exactly one writer's
    /// complete payload, never a mix or a truncation, and no staging
    /// strays may remain.
    #[test]
    fn concurrent_writers_never_interleave() {
        const WRITERS: usize = 8;
        const ROUNDS: usize = 40;
        let dir = temp_dir("hammer");
        let path = dir.join("contended.json");
        let payloads: Vec<Vec<u8>> = (0..WRITERS)
            .map(|w| {
                // Distinctive, multi-KiB, single-byte-fillable payload:
                // any mix of two writers or any truncation is detectable.
                let byte = b'a' + w as u8;
                let mut p = format!("writer-{w}:").into_bytes();
                p.extend(std::iter::repeat_n(byte, 4096));
                p.push(b'\n');
                p
            })
            .collect();

        std::thread::scope(|scope| {
            for payload in &payloads {
                scope.spawn(|| {
                    for _ in 0..ROUNDS {
                        write_atomic(&path, payload).unwrap();
                        // Every observable state must be one complete payload.
                        let seen = std::fs::read(&path).unwrap();
                        assert!(
                            payloads.iter().any(|p| p == &seen),
                            "file is not any single writer's payload (len {})",
                            seen.len()
                        );
                    }
                });
            }
        });

        let final_bytes = std::fs::read(&path).unwrap();
        assert!(payloads.iter().any(|p| p == &final_bytes));
        assert_eq!(
            strays(&dir, &path),
            Vec::<String>::new(),
            "staging files left behind"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unique_tmp_paths_are_siblings_and_unique() {
        let a = unique_tmp_path(Path::new("/a/b/manifest.json"));
        let b = unique_tmp_path(Path::new("/a/b/manifest.json"));
        assert_ne!(a, b, "two writes must never share a staging file");
        for p in [&a, &b] {
            assert_eq!(p.parent(), Some(Path::new("/a/b")));
            let name = p.file_name().unwrap().to_str().unwrap();
            assert!(name.starts_with("manifest.json."));
            assert!(is_tmp_name(name));
        }
    }
}
