//! The gating controller: executes policy decisions, charges energy,
//! drives the per-core FSMs, and reports resume times to the cores.

use mapg_cpu::{StallHandler, StallInfo};
use mapg_obs::{EventKind, FaultKind, ObsHandle, Scope};
use mapg_power::{EnergyAccount, EnergyCategory, PgCircuitDesign, TechnologyParams};
use mapg_units::{Cycle, Cycles, Hertz, Watts};

use crate::faults::{FaultInjector, FaultPlan, FaultStats};
use crate::fsm::{GatingFsm, PgState};
use crate::invariants::{InvariantChecker, InvariantKind, InvariantReport, InvariantViolation};
use crate::policy::{GatingPolicy, PolicyContext, StallAction};
use crate::timeline::Timeline;
use crate::tokens::TokenManager;
use crate::watchdog::{DegradationStats, Watchdog, WatchdogConfig};

use core::fmt;

/// Gating activity counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatingStats {
    /// Stalls presented to the policy.
    pub stalls: u64,
    /// Stalls that were power-gated.
    pub gated: u64,
    /// Cycles spent in the collapsed (sleeping) state.
    pub gated_cycles: u64,
    /// Wake-up cycles that landed past data arrival (performance penalty).
    pub penalty_cycles: u64,
    /// Gated stalls whose wake finished after the data arrived.
    pub overrun_wakes: u64,
    /// Gated stalls whose wake finished before the data arrived (idle
    /// tail; energy opportunity lost, no performance cost).
    pub early_wakes: u64,
    /// Cycles of powered idling between wake completion and data arrival.
    pub idle_tail_cycles: u64,
    /// Wake-ups delayed waiting for a token.
    pub token_delayed: u64,
    /// Total cycles of token-wait delay.
    pub token_delay_cycles: u64,
    /// Re-gates: the core woke early (mis-predicted duration), found its
    /// data still far away, and went back to sleep until the response
    /// signal (nap chaining).
    pub regates: u64,
}

impl GatingStats {
    /// Fraction of stalls that were gated.
    pub fn gated_fraction(&self) -> f64 {
        if self.stalls == 0 {
            0.0
        } else {
            self.gated as f64 / self.stalls as f64
        }
    }

    /// Mean sleep residency of gated stalls, in cycles.
    pub fn mean_residency(&self) -> f64 {
        if self.gated == 0 {
            0.0
        } else {
            self.gated_cycles as f64 / self.gated as f64
        }
    }
}

impl fmt::Display for GatingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} stalls gated ({:.1}%), mean residency {:.0} cyc, {} penalty cyc",
            self.gated,
            self.stalls,
            self.gated_fraction() * 100.0,
            self.mean_residency(),
            self.penalty_cycles
        )
    }
}

/// Static controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Technology the cores are built in.
    pub tech: TechnologyParams,
    /// The power-gating circuit design point.
    pub circuit: PgCircuitDesign,
    /// Core clock (converts cycles to seconds for energy integration).
    pub clock: Hertz,
    /// Wake-token capacity; `None` disables token limiting.
    pub tokens: Option<usize>,
    /// Whether a core that woke early (mis-predicted stall duration) may
    /// re-enter sleep until the memory response arrives. Real controllers
    /// do this — the response wire is the reactive wake trigger — at the
    /// cost of one extra transition and a reactive-wake penalty.
    pub regate_on_early_wake: bool,
    /// Controller-side fault-injection schedule (no-op by default).
    pub fault_plan: FaultPlan,
    /// Seed for the fault-draw stream (domain-separated internally, so the
    /// simulation seed can be reused directly).
    pub fault_seed: u64,
    /// Safe-mode watchdog; `None` disables degradation entirely.
    pub watchdog: Option<WatchdogConfig>,
}

impl ControllerConfig {
    /// Baseline: 45 nm technology, the MAPG fast-wakeup circuit, 2 GHz,
    /// no token limiting, no faults, no watchdog.
    pub fn baseline() -> Self {
        let tech = TechnologyParams::bulk_45nm();
        ControllerConfig {
            circuit: PgCircuitDesign::fast_wakeup(&tech),
            clock: Hertz::from_ghz(2.0),
            tokens: None,
            regate_on_early_wake: true,
            fault_plan: FaultPlan::none(),
            fault_seed: 0,
            watchdog: None,
            tech,
        }
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig::baseline()
    }
}

/// Executes a [`GatingPolicy`] over a run: implements
/// [`mapg_cpu::StallHandler`], so it plugs directly into a
/// [`Core`](mapg_cpu::Core) or [`Cluster`](mapg_cpu::Cluster).
///
/// The controller charges **stall-time** energy (idle / clock-gated /
/// DVFS-parked / gated-residual / transition). Active-period and DRAM
/// energy are integrated by the [`Simulation`](crate::Simulation) after the
/// run, from the core and DRAM statistics.
pub struct Controller {
    policy: Box<dyn GatingPolicy>,
    config: ControllerConfig,
    ctx: PolicyContext,
    fsms: Vec<GatingFsm>,
    tokens: Option<TokenManager>,
    timeline: Option<Timeline>,
    energy: EnergyAccount,
    stats: GatingStats,
    /// Constructed only for non-no-op fault plans, so fault-free runs
    /// never touch the fault RNG and stay bit-identical.
    faults: Option<FaultInjector>,
    watchdog: Option<Watchdog>,
    invariants: InvariantChecker,
    /// End of the currently open brownout wake-veto window.
    brownout_until: Cycle,
    /// Last event time seen per core, for the monotonic-time invariant.
    last_event: Vec<Cycle>,
    obs: ObsHandle,
    /// Mirror of the watchdog's mode, for emitting strictly balanced
    /// safe-mode enter/exit trace events.
    safe_mode_active: bool,
}

impl fmt::Debug for Controller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Controller")
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Controller {
    /// Builds a controller around a policy.
    ///
    /// # Panics
    ///
    /// Panics if the token capacity is zero or the fault plan / watchdog
    /// configuration is out of range.
    pub fn new(policy: Box<dyn GatingPolicy>, config: ControllerConfig) -> Self {
        if let Err(e) = config.fault_plan.validate() {
            panic!("{e}");
        }
        let ctx = PolicyContext {
            entry: config.circuit.entry_cycles(config.clock),
            wakeup: config.circuit.wakeup_cycles(config.clock),
            break_even: config.circuit.break_even_cycles(&config.tech, config.clock),
        };
        let faults = (!config.fault_plan.is_nop())
            .then(|| FaultInjector::new(config.fault_plan, config.fault_seed));
        let watchdog = config.watchdog.map(|wd| Watchdog::new(wd, ctx.wakeup));
        Controller {
            policy,
            ctx,
            fsms: Vec::new(),
            tokens: config.tokens.map(TokenManager::new),
            timeline: None,
            energy: EnergyAccount::new(),
            stats: GatingStats::default(),
            faults,
            watchdog,
            invariants: InvariantChecker::new(),
            brownout_until: Cycle::ZERO,
            last_event: Vec::new(),
            obs: ObsHandle::disabled(),
            safe_mode_active: false,
            config,
        }
    }

    /// Attaches an observability handle to the controller and its
    /// subsystems (token manager, watchdog). Gate/wake/token/safe-mode
    /// trace events and gating metrics flow through it from now on.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        if let Some(tokens) = self.tokens.as_mut() {
            tokens.set_obs(obs.clone());
        }
        if let Some(watchdog) = self.watchdog.as_mut() {
            watchdog.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// Emits a safe-mode enter/exit trace event when the watchdog's mode
    /// changed since the last sync. Called wherever the mode can flip
    /// (poll on stall arrival, record after a gated stall), so the global
    /// event stream stays strictly balanced and time-ordered.
    fn sync_safe_mode(&mut self, at: Cycle) {
        let active = self
            .watchdog
            .as_ref()
            .map(Watchdog::in_safe_mode)
            .unwrap_or(false);
        if active != self.safe_mode_active {
            self.safe_mode_active = active;
            let kind = if active {
                EventKind::SafeModeEnter
            } else {
                EventKind::SafeModeExit
            };
            self.obs.emit(at.raw(), Scope::Global, kind);
        }
    }

    /// Starts recording every power-state transition (for VCD export via
    /// [`Timeline::to_vcd`]).
    pub fn enable_timeline(&mut self) {
        self.timeline.get_or_insert_with(Timeline::new);
    }

    /// The recorded timeline, when enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Takes ownership of the recorded timeline, when enabled.
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        self.timeline.take()
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The circuit-derived constants the policy sees.
    pub fn context(&self) -> &PolicyContext {
        &self.ctx
    }

    /// Gating counters so far.
    pub fn stats(&self) -> &GatingStats {
        &self.stats
    }

    /// Stall-time energy charged so far.
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    /// The wrapped policy (for predictor-score extraction).
    pub fn policy(&self) -> &dyn GatingPolicy {
        self.policy.as_ref()
    }

    /// Token statistics, when token limiting is enabled.
    pub fn token_manager(&self) -> Option<&TokenManager> {
        self.tokens.as_ref()
    }

    /// Snapshot of the invariant-checking results so far.
    pub fn invariants(&self) -> InvariantReport {
        self.invariants.report()
    }

    /// The checker itself, so the simulation can merge end-of-run audits
    /// from subsystems the controller does not own (cores, DRAM).
    pub(crate) fn invariants_mut(&mut self) -> &mut InvariantChecker {
        &mut self.invariants
    }

    /// Safe-mode degradation statistics (all zero without a watchdog).
    pub fn degradation(&self) -> DegradationStats {
        self.watchdog
            .as_ref()
            .map(Watchdog::stats)
            .unwrap_or_default()
    }

    /// Counts of faults injected so far (all zero for a no-op plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
            .as_ref()
            .map(FaultInjector::stats)
            .unwrap_or_default()
    }

    /// Closes the FSM books at the end of a run (per-core residencies are
    /// only complete after this) and runs the end-of-run conservation
    /// audits into the invariant report.
    pub fn finish(&mut self, final_times: &[Cycle]) {
        let cores = self.fsms.len().min(final_times.len());
        for (core, &at) in final_times.iter().enumerate().take(cores) {
            let result = self.fsms[core].try_finish(at);
            self.note_fsm(result, core, at);
        }
        // Close an open safe-mode span at the end of the run so the trace
        // stays strictly balanced even when the backoff outlives the run.
        if self.safe_mode_active {
            let end = final_times.iter().copied().max().unwrap_or(Cycle::ZERO);
            self.safe_mode_active = false;
            self.obs
                .emit(end.raw(), Scope::Global, EventKind::SafeModeExit);
        }
        let obs = self.obs.clone();
        for fsm in &self.fsms {
            fsm.residency().record_metrics(&obs);
        }
        self.audit_books();
    }

    /// End-of-run conservation laws: residency ↔ stats, energy ledger ↔
    /// residency × power, token ledger self-consistency.
    fn audit_books(&mut self) {
        // Sleeping residency across all cores must equal the gated-cycle
        // counter: they are two independent integrations of the same time.
        let sleeping: u64 = self
            .fsms
            .iter()
            .map(|fsm| fsm.residency().sleeping.raw())
            .sum();
        let gated = self.stats.gated_cycles;
        self.invariants.check(
            sleeping == gated,
            InvariantKind::Accounting,
            None,
            None,
            || format!("sleeping residency {sleeping} != gated cycles {gated}"),
        );

        // Gated-residual energy must be exactly gated power × sleep time.
        let clock = self.config.clock;
        let gated_power = self.config.circuit.gated_power(&self.config.tech);
        let expected = (gated_power * Cycles::new(gated).at(clock)).as_joules();
        let actual = self.energy.get(EnergyCategory::GatedResidual).as_joules();
        let slack = expected.abs().max(1e-12) * 1e-9;
        self.invariants.check(
            (actual - expected).abs() <= slack,
            InvariantKind::EnergyLedger,
            None,
            None,
            || {
                format!(
                    "gated-residual energy {actual} J != gated power × \
                     residency {expected} J"
                )
            },
        );

        // Transition energy must be the per-event charge times the number
        // of sleep entries (primary gates + nap re-gates).
        let transitions = self.stats.gated + self.stats.regates;
        let expected = self.config.circuit.transition_energy().as_joules() * transitions as f64;
        let actual = self.energy.get(EnergyCategory::Transition).as_joules();
        let slack = expected.abs().max(1e-12) * 1e-9;
        self.invariants.check(
            (actual - expected).abs() <= slack,
            InvariantKind::EnergyLedger,
            None,
            None,
            || {
                format!(
                    "transition energy {actual} J != {transitions} \
                     transitions × per-event charge ({expected} J)"
                )
            },
        );

        // Every bucket finite, non-negative, and summing to the total.
        let problems = self.energy.audit();
        if problems.is_empty() {
            self.invariants.count_check();
        }
        for detail in problems {
            self.invariants.record(InvariantViolation {
                kind: InvariantKind::EnergyLedger,
                core: None,
                at: None,
                detail,
            });
        }

        // Token conservation.
        if let Some(tokens) = &self.tokens {
            let problems = tokens.audit();
            if problems.is_empty() {
                self.invariants.count_check();
            }
            for detail in problems {
                self.invariants.record(InvariantViolation {
                    kind: InvariantKind::TokenLedger,
                    core: None,
                    at: None,
                    detail,
                });
            }
        }
    }

    /// Folds one FSM `try_*` outcome into the invariant report.
    fn note_fsm(&mut self, result: Result<(), String>, core: usize, at: Cycle) {
        match result {
            Ok(()) => self.invariants.count_check(),
            Err(detail) => {
                let kind = if detail.contains("time regression") {
                    InvariantKind::MonotonicTime
                } else {
                    InvariantKind::FsmTransition
                };
                self.invariants.record(InvariantViolation {
                    kind,
                    core: Some(core),
                    at: Some(at.raw()),
                    detail,
                });
            }
        }
    }

    /// Per-core FSMs (residency reporting).
    pub fn fsms(&self) -> &[GatingFsm] {
        &self.fsms
    }

    /// Charges `power` sustained over `span` cycles to `category`.
    fn charge(&mut self, category: EnergyCategory, power: Watts, span: Cycles) {
        self.energy
            .add(category, power * span.at(self.config.clock));
    }

    fn fsm_mut(&mut self, core: usize) -> &mut GatingFsm {
        while self.fsms.len() <= core {
            self.fsms.push(GatingFsm::new());
        }
        &mut self.fsms[core]
    }

    /// Idle (stalled but powered and clocked) power.
    fn idle_power(&self) -> Watts {
        self.config.tech.idle_dynamic_power() + self.config.tech.leakage_power()
    }
}

impl StallHandler for Controller {
    fn on_stall(&mut self, info: &StallInfo) -> Cycle {
        self.stats.stalls += 1;
        let natural = info.natural_duration();
        let core = info.core.0;

        // Invariant: each core's stalls arrive in non-decreasing time.
        while self.last_event.len() <= core {
            self.last_event.push(Cycle::ZERO);
        }
        let last = self.last_event[core];
        self.invariants.check(
            info.start >= last,
            InvariantKind::MonotonicTime,
            Some(core),
            Some(info.start.raw()),
            || format!("stall starts at {} before prior event {last}", info.start),
        );

        // Safe mode: the watchdog may have re-armed since the last stall,
        // or may currently be holding the controller degraded.
        let safe_mode = match self.watchdog.as_mut() {
            Some(watchdog) => watchdog.poll(info.start),
            None => false,
        };
        self.sync_safe_mode(info.start);

        let mut action = self.policy.decide(info, &self.ctx);
        if safe_mode {
            if let StallAction::PowerGate { .. } = action {
                // Degrade to clock gating: no wake ramp, no transition
                // energy, no rush current — always safe, never optimal.
                if let Some(watchdog) = self.watchdog.as_mut() {
                    watchdog.note_demotion(natural);
                }
                action = StallAction::ClockGate;
            }
        }

        let resume = match action {
            StallAction::StayActive => {
                self.charge(EnergyCategory::IdleStall, self.idle_power(), natural);
                info.data_ready
            }
            StallAction::ClockGate => {
                self.charge(
                    EnergyCategory::IdleStall,
                    self.config.tech.leakage_power(),
                    natural,
                );
                info.data_ready
            }
            StallAction::DvfsScale { point } => {
                self.charge(
                    EnergyCategory::IdleStall,
                    point.idle_power(&self.config.tech),
                    natural,
                );
                info.data_ready
            }
            StallAction::PowerGate { gate_at, wake_at } => {
                self.execute_gate(info, gate_at, wake_at)
            }
        };

        // Invariant: a core never resumes before its data arrives.
        self.invariants.check(
            resume >= info.data_ready,
            InvariantKind::ResumeBeforeData,
            Some(core),
            Some(resume.raw()),
            || format!("resumed at {resume} before data at {}", info.data_ready),
        );
        self.last_event[core] = self.last_event[core].max(resume);

        // The watchdog may have tripped while recording this gated stall.
        self.sync_safe_mode(resume);

        // The predictor trains on the observed stall duration; a corrupted
        // sensor sample poisons it without touching the ground truth.
        let observed = match self.faults.as_mut() {
            Some(faults) => faults.observed_latency(natural),
            None => natural,
        };
        if observed != natural {
            self.obs.emit(
                resume.raw(),
                Scope::Core(core as u32),
                EventKind::FaultInjected(FaultKind::SensorNoise),
            );
        }
        self.policy.observe(info, observed);
        resume
    }
}

impl Controller {
    /// Executes a power-gate decision; returns the resume time.
    fn execute_gate(&mut self, info: &StallInfo, gate_at: Cycle, wake_at: Cycle) -> Cycle {
        let entry = self.ctx.entry;
        let nominal_wakeup = self.ctx.wakeup;
        let leak = self.config.tech.leakage_power();
        let gated_power = self.config.circuit.gated_power(&self.config.tech);
        let gate_at = gate_at.max(info.start);
        let entry_done = gate_at + entry;
        let scope = Scope::Core(info.core.0 as u32);
        self.obs
            .emit(entry_done.raw(), scope, EventKind::SleepEnter);
        // A stuck-slow sleep switch inflates this ramp's wake latency.
        let mut wake_failed = false;
        let wakeup = match self.faults.as_mut() {
            Some(faults) => {
                let actual = faults.wake_latency(nominal_wakeup);
                wake_failed |= actual > nominal_wakeup;
                actual
            }
            None => nominal_wakeup,
        };
        let slow_wake = wakeup > nominal_wakeup;
        // The wake ramp begins at the scheduled time or when the memory
        // response arrives, whichever is first: the data-return signal is
        // observable by the PG controller and always triggers a (reactive)
        // wake, so an over-predicted schedule degrades to the reactive
        // wake penalty instead of sleeping past the data. It also cannot
        // begin before sleep entry completes.
        let mut wake_start = wake_at.min(info.data_ready).max(entry_done);
        // An open brownout window vetoes wake ramps until it closes.
        if wake_start < self.brownout_until {
            self.obs.emit(
                wake_start.raw(),
                scope,
                EventKind::FaultInjected(FaultKind::BrownoutVeto),
            );
            wake_start = self.brownout_until;
            if let Some(faults) = self.faults.as_mut() {
                faults.note_brownout_delay();
            }
            wake_failed = true;
        }
        // Token limiting may delay it further; a grant dropped in flight
        // forces a re-request after the retry latency.
        if let Some(tokens) = &mut self.tokens {
            let mut granted = tokens.acquire(wake_start, wakeup);
            if let Some(faults) = self.faults.as_mut() {
                if faults.drop_token_grant() {
                    self.obs.emit(
                        wake_start.raw(),
                        scope,
                        EventKind::FaultInjected(FaultKind::TokenDrop),
                    );
                    granted = tokens.acquire(granted + faults.token_retry(), wakeup);
                    wake_failed = true;
                }
            }
            if granted > wake_start {
                self.obs.emit(wake_start.raw(), scope, EventKind::TokenDeny);
                self.stats.token_delayed += 1;
                self.stats.token_delay_cycles += (granted - wake_start).raw();
            }
            self.obs.emit(granted.raw(), scope, EventKind::TokenGrant);
            wake_start = granted;
        }
        let wake_done = wake_start + wakeup;
        // This wake's inrush may itself brown the rail out, vetoing
        // concurrent wake-ups for the hold window.
        if let Some(faults) = self.faults.as_mut() {
            if let Some(hold) = faults.brownout() {
                self.brownout_until = self.brownout_until.max(wake_start + hold);
                self.obs.emit(
                    wake_start.raw(),
                    scope,
                    EventKind::FaultInjected(FaultKind::Brownout),
                );
            }
        }
        if slow_wake {
            self.obs.emit(
                wake_start.raw(),
                scope,
                EventKind::FaultInjected(FaultKind::SlowWake),
            );
        }
        self.obs.emit(wake_start.raw(), scope, EventKind::SleepExit);
        self.obs.emit(wake_start.raw(), scope, EventKind::WakeStart);
        self.obs.emit(wake_done.raw(), scope, EventKind::WakeDone);

        // --- primary sleep: energy, stats, FSM ---------------------------
        // Wait before gating (timeout policies): clock-gated, leakage only.
        self.charge(
            EnergyCategory::IdleStall,
            leak,
            gate_at.saturating_since(info.start),
        );
        // Entry and wake ramps: rail is partially up; charge full leakage
        // (conservative) — the CV² charge itself is in the transition term.
        self.charge(EnergyCategory::IdleStall, leak, entry);
        self.charge(EnergyCategory::IdleStall, leak, wakeup);
        let sleeping = wake_start.saturating_since(entry_done);
        self.charge(EnergyCategory::GatedResidual, gated_power, sleeping);
        self.energy.add(
            EnergyCategory::Transition,
            self.config.circuit.transition_energy(),
        );
        self.stats.gated += 1;
        self.stats.gated_cycles += sleeping.raw();
        self.obs.count("gates", 1);
        self.obs.observe("gated_duration", sleeping.raw());
        self.obs.observe("wake_latency", wakeup.raw());
        if sleeping < self.ctx.break_even {
            self.obs.count("bet_misses", 1);
            self.obs
                .observe("bet_shortfall", (self.ctx.break_even - sleeping).raw());
        }
        self.record_pg_cycle(info.core, gate_at, entry_done, wake_start, wake_done);

        // --- nap chaining -------------------------------------------------
        // The core woke early (under-predicted stall) and the data is still
        // more than a break-even away: re-enter sleep and let the response
        // signal wake it reactively. One re-gate always suffices — the
        // second nap ends at the response.
        let mut last_wake_done = wake_done;
        let regate_threshold = self.ctx.break_even + nominal_wakeup;
        if self.config.regate_on_early_wake
            && info.data_ready.saturating_since(wake_done) > regate_threshold
        {
            let nap_entry_done = wake_done + entry;
            self.obs
                .emit(nap_entry_done.raw(), scope, EventKind::SleepEnter);
            // The nap's ramp rolls its own stuck-slow fault.
            let nap_wakeup = match self.faults.as_mut() {
                Some(faults) => {
                    let actual = faults.wake_latency(nominal_wakeup);
                    wake_failed |= actual > nominal_wakeup;
                    actual
                }
                None => nominal_wakeup,
            };
            let nap_slow = nap_wakeup > nominal_wakeup;
            // The nap's reactive wake draws the same inrush as any other:
            // it must hold a token too, which may delay it past the
            // response (more penalty, but the di/dt bound stays honest).
            let mut nap_wake_start = info.data_ready;
            if nap_wake_start < self.brownout_until {
                self.obs.emit(
                    nap_wake_start.raw(),
                    scope,
                    EventKind::FaultInjected(FaultKind::BrownoutVeto),
                );
                nap_wake_start = self.brownout_until;
                if let Some(faults) = self.faults.as_mut() {
                    faults.note_brownout_delay();
                }
                wake_failed = true;
            }
            if let Some(tokens) = &mut self.tokens {
                let mut granted = tokens.acquire(nap_wake_start, nap_wakeup);
                if let Some(faults) = self.faults.as_mut() {
                    if faults.drop_token_grant() {
                        self.obs.emit(
                            nap_wake_start.raw(),
                            scope,
                            EventKind::FaultInjected(FaultKind::TokenDrop),
                        );
                        granted = tokens.acquire(granted + faults.token_retry(), nap_wakeup);
                        wake_failed = true;
                    }
                }
                if granted > nap_wake_start {
                    self.obs
                        .emit(nap_wake_start.raw(), scope, EventKind::TokenDeny);
                    self.stats.token_delayed += 1;
                    self.stats.token_delay_cycles += (granted - nap_wake_start).raw();
                }
                self.obs.emit(granted.raw(), scope, EventKind::TokenGrant);
                nap_wake_start = granted;
            }
            let nap_wake_done = nap_wake_start + nap_wakeup;
            let nap_span = nap_wake_start - nap_entry_done;
            if nap_slow {
                self.obs.emit(
                    nap_wake_start.raw(),
                    scope,
                    EventKind::FaultInjected(FaultKind::SlowWake),
                );
            }
            self.obs
                .emit(nap_wake_start.raw(), scope, EventKind::SleepExit);
            self.obs
                .emit(nap_wake_start.raw(), scope, EventKind::WakeStart);
            self.obs
                .emit(nap_wake_done.raw(), scope, EventKind::WakeDone);

            self.charge(EnergyCategory::IdleStall, leak, entry);
            self.charge(EnergyCategory::IdleStall, leak, nap_wakeup);
            self.charge(EnergyCategory::GatedResidual, gated_power, nap_span);
            self.energy.add(
                EnergyCategory::Transition,
                self.config.circuit.transition_energy(),
            );
            self.stats.regates += 1;
            self.stats.gated_cycles += nap_span.raw();
            self.obs.count("regates", 1);
            self.obs.observe("gated_duration", nap_span.raw());
            self.obs.observe("wake_latency", nap_wakeup.raw());
            if nap_span < self.ctx.break_even {
                self.obs.count("bet_misses", 1);
                self.obs
                    .observe("bet_shortfall", (self.ctx.break_even - nap_span).raw());
            }
            self.record_pg_cycle(
                info.core,
                wake_done,
                nap_entry_done,
                nap_wake_start,
                nap_wake_done,
            );
            last_wake_done = nap_wake_done;
        }

        // --- tail / penalty accounting ------------------------------------
        // Non-retentive designs refill pipeline state after restart; the
        // refill delays useful execution past both wake and data arrival.
        let cold_start = self.config.circuit.cold_start_cycles(self.config.clock);
        let resume = last_wake_done.max(info.data_ready) + cold_start;
        if last_wake_done < info.data_ready {
            // Clock-gated idle tail: the PG controller knows the response
            // is still outstanding, so the re-powered core waits with
            // clocks held — leakage only.
            let tail = info.data_ready - last_wake_done;
            self.charge(EnergyCategory::IdleStall, leak, tail);
            self.stats.early_wakes += 1;
            self.stats.idle_tail_cycles += tail.raw();
        } else if last_wake_done > info.data_ready {
            self.stats.overrun_wakes += 1;
        }
        // Anything past data arrival — late wake and/or cold start — is a
        // critical-path penalty; the cold-start window burns idle power
        // (the core executes refill work).
        let penalty = resume.saturating_since(info.data_ready);
        self.stats.penalty_cycles += penalty.raw();
        self.charge(EnergyCategory::IdleStall, self.idle_power(), cold_start);

        // Feed the watchdog one gated-stall outcome: how late the wake
        // landed, and whether any wake-path fault fired on this stall.
        if let Some(watchdog) = self.watchdog.as_mut() {
            watchdog.record(resume, penalty, wake_failed);
        }

        resume
    }

    /// Drives one complete entry → sleep → wake cycle through the core's
    /// FSM and the timeline recorder. FSM errors become recorded invariant
    /// violations — faulty environments must never panic a release sweep.
    fn record_pg_cycle(
        &mut self,
        core: mapg_cpu::CoreId,
        gate_at: Cycle,
        entry_done: Cycle,
        wake_start: Cycle,
        wake_done: Cycle,
    ) {
        self.fsm_mut(core.0);
        let steps = [
            (gate_at, PgState::Entering),
            (entry_done, PgState::Sleeping),
            (wake_start, PgState::Waking),
            (wake_done, PgState::Active),
        ];
        for (at, next) in steps {
            let fsm = &mut self.fsms[core.0];
            let result = match next {
                PgState::Entering => fsm.try_begin_entry(at),
                PgState::Sleeping => fsm.try_begin_sleep(at),
                PgState::Waking => fsm.try_begin_wake(at),
                PgState::Active => fsm.try_complete_wake(at),
            };
            self.note_fsm(result, core.0, at);
            if let Some(timeline) = &mut self.timeline {
                timeline.record(at, core, next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MapgPolicy, NaiveOnMiss, NoGating, PolicyKind};
    use mapg_cpu::{CoreId, StallCause};

    fn stall(duration: u64) -> StallInfo {
        StallInfo {
            core: CoreId(0),
            start: Cycle::new(10_000),
            data_ready: Cycle::new(10_000 + duration),
            pc: 0x400,
            outstanding: 1,
            cause: StallCause::Dependency,
        }
    }

    #[test]
    fn context_is_circuit_derived() {
        let config = ControllerConfig::baseline();
        let controller = Controller::new(Box::new(NoGating), config);
        let ctx = controller.context();
        assert_eq!(ctx.entry, config.circuit.entry_cycles(config.clock));
        assert_eq!(ctx.wakeup, config.circuit.wakeup_cycles(config.clock));
        assert!(ctx.break_even > Cycles::ZERO);
    }

    #[test]
    fn passive_policy_charges_idle_energy() {
        let mut controller = Controller::new(Box::new(NoGating), ControllerConfig::baseline());
        let info = stall(200);
        let resume = controller.on_stall(&info);
        assert_eq!(resume, info.data_ready);
        assert!(
            controller
                .energy()
                .get(EnergyCategory::IdleStall)
                .as_joules()
                > 0.0
        );
        assert_eq!(controller.stats().gated, 0);
        assert_eq!(controller.stats().stalls, 1);
    }

    #[test]
    fn naive_gate_pays_wake_penalty() {
        let config = ControllerConfig::baseline();
        let mut controller = Controller::new(Box::new(NaiveOnMiss), config);
        let info = stall(300);
        let resume = controller.on_stall(&info);
        let wakeup = config.circuit.wakeup_cycles(config.clock);
        assert_eq!(resume, info.data_ready + wakeup);
        assert_eq!(controller.stats().gated, 1);
        assert_eq!(controller.stats().penalty_cycles, wakeup.raw());
        assert!(
            controller
                .energy()
                .get(EnergyCategory::GatedResidual)
                .as_joules()
                > 0.0
        );
        assert!(
            controller
                .energy()
                .get(EnergyCategory::Transition)
                .as_joules()
                > 0.0
        );
    }

    #[test]
    fn oracle_gate_has_zero_penalty() {
        let mut controller =
            Controller::new(Box::new(MapgPolicy::oracle()), ControllerConfig::baseline());
        let info = stall(400);
        let resume = controller.on_stall(&info);
        assert_eq!(resume, info.data_ready, "oracle hides the wake entirely");
        assert_eq!(controller.stats().penalty_cycles, 0);
        assert_eq!(controller.stats().gated, 1);
    }

    #[test]
    fn oracle_skips_below_break_even() {
        let mut controller =
            Controller::new(Box::new(MapgPolicy::oracle()), ControllerConfig::baseline());
        let short = stall(5);
        let resume = controller.on_stall(&short);
        assert_eq!(resume, short.data_ready);
        assert_eq!(controller.stats().gated, 0);
    }

    #[test]
    fn gated_energy_beats_idle_energy_on_long_stalls() {
        let config = ControllerConfig::baseline();
        let long = stall(2_000);

        let mut idle_ctl = Controller::new(Box::new(NoGating), config);
        idle_ctl.on_stall(&long);
        let idle_energy = idle_ctl.energy().total();

        let mut gate_ctl = Controller::new(Box::new(MapgPolicy::oracle()), config);
        gate_ctl.on_stall(&long);
        let gate_energy = gate_ctl.energy().total();

        assert!(
            gate_energy < idle_energy,
            "gating a 2000-cycle stall must win: {gate_energy:?} !< {idle_energy:?}"
        );
    }

    #[test]
    fn token_limit_delays_second_simultaneous_wake() {
        let config = ControllerConfig {
            tokens: Some(1),
            ..ControllerConfig::baseline()
        };
        let mut controller = Controller::new(Box::new(MapgPolicy::oracle()), config);
        // Two cores stall with identical timing: their wake ramps collide.
        let a = StallInfo {
            core: CoreId(0),
            ..stall(400)
        };
        let b = StallInfo {
            core: CoreId(1),
            ..stall(400)
        };
        let resume_a = controller.on_stall(&a);
        let resume_b = controller.on_stall(&b);
        assert_eq!(resume_a, a.data_ready);
        assert!(
            resume_b > b.data_ready,
            "second wake must wait for the token"
        );
        assert_eq!(controller.stats().token_delayed, 1);
        assert!(controller.stats().token_delay_cycles > 0);
    }

    #[test]
    fn fsm_residencies_match_stats() {
        let config = ControllerConfig::baseline();
        let mut controller = Controller::new(Box::new(MapgPolicy::oracle()), config);
        let info = stall(500);
        let resume = controller.on_stall(&info);
        controller.finish(&[resume]);
        let fsm = &controller.fsms()[0];
        assert_eq!(fsm.sleep_count(), 1);
        assert_eq!(
            fsm.residency().sleeping.raw(),
            controller.stats().gated_cycles
        );
    }

    #[test]
    fn underpredicted_long_stall_regates() {
        use crate::predictor::StaticPredictor;
        // A static 200-cycle prediction on a 5000-cycle stall: the core
        // wakes at ~start+200, finds the data 4800 cycles away, and must
        // nap again until the response.
        let policy =
            MapgPolicy::with_predictor(StaticPredictor::new(Cycles::new(200)), "static-test");
        let config = ControllerConfig::baseline();
        let mut controller = Controller::new(Box::new(policy), config);
        let info = stall(5_000);
        let resume = controller.on_stall(&info);
        assert_eq!(controller.stats().regates, 1);
        // Reactive wake from the nap: resume = data + wakeup.
        let wakeup = config.circuit.wakeup_cycles(config.clock);
        assert_eq!(resume, info.data_ready + wakeup);
        // Both sleep spans count as gated time; only the ramps and the
        // short awake gap are lost.
        assert!(
            controller.stats().gated_cycles > 4_500,
            "gated {} of a 5000-cycle stall",
            controller.stats().gated_cycles
        );
        assert_eq!(controller.stats().early_wakes, 0, "tail was re-gated");
    }

    #[test]
    fn regate_can_be_disabled() {
        use crate::predictor::StaticPredictor;
        let policy =
            MapgPolicy::with_predictor(StaticPredictor::new(Cycles::new(200)), "static-test");
        let config = ControllerConfig {
            regate_on_early_wake: false,
            ..ControllerConfig::baseline()
        };
        let mut controller = Controller::new(Box::new(policy), config);
        let info = stall(5_000);
        let resume = controller.on_stall(&info);
        assert_eq!(controller.stats().regates, 0);
        assert_eq!(resume, info.data_ready, "early wake, clock-gated tail");
        assert_eq!(controller.stats().early_wakes, 1);
        assert!(controller.stats().idle_tail_cycles > 4_000);
    }

    #[test]
    fn stats_display() {
        let stats = GatingStats {
            stalls: 10,
            gated: 5,
            gated_cycles: 1000,
            ..GatingStats::default()
        };
        assert!((stats.gated_fraction() - 0.5).abs() < 1e-12);
        assert!((stats.mean_residency() - 200.0).abs() < 1e-12);
        assert!(stats.to_string().contains("5/10"));
    }

    #[test]
    fn finish_leaves_normal_runs_invariant_clean() {
        let mut controller =
            Controller::new(Box::new(MapgPolicy::oracle()), ControllerConfig::baseline());
        let info = stall(500);
        let resume = controller.on_stall(&info);
        controller.finish(&[resume]);
        let report = controller.invariants();
        assert!(report.is_clean(), "{report}");
        assert!(report.checks > 0);
    }

    #[test]
    fn slow_wake_fault_delays_resume() {
        let config = ControllerConfig {
            fault_plan: FaultPlan {
                slow_wake_prob: 1.0,
                slow_wake_factor: 10.0,
                ..FaultPlan::none()
            },
            ..ControllerConfig::baseline()
        };
        let mut faulty = Controller::new(Box::new(NaiveOnMiss), config);
        let mut clean = Controller::new(Box::new(NaiveOnMiss), ControllerConfig::baseline());
        let info = stall(300);
        let faulty_resume = faulty.on_stall(&info);
        let clean_resume = clean.on_stall(&info);
        assert!(
            faulty_resume > clean_resume,
            "a 10× wake ramp must land later: {faulty_resume} !> {clean_resume}"
        );
        assert_eq!(faulty.fault_stats().slow_wakes, 1);
        assert_eq!(clean.fault_stats().slow_wakes, 0);
    }

    #[test]
    fn brownout_window_vetoes_the_next_wake() {
        let config = ControllerConfig {
            fault_plan: FaultPlan {
                brownout_prob: 1.0,
                brownout_hold_cycles: Cycles::new(5_000),
                ..FaultPlan::none()
            },
            ..ControllerConfig::baseline()
        };
        let mut controller = Controller::new(Box::new(MapgPolicy::oracle()), config);
        // First gated stall opens a veto window over its wake...
        let a = stall(400);
        controller.on_stall(&a);
        // ...which delays the second core's overlapping wake.
        let b = StallInfo {
            core: CoreId(1),
            ..stall(400)
        };
        let resume_b = controller.on_stall(&b);
        assert!(
            resume_b > b.data_ready,
            "vetoed wake must miss the data: {resume_b}"
        );
        let stats = controller.fault_stats();
        assert!(stats.brownouts >= 1, "{stats}");
        assert_eq!(stats.brownout_delayed_wakes, 1, "{stats}");
    }

    #[test]
    fn watchdog_demotes_gating_in_safe_mode() {
        let watchdog = WatchdogConfig {
            window: 8,
            min_samples: 4,
            penalty_ratio: 1.0,
            failure_threshold: 0.5,
            backoff_base: Cycles::new(1_000_000),
            backoff_max: Cycles::new(1_000_000),
        };
        let config = ControllerConfig {
            fault_plan: FaultPlan {
                slow_wake_prob: 1.0,
                slow_wake_factor: 20.0,
                ..FaultPlan::none()
            },
            watchdog: Some(watchdog),
            ..ControllerConfig::baseline()
        };
        let mut controller = Controller::new(Box::new(NaiveOnMiss), config);
        let gated_stall = |start: u64| StallInfo {
            start: Cycle::new(start),
            data_ready: Cycle::new(start + 300),
            ..stall(300)
        };
        // Every wake is 20× slow: each gated stall records a penalty far
        // past the 1× threshold, so the fourth sample trips the watchdog.
        let mut start = 10_000u64;
        for _ in 0..4 {
            controller.on_stall(&gated_stall(start));
            start += 10_000;
        }
        assert_eq!(controller.degradation().safe_mode_entries, 1);
        let gated_before = controller.stats().gated;
        let resume = controller.on_stall(&gated_stall(start));
        assert_eq!(
            controller.stats().gated,
            gated_before,
            "safe mode must demote the power gate"
        );
        assert_eq!(controller.degradation().demoted_gates, 1);
        assert_eq!(
            resume,
            Cycle::new(start + 300),
            "clock gating resumes exactly at data arrival"
        );
    }

    #[test]
    fn every_comparison_policy_runs_through_controller() {
        for kind in PolicyKind::COMPARISON_SET {
            let mut controller = Controller::new(kind.instantiate(), ControllerConfig::baseline());
            let info = stall(300);
            let resume = controller.on_stall(&info);
            assert!(
                resume >= info.data_ready,
                "{}: resumed before data",
                kind.name()
            );
            assert_eq!(controller.policy_name(), kind.name());
        }
    }
}
