//! The gating controller: executes policy decisions, charges energy,
//! drives the per-core FSMs, and reports resume times to the cores.

use mapg_cpu::{StallHandler, StallInfo};
use mapg_power::{EnergyAccount, EnergyCategory, PgCircuitDesign, TechnologyParams};
use mapg_units::{Cycle, Cycles, Hertz, Watts};

use crate::fsm::{GatingFsm, PgState};
use crate::policy::{GatingPolicy, PolicyContext, StallAction};
use crate::timeline::Timeline;
use crate::tokens::TokenManager;

use core::fmt;

/// Gating activity counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatingStats {
    /// Stalls presented to the policy.
    pub stalls: u64,
    /// Stalls that were power-gated.
    pub gated: u64,
    /// Cycles spent in the collapsed (sleeping) state.
    pub gated_cycles: u64,
    /// Wake-up cycles that landed past data arrival (performance penalty).
    pub penalty_cycles: u64,
    /// Gated stalls whose wake finished after the data arrived.
    pub overrun_wakes: u64,
    /// Gated stalls whose wake finished before the data arrived (idle
    /// tail; energy opportunity lost, no performance cost).
    pub early_wakes: u64,
    /// Cycles of powered idling between wake completion and data arrival.
    pub idle_tail_cycles: u64,
    /// Wake-ups delayed waiting for a token.
    pub token_delayed: u64,
    /// Total cycles of token-wait delay.
    pub token_delay_cycles: u64,
    /// Re-gates: the core woke early (mis-predicted duration), found its
    /// data still far away, and went back to sleep until the response
    /// signal (nap chaining).
    pub regates: u64,
}

impl GatingStats {
    /// Fraction of stalls that were gated.
    pub fn gated_fraction(&self) -> f64 {
        if self.stalls == 0 {
            0.0
        } else {
            self.gated as f64 / self.stalls as f64
        }
    }

    /// Mean sleep residency of gated stalls, in cycles.
    pub fn mean_residency(&self) -> f64 {
        if self.gated == 0 {
            0.0
        } else {
            self.gated_cycles as f64 / self.gated as f64
        }
    }
}

impl fmt::Display for GatingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} stalls gated ({:.1}%), mean residency {:.0} cyc, {} penalty cyc",
            self.gated,
            self.stalls,
            self.gated_fraction() * 100.0,
            self.mean_residency(),
            self.penalty_cycles
        )
    }
}

/// Static controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Technology the cores are built in.
    pub tech: TechnologyParams,
    /// The power-gating circuit design point.
    pub circuit: PgCircuitDesign,
    /// Core clock (converts cycles to seconds for energy integration).
    pub clock: Hertz,
    /// Wake-token capacity; `None` disables token limiting.
    pub tokens: Option<usize>,
    /// Whether a core that woke early (mis-predicted stall duration) may
    /// re-enter sleep until the memory response arrives. Real controllers
    /// do this — the response wire is the reactive wake trigger — at the
    /// cost of one extra transition and a reactive-wake penalty.
    pub regate_on_early_wake: bool,
}

impl ControllerConfig {
    /// Baseline: 45 nm technology, the MAPG fast-wakeup circuit, 2 GHz,
    /// no token limiting.
    pub fn baseline() -> Self {
        let tech = TechnologyParams::bulk_45nm();
        ControllerConfig {
            circuit: PgCircuitDesign::fast_wakeup(&tech),
            clock: Hertz::from_ghz(2.0),
            tokens: None,
            regate_on_early_wake: true,
            tech,
        }
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig::baseline()
    }
}

/// Executes a [`GatingPolicy`] over a run: implements
/// [`mapg_cpu::StallHandler`], so it plugs directly into a
/// [`Core`](mapg_cpu::Core) or [`Cluster`](mapg_cpu::Cluster).
///
/// The controller charges **stall-time** energy (idle / clock-gated /
/// DVFS-parked / gated-residual / transition). Active-period and DRAM
/// energy are integrated by the [`Simulation`](crate::Simulation) after the
/// run, from the core and DRAM statistics.
pub struct Controller {
    policy: Box<dyn GatingPolicy>,
    config: ControllerConfig,
    ctx: PolicyContext,
    fsms: Vec<GatingFsm>,
    tokens: Option<TokenManager>,
    timeline: Option<Timeline>,
    energy: EnergyAccount,
    stats: GatingStats,
}

impl fmt::Debug for Controller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Controller")
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Controller {
    /// Builds a controller around a policy.
    pub fn new(policy: Box<dyn GatingPolicy>, config: ControllerConfig) -> Self {
        let ctx = PolicyContext {
            entry: config.circuit.entry_cycles(config.clock),
            wakeup: config.circuit.wakeup_cycles(config.clock),
            break_even: config
                .circuit
                .break_even_cycles(&config.tech, config.clock),
        };
        Controller {
            policy,
            ctx,
            fsms: Vec::new(),
            tokens: config.tokens.map(TokenManager::new),
            timeline: None,
            energy: EnergyAccount::new(),
            stats: GatingStats::default(),
            config,
        }
    }

    /// Starts recording every power-state transition (for VCD export via
    /// [`Timeline::to_vcd`]).
    pub fn enable_timeline(&mut self) {
        self.timeline.get_or_insert_with(Timeline::new);
    }

    /// The recorded timeline, when enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Takes ownership of the recorded timeline, when enabled.
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        self.timeline.take()
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The circuit-derived constants the policy sees.
    pub fn context(&self) -> &PolicyContext {
        &self.ctx
    }

    /// Gating counters so far.
    pub fn stats(&self) -> &GatingStats {
        &self.stats
    }

    /// Stall-time energy charged so far.
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    /// The wrapped policy (for predictor-score extraction).
    pub fn policy(&self) -> &dyn GatingPolicy {
        self.policy.as_ref()
    }

    /// Token statistics, when token limiting is enabled.
    pub fn token_manager(&self) -> Option<&TokenManager> {
        self.tokens.as_ref()
    }

    /// Closes the FSM books at the end of a run (per-core residencies are
    /// only complete after this).
    pub fn finish(&mut self, final_times: &[Cycle]) {
        for (fsm, &t) in self.fsms.iter_mut().zip(final_times) {
            fsm.finish(t);
        }
    }

    /// Per-core FSMs (residency reporting).
    pub fn fsms(&self) -> &[GatingFsm] {
        &self.fsms
    }

    /// Charges `power` sustained over `span` cycles to `category`.
    fn charge(&mut self, category: EnergyCategory, power: Watts, span: Cycles) {
        self.energy.add(category, power * span.at(self.config.clock));
    }

    fn fsm_mut(&mut self, core: usize) -> &mut GatingFsm {
        while self.fsms.len() <= core {
            self.fsms.push(GatingFsm::new());
        }
        &mut self.fsms[core]
    }

    /// Idle (stalled but powered and clocked) power.
    fn idle_power(&self) -> Watts {
        self.config.tech.idle_dynamic_power() + self.config.tech.leakage_power()
    }
}

impl StallHandler for Controller {
    fn on_stall(&mut self, info: &StallInfo) -> Cycle {
        self.stats.stalls += 1;
        let natural = info.natural_duration();
        let action = self.policy.decide(info, &self.ctx);
        let resume = match action {
            StallAction::StayActive => {
                self.charge(EnergyCategory::IdleStall, self.idle_power(), natural);
                info.data_ready
            }
            StallAction::ClockGate => {
                self.charge(
                    EnergyCategory::IdleStall,
                    self.config.tech.leakage_power(),
                    natural,
                );
                info.data_ready
            }
            StallAction::DvfsScale { point } => {
                self.charge(
                    EnergyCategory::IdleStall,
                    point.idle_power(&self.config.tech),
                    natural,
                );
                info.data_ready
            }
            StallAction::PowerGate { gate_at, wake_at } => {
                self.execute_gate(info, gate_at, wake_at)
            }
        };
        self.policy.observe(info, natural);
        resume
    }
}

impl Controller {
    /// Executes a power-gate decision; returns the resume time.
    fn execute_gate(
        &mut self,
        info: &StallInfo,
        gate_at: Cycle,
        wake_at: Cycle,
    ) -> Cycle {
        let entry = self.ctx.entry;
        let wakeup = self.ctx.wakeup;
        let leak = self.config.tech.leakage_power();
        let gated_power = self.config.circuit.gated_power(&self.config.tech);
        let gate_at = gate_at.max(info.start);
        let entry_done = gate_at + entry;
        // The wake ramp begins at the scheduled time or when the memory
        // response arrives, whichever is first: the data-return signal is
        // observable by the PG controller and always triggers a (reactive)
        // wake, so an over-predicted schedule degrades to the reactive
        // wake penalty instead of sleeping past the data. It also cannot
        // begin before sleep entry completes.
        let mut wake_start = wake_at.min(info.data_ready).max(entry_done);
        // Token limiting may delay it further.
        if let Some(tokens) = &mut self.tokens {
            let granted = tokens.acquire(wake_start, wakeup);
            if granted > wake_start {
                self.stats.token_delayed += 1;
                self.stats.token_delay_cycles += (granted - wake_start).raw();
            }
            wake_start = granted;
        }
        let wake_done = wake_start + wakeup;

        // --- primary sleep: energy, stats, FSM ---------------------------
        // Wait before gating (timeout policies): clock-gated, leakage only.
        self.charge(
            EnergyCategory::IdleStall,
            leak,
            gate_at.saturating_since(info.start),
        );
        // Entry and wake ramps: rail is partially up; charge full leakage
        // (conservative) — the CV² charge itself is in the transition term.
        self.charge(EnergyCategory::IdleStall, leak, entry);
        self.charge(EnergyCategory::IdleStall, leak, wakeup);
        let sleeping = wake_start.saturating_since(entry_done);
        self.charge(EnergyCategory::GatedResidual, gated_power, sleeping);
        self.energy.add(
            EnergyCategory::Transition,
            self.config.circuit.transition_energy(),
        );
        self.stats.gated += 1;
        self.stats.gated_cycles += sleeping.raw();
        self.record_pg_cycle(info.core, gate_at, entry_done, wake_start, wake_done);

        // --- nap chaining -------------------------------------------------
        // The core woke early (under-predicted stall) and the data is still
        // more than a break-even away: re-enter sleep and let the response
        // signal wake it reactively. One re-gate always suffices — the
        // second nap ends at the response.
        let mut last_wake_done = wake_done;
        let regate_threshold = self.ctx.break_even + wakeup;
        if self.config.regate_on_early_wake
            && info.data_ready.saturating_since(wake_done) > regate_threshold
        {
            let nap_entry_done = wake_done + entry;
            // The nap's reactive wake draws the same inrush as any other:
            // it must hold a token too, which may delay it past the
            // response (more penalty, but the di/dt bound stays honest).
            let mut nap_wake_start = info.data_ready;
            if let Some(tokens) = &mut self.tokens {
                let granted = tokens.acquire(nap_wake_start, wakeup);
                if granted > nap_wake_start {
                    self.stats.token_delayed += 1;
                    self.stats.token_delay_cycles +=
                        (granted - nap_wake_start).raw();
                }
                nap_wake_start = granted;
            }
            let nap_wake_done = nap_wake_start + wakeup;
            let nap_span = nap_wake_start - nap_entry_done;

            self.charge(EnergyCategory::IdleStall, leak, entry);
            self.charge(EnergyCategory::IdleStall, leak, wakeup);
            self.charge(EnergyCategory::GatedResidual, gated_power, nap_span);
            self.energy.add(
                EnergyCategory::Transition,
                self.config.circuit.transition_energy(),
            );
            self.stats.regates += 1;
            self.stats.gated_cycles += nap_span.raw();
            self.record_pg_cycle(
                info.core,
                wake_done,
                nap_entry_done,
                nap_wake_start,
                nap_wake_done,
            );
            last_wake_done = nap_wake_done;
        }

        // --- tail / penalty accounting ------------------------------------
        // Non-retentive designs refill pipeline state after restart; the
        // refill delays useful execution past both wake and data arrival.
        let cold_start = self
            .config
            .circuit
            .cold_start_cycles(self.config.clock);
        let resume = last_wake_done.max(info.data_ready) + cold_start;
        if last_wake_done < info.data_ready {
            // Clock-gated idle tail: the PG controller knows the response
            // is still outstanding, so the re-powered core waits with
            // clocks held — leakage only.
            let tail = info.data_ready - last_wake_done;
            self.charge(EnergyCategory::IdleStall, leak, tail);
            self.stats.early_wakes += 1;
            self.stats.idle_tail_cycles += tail.raw();
        } else if last_wake_done > info.data_ready {
            self.stats.overrun_wakes += 1;
        }
        // Anything past data arrival — late wake and/or cold start — is a
        // critical-path penalty; the cold-start window burns idle power
        // (the core executes refill work).
        self.stats.penalty_cycles +=
            resume.saturating_since(info.data_ready).raw();
        self.charge(EnergyCategory::IdleStall, self.idle_power(), cold_start);

        resume
    }

    /// Drives one complete entry → sleep → wake cycle through the core's
    /// FSM and the timeline recorder.
    fn record_pg_cycle(
        &mut self,
        core: mapg_cpu::CoreId,
        gate_at: Cycle,
        entry_done: Cycle,
        wake_start: Cycle,
        wake_done: Cycle,
    ) {
        let fsm = self.fsm_mut(core.0);
        fsm.begin_entry(gate_at);
        fsm.begin_sleep(entry_done);
        fsm.begin_wake(wake_start);
        fsm.complete_wake(wake_done);
        if let Some(timeline) = &mut self.timeline {
            timeline.record(gate_at, core, PgState::Entering);
            timeline.record(entry_done, core, PgState::Sleeping);
            timeline.record(wake_start, core, PgState::Waking);
            timeline.record(wake_done, core, PgState::Active);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MapgPolicy, NaiveOnMiss, NoGating, PolicyKind};
    use mapg_cpu::{CoreId, StallCause};

    fn stall(duration: u64) -> StallInfo {
        StallInfo {
            core: CoreId(0),
            start: Cycle::new(10_000),
            data_ready: Cycle::new(10_000 + duration),
            pc: 0x400,
            outstanding: 1,
            cause: StallCause::Dependency,
        }
    }

    #[test]
    fn context_is_circuit_derived() {
        let config = ControllerConfig::baseline();
        let controller = Controller::new(Box::new(NoGating), config);
        let ctx = controller.context();
        assert_eq!(ctx.entry, config.circuit.entry_cycles(config.clock));
        assert_eq!(ctx.wakeup, config.circuit.wakeup_cycles(config.clock));
        assert!(ctx.break_even > Cycles::ZERO);
    }

    #[test]
    fn passive_policy_charges_idle_energy() {
        let mut controller =
            Controller::new(Box::new(NoGating), ControllerConfig::baseline());
        let info = stall(200);
        let resume = controller.on_stall(&info);
        assert_eq!(resume, info.data_ready);
        assert!(controller
            .energy()
            .get(EnergyCategory::IdleStall)
            .as_joules()
            > 0.0);
        assert_eq!(controller.stats().gated, 0);
        assert_eq!(controller.stats().stalls, 1);
    }

    #[test]
    fn naive_gate_pays_wake_penalty() {
        let config = ControllerConfig::baseline();
        let mut controller = Controller::new(Box::new(NaiveOnMiss), config);
        let info = stall(300);
        let resume = controller.on_stall(&info);
        let wakeup = config.circuit.wakeup_cycles(config.clock);
        assert_eq!(resume, info.data_ready + wakeup);
        assert_eq!(controller.stats().gated, 1);
        assert_eq!(controller.stats().penalty_cycles, wakeup.raw());
        assert!(controller
            .energy()
            .get(EnergyCategory::GatedResidual)
            .as_joules()
            > 0.0);
        assert!(controller
            .energy()
            .get(EnergyCategory::Transition)
            .as_joules()
            > 0.0);
    }

    #[test]
    fn oracle_gate_has_zero_penalty() {
        let mut controller = Controller::new(
            Box::new(MapgPolicy::oracle()),
            ControllerConfig::baseline(),
        );
        let info = stall(400);
        let resume = controller.on_stall(&info);
        assert_eq!(resume, info.data_ready, "oracle hides the wake entirely");
        assert_eq!(controller.stats().penalty_cycles, 0);
        assert_eq!(controller.stats().gated, 1);
    }

    #[test]
    fn oracle_skips_below_break_even() {
        let mut controller = Controller::new(
            Box::new(MapgPolicy::oracle()),
            ControllerConfig::baseline(),
        );
        let short = stall(5);
        let resume = controller.on_stall(&short);
        assert_eq!(resume, short.data_ready);
        assert_eq!(controller.stats().gated, 0);
    }

    #[test]
    fn gated_energy_beats_idle_energy_on_long_stalls() {
        let config = ControllerConfig::baseline();
        let long = stall(2_000);

        let mut idle_ctl = Controller::new(Box::new(NoGating), config);
        idle_ctl.on_stall(&long);
        let idle_energy = idle_ctl.energy().total();

        let mut gate_ctl =
            Controller::new(Box::new(MapgPolicy::oracle()), config);
        gate_ctl.on_stall(&long);
        let gate_energy = gate_ctl.energy().total();

        assert!(
            gate_energy < idle_energy,
            "gating a 2000-cycle stall must win: {gate_energy:?} !< {idle_energy:?}"
        );
    }

    #[test]
    fn token_limit_delays_second_simultaneous_wake() {
        let config = ControllerConfig {
            tokens: Some(1),
            ..ControllerConfig::baseline()
        };
        let mut controller =
            Controller::new(Box::new(MapgPolicy::oracle()), config);
        // Two cores stall with identical timing: their wake ramps collide.
        let a = StallInfo {
            core: CoreId(0),
            ..stall(400)
        };
        let b = StallInfo {
            core: CoreId(1),
            ..stall(400)
        };
        let resume_a = controller.on_stall(&a);
        let resume_b = controller.on_stall(&b);
        assert_eq!(resume_a, a.data_ready);
        assert!(
            resume_b > b.data_ready,
            "second wake must wait for the token"
        );
        assert_eq!(controller.stats().token_delayed, 1);
        assert!(controller.stats().token_delay_cycles > 0);
    }

    #[test]
    fn fsm_residencies_match_stats() {
        let config = ControllerConfig::baseline();
        let mut controller =
            Controller::new(Box::new(MapgPolicy::oracle()), config);
        let info = stall(500);
        let resume = controller.on_stall(&info);
        controller.finish(&[resume]);
        let fsm = &controller.fsms()[0];
        assert_eq!(fsm.sleep_count(), 1);
        assert_eq!(
            fsm.residency().sleeping.raw(),
            controller.stats().gated_cycles
        );
    }

    #[test]
    fn underpredicted_long_stall_regates() {
        use crate::predictor::StaticPredictor;
        // A static 200-cycle prediction on a 5000-cycle stall: the core
        // wakes at ~start+200, finds the data 4800 cycles away, and must
        // nap again until the response.
        let policy = MapgPolicy::with_predictor(
            StaticPredictor::new(Cycles::new(200)),
            "static-test",
        );
        let config = ControllerConfig::baseline();
        let mut controller = Controller::new(Box::new(policy), config);
        let info = stall(5_000);
        let resume = controller.on_stall(&info);
        assert_eq!(controller.stats().regates, 1);
        // Reactive wake from the nap: resume = data + wakeup.
        let wakeup = config.circuit.wakeup_cycles(config.clock);
        assert_eq!(resume, info.data_ready + wakeup);
        // Both sleep spans count as gated time; only the ramps and the
        // short awake gap are lost.
        assert!(
            controller.stats().gated_cycles > 4_500,
            "gated {} of a 5000-cycle stall",
            controller.stats().gated_cycles
        );
        assert_eq!(controller.stats().early_wakes, 0, "tail was re-gated");
    }

    #[test]
    fn regate_can_be_disabled() {
        use crate::predictor::StaticPredictor;
        let policy = MapgPolicy::with_predictor(
            StaticPredictor::new(Cycles::new(200)),
            "static-test",
        );
        let config = ControllerConfig {
            regate_on_early_wake: false,
            ..ControllerConfig::baseline()
        };
        let mut controller = Controller::new(Box::new(policy), config);
        let info = stall(5_000);
        let resume = controller.on_stall(&info);
        assert_eq!(controller.stats().regates, 0);
        assert_eq!(resume, info.data_ready, "early wake, clock-gated tail");
        assert_eq!(controller.stats().early_wakes, 1);
        assert!(controller.stats().idle_tail_cycles > 4_000);
    }

    #[test]
    fn stats_display() {
        let stats = GatingStats {
            stalls: 10,
            gated: 5,
            gated_cycles: 1000,
            ..GatingStats::default()
        };
        assert!((stats.gated_fraction() - 0.5).abs() < 1e-12);
        assert!((stats.mean_residency() - 200.0).abs() < 1e-12);
        assert!(stats.to_string().contains("5/10"));
    }

    #[test]
    fn every_comparison_policy_runs_through_controller() {
        for kind in PolicyKind::COMPARISON_SET {
            let mut controller = Controller::new(
                kind.instantiate(),
                ControllerConfig::baseline(),
            );
            let info = stall(300);
            let resume = controller.on_stall(&info);
            assert!(
                resume >= info.data_ready,
                "{}: resumed before data",
                kind.name()
            );
            assert_eq!(controller.policy_name(), kind.name());
        }
    }
}
