//! Property tests over the fault-injection harness: determinism under
//! arbitrary fault plans, and cleanliness of fault-free runs.

#![deny(unused)]

use proptest::prelude::*;

use mapg::{FaultPlan, PolicyKind, SimConfig, Simulation};
use mapg_trace::WorkloadProfile;

const POLICIES: [PolicyKind; 3] = [
    PolicyKind::Mapg,
    PolicyKind::NaiveOnMiss,
    PolicyKind::ClockGating,
];

fn config(seed: u64, cores: usize, plan: FaultPlan) -> SimConfig {
    SimConfig::default()
        .with_profile(WorkloadProfile::mem_bound("mem_bound"))
        .with_instructions(10_000)
        .with_cores(cores)
        .with_tokens(cores.max(2))
        .with_seed(seed)
        .with_fault_plan(plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (seed, fault plan, config) fully determine the run: two simulations
    /// built from the same inputs produce bit-identical reports, fault
    /// counts included.
    #[test]
    fn any_fault_plan_is_deterministic(
        seed in 0u64..1_000_000,
        intensity in 0.0f64..3.0,
        cores in 1usize..3,
        policy_index in 0usize..3,
        watchdog in any::<bool>(),
    ) {
        let plan = FaultPlan::moderate().with_intensity(intensity);
        let policy = POLICIES[policy_index];
        let build = || {
            let mut c = config(seed, cores, plan);
            if watchdog {
                c = c.with_safe_mode_default();
            }
            Simulation::new(c, policy).run()
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.makespan_cycles, b.makespan_cycles);
        prop_assert_eq!(
            a.energy.total().as_joules().to_bits(),
            b.energy.total().as_joules().to_bits(),
            "energy must match to the bit"
        );
        prop_assert_eq!(a.gating.gated, b.gating.gated);
        prop_assert_eq!(a.gating.penalty_cycles, b.gating.penalty_cycles);
        prop_assert_eq!(a.faults.slow_wakes, b.faults.slow_wakes);
        prop_assert_eq!(a.faults.dropped_grants, b.faults.dropped_grants);
        prop_assert_eq!(
            a.faults.corrupted_observations,
            b.faults.corrupted_observations
        );
        prop_assert_eq!(a.faults.brownout_delayed_wakes, b.faults.brownout_delayed_wakes);
        prop_assert_eq!(a.memory.dram.fault_spikes, b.memory.dram.fault_spikes);
        prop_assert_eq!(
            a.degradation.safe_mode_entries,
            b.degradation.safe_mode_entries
        );
        // Whatever the faults do to timing, the books must still balance.
        prop_assert!(
            a.invariants.is_clean(),
            "fault plan broke an invariant: {}",
            a.invariants
        );
    }

    /// A no-fault config behaves exactly like one that never heard of the
    /// harness: zero injected faults, zero violations, and a report
    /// bit-identical to a plain `SimConfig` run.
    #[test]
    fn no_fault_config_is_clean_and_unperturbed(
        seed in 0u64..1_000_000,
        cores in 1usize..3,
        policy_index in 0usize..3,
    ) {
        let policy = POLICIES[policy_index];
        let with_plan =
            Simulation::new(config(seed, cores, FaultPlan::none()), policy)
                .run();
        let plain = Simulation::new(
            SimConfig::default()
                .with_profile(WorkloadProfile::mem_bound("mem_bound"))
                .with_instructions(10_000)
                .with_cores(cores)
                .with_tokens(cores.max(2))
                .with_seed(seed),
            policy,
        )
        .run();
        prop_assert_eq!(with_plan.faults.total(), 0);
        prop_assert_eq!(with_plan.memory.dram.fault_spikes, 0);
        prop_assert!(
            with_plan.invariants.is_clean(),
            "fault-free run violated an invariant: {}",
            with_plan.invariants
        );
        prop_assert!(with_plan.invariants.checks > 0);
        prop_assert_eq!(with_plan.makespan_cycles, plain.makespan_cycles);
        prop_assert_eq!(
            with_plan.energy.total().as_joules().to_bits(),
            plain.energy.total().as_joules().to_bits(),
            "FaultPlan::none() must not perturb the simulation"
        );
        prop_assert_eq!(with_plan.gating.gated, plain.gating.gated);
    }
}
