//! Property tests over the gating mechanism: FSM residency conservation,
//! token-manager guarantees, controller contracts.

#![deny(unused)]

use proptest::prelude::*;

use mapg::{Controller, ControllerConfig, GatingFsm, MapgPolicy, PolicyKind, TokenManager};
use mapg_cpu::{CoreId, StallCause, StallHandler, StallInfo};
use mapg_units::{Cycle, Cycles};

proptest! {
    #[test]
    fn fsm_residency_partitions_time(
        spans in prop::collection::vec((1u64..50, 1u64..30, 1u64..500, 1u64..40), 1..50)
    ) {
        // Random sequence of (active, entry, sleep, wake) spans.
        let mut fsm = GatingFsm::new();
        let mut t = 0u64;
        for &(active, entry, sleep, wake) in &spans {
            t += active;
            fsm.begin_entry(Cycle::new(t));
            t += entry;
            fsm.begin_sleep(Cycle::new(t));
            t += sleep;
            fsm.begin_wake(Cycle::new(t));
            t += wake;
            fsm.complete_wake(Cycle::new(t));
        }
        fsm.finish(Cycle::new(t));
        let residency = *fsm.residency();
        prop_assert_eq!(residency.total(), Cycles::new(t));
        prop_assert_eq!(fsm.sleep_count(), spans.len() as u64);
        let sleep_sum: u64 = spans.iter().map(|s| s.2).sum();
        prop_assert_eq!(residency.sleeping, Cycles::new(sleep_sum));
    }

    #[test]
    fn token_manager_never_exceeds_capacity_and_never_starves(
        capacity in 1usize..8,
        requests in prop::collection::vec((0u64..10_000, 1u64..100), 1..200)
    ) {
        let mut tokens = TokenManager::new(capacity);
        let mut grants: Vec<(u64, u64)> = Vec::new();
        for &(ready, duration) in &requests {
            let start =
                tokens.acquire(Cycle::new(ready), Cycles::new(duration));
            prop_assert!(start.raw() >= ready, "granted before ready");
            grants.push((start.raw(), start.raw() + duration));
        }
        prop_assert_eq!(tokens.grants(), requests.len() as u64);
        prop_assert!(tokens.peak_concurrency() <= capacity);
        // Independent sweep-line check: at no instant are more than
        // `capacity` grant intervals simultaneously active.
        let mut events: Vec<(u64, i32)> = Vec::new();
        for &(s, e) in &grants {
            events.push((s, 1));
            events.push((e, -1));
        }
        events.sort_by_key(|&(t, delta)| (t, delta)); // ends (-1) before starts at the same instant
        let mut live = 0i32;
        for (t, delta) in events {
            live += delta;
            prop_assert!(
                live as usize <= capacity,
                "{} concurrent grants at t={} with capacity {}",
                live,
                t,
                capacity
            );
        }
    }

    #[test]
    fn controller_always_resumes_at_or_after_data(
        stalls in prop::collection::vec((1u64..2_000, 0u64..64), 1..200),
        policy_index in 0usize..7,
    ) {
        let policy = PolicyKind::COMPARISON_SET[policy_index];
        let mut controller = Controller::new(
            policy.instantiate(),
            ControllerConfig::baseline(),
        );
        let mut t = 1_000u64;
        for &(duration, pc) in &stalls {
            let info = StallInfo {
                core: CoreId(0),
                start: Cycle::new(t),
                data_ready: Cycle::new(t + duration),
                pc: 0x400 + pc * 4,
                outstanding: 1,
                cause: StallCause::Dependency,
            };
            let resume = controller.on_stall(&info);
            prop_assert!(resume >= info.data_ready, "{}", policy.name());
            t = resume.raw() + 10;
        }
        prop_assert_eq!(
            controller.stats().stalls,
            stalls.len() as u64
        );
        prop_assert!(controller.stats().gated <= controller.stats().stalls);
        prop_assert!(
            controller.energy().total().as_joules() >= 0.0
        );
    }

    #[test]
    fn oracle_policy_never_pays_penalty(
        stalls in prop::collection::vec(1u64..5_000, 1..300),
    ) {
        let mut controller = Controller::new(
            Box::new(MapgPolicy::oracle()),
            ControllerConfig::baseline(),
        );
        let mut t = 0u64;
        for &duration in &stalls {
            let info = StallInfo {
                core: CoreId(0),
                start: Cycle::new(t),
                data_ready: Cycle::new(t + duration),
                pc: 0x400,
                outstanding: 1,
                cause: StallCause::MlpLimit,
            };
            let resume = controller.on_stall(&info);
            prop_assert_eq!(
                resume,
                info.data_ready,
                "oracle must hide all latency"
            );
            t = resume.raw() + 5;
        }
        prop_assert_eq!(controller.stats().penalty_cycles, 0);
        prop_assert_eq!(controller.stats().overrun_wakes, 0);
    }

    #[test]
    fn gated_cycles_bounded_by_stall_time(
        stalls in prop::collection::vec(1u64..3_000, 1..200),
    ) {
        let mut controller = Controller::new(
            PolicyKind::NaiveOnMiss.instantiate(),
            ControllerConfig::baseline(),
        );
        let mut total_stall = 0u64;
        let mut t = 0u64;
        for &duration in &stalls {
            let info = StallInfo {
                core: CoreId(0),
                start: Cycle::new(t),
                data_ready: Cycle::new(t + duration),
                pc: 0x8,
                outstanding: 1,
                cause: StallCause::MlpLimit,
            };
            let resume = controller.on_stall(&info);
            total_stall += (resume - Cycle::new(t)).raw();
            t = resume.raw() + 1;
        }
        prop_assert!(
            controller.stats().gated_cycles <= total_stall,
            "slept longer than stalled"
        );
    }
}
