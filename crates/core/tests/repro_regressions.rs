//! Committed crash-repro regression suite.
//!
//! Every JSON file under `tests/repros/` is a shrunk scenario the
//! differential fuzzer once flagged (the `finding_class`/`finding_detail`
//! fields record what it produced at the time). The bugs are fixed, so
//! replaying each file through the live-vs-reference oracle must come
//! back clean — if a finding ever reproduces again, the fix regressed.
//!
//! To pin a new repro: run `mapg-fuzz --out DIR`, fix the bug, copy the
//! repro JSON here, and confirm `mapgsim --repro FILE` exits 0.

use std::path::PathBuf;

use mapg::fuzz::ReproFile;

fn repro_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/repros");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    assert!(
        !files.is_empty(),
        "no repro files in {} — the suite must cover at least one fixed bug",
        dir.display()
    );
    files
}

/// Each committed repro replays bit-for-bit and no longer diverges.
#[test]
fn committed_repros_stay_fixed() {
    for path in repro_files() {
        let repro = ReproFile::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let outcome = repro
            .replay()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            outcome,
            None,
            "{}: recorded bug ({}: {}) reproduced again",
            path.display(),
            repro.finding_class,
            repro.finding_detail
        );
    }
}

/// The committed files round-trip through the writer, so hand edits that
/// drift from the schema are caught here rather than in a fuzz run.
#[test]
fn committed_repros_round_trip() {
    for path in repro_files() {
        let text = std::fs::read_to_string(&path).expect("readable repro");
        let repro =
            ReproFile::from_json_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let back = ReproFile::from_json_text(&repro.to_json_text())
            .unwrap_or_else(|e| panic!("{}: re-rendered form unreadable: {e}", path.display()));
        assert_eq!(repro, back, "{}", path.display());
    }
}

/// Provenance check: the recorded `(campaign_seed, scenario_index)` must
/// regenerate a scenario that the recorded shrink count could have come
/// from — guarding against hand-edited provenance that points nowhere.
#[test]
fn committed_repros_carry_generatable_provenance() {
    use mapg::fuzz::Scenario;
    for path in repro_files() {
        let repro = ReproFile::load(&path).expect("loadable repro");
        let (Some(seed), Some(index)) = (repro.campaign_seed, repro.scenario_index) else {
            continue; // hand-written repro without campaign provenance
        };
        let original = Scenario::generate(seed, index);
        if repro.shrink_steps == 0 {
            assert_eq!(
                original,
                repro.scenario,
                "{}: unshrunk repro does not match its provenance",
                path.display()
            );
        } else {
            assert_ne!(
                original,
                repro.scenario,
                "{}: shrink steps recorded but scenario is unshrunk",
                path.display()
            );
        }
    }
}
