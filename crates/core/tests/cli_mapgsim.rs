//! End-to-end tests of the `mapgsim` binary's observability flags:
//! `--trace`/`--metrics` happy paths, unwritable targets, and rejected
//! flag combinations. Follows the style of `crates/bench/tests/cli.rs`.

#![deny(unused)]

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mapgsim"))
        .args(args)
        .output()
        .expect("mapgsim binary should spawn")
}

fn temp_file(dir: &str, name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn help_mentions_the_observability_flags() {
    let out = run(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("--trace"), "{text}");
    assert!(text.contains("--metrics"), "{text}");
}

#[test]
fn trace_and_metrics_write_valid_artifacts() {
    let trace_path = temp_file("mapgsim-cli-test", "trace.json");
    let metrics_path = temp_file("mapgsim-cli-test", "metrics.json");
    let out = run(&[
        "--instructions",
        "20000",
        "--cores",
        "2",
        "--trace",
        trace_path.to_str().unwrap(),
        "--metrics",
        metrics_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("trace written to"), "{stdout}");
    assert!(stdout.contains("metrics written to"), "{stdout}");

    let trace = std::fs::read_to_string(&trace_path).unwrap();
    std::fs::remove_file(&trace_path).ok();
    assert!(
        trace.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["),
        "not a Chrome trace: {}",
        &trace[..trace.len().min(120)]
    );
    assert!(trace.ends_with("]}\n"), "trace not terminated");
    for needle in [
        "\"ph\": \"M\"", // metadata naming the core/dram/controller rows
        "\"ph\": \"B\"", // span opens…
        "\"ph\": \"E\"", // …and closes
        "\"name\": \"stall\"",
        "\"name\": \"gated\"",
        "\"name\": \"wake\"",
    ] {
        assert!(trace.contains(needle), "trace missing '{needle}'");
    }

    let metrics = std::fs::read_to_string(&metrics_path).unwrap();
    std::fs::remove_file(&metrics_path).ok();
    for needle in [
        "\"counters\": {",
        "\"histograms\": {",
        "\"gates\":",
        "\"stall_length\":",
    ] {
        assert!(
            metrics.contains(needle),
            "metrics missing '{needle}': {metrics}"
        );
    }
}

#[test]
fn capture_runs_print_the_same_report_as_plain_runs() {
    let trace_path = temp_file("mapgsim-cli-report-test", "trace.json");
    let plain = run(&["--instructions", "20000"]);
    let traced = run(&[
        "--instructions",
        "20000",
        "--trace",
        trace_path.to_str().unwrap(),
    ]);
    std::fs::remove_file(&trace_path).ok();
    assert!(plain.status.success() && traced.status.success());
    let plain = String::from_utf8(plain.stdout).unwrap();
    let traced = String::from_utf8(traced.stdout).unwrap();
    // Everything except the trailing "trace written" line is identical:
    // observation must not perturb the simulation.
    assert!(traced.starts_with(&plain), "tracing changed the report");
}

#[test]
fn unwritable_trace_path_is_a_clean_error() {
    let out = run(&[
        "--instructions",
        "5000",
        "--trace",
        "/nonexistent-dir/trace.json",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error: cannot write trace"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn unwritable_metrics_path_is_a_clean_error() {
    let out = run(&[
        "--instructions",
        "5000",
        "--metrics",
        "/nonexistent-dir/metrics.json",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error: cannot write metrics"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn capture_flags_reject_compare() {
    for flag in ["--trace", "--metrics"] {
        let out = run(&[flag, "/tmp/out.json", "--compare"]);
        assert!(!out.status.success(), "{flag} with --compare should fail");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("exactly one run"), "{err}");
    }
}

#[test]
fn capture_flags_need_values() {
    for flag in ["--trace", "--metrics", "--repro"] {
        let out = run(&[flag]);
        assert!(!out.status.success(), "bare {flag} should fail");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("needs a path"), "{err}");
    }
}

/// `--shards N` crosschecks the sharded engine against the single wheel
/// without perturbing the printed report, warns when the shard count
/// exceeds the core count, and rejects zero.
#[test]
fn shards_crosscheck_is_report_invariant() {
    let plain = run(&["--instructions", "20000", "--cores", "4", "--channels", "2"]);
    let sharded = run(&[
        "--instructions",
        "20000",
        "--cores",
        "4",
        "--channels",
        "2",
        "--shards",
        "3",
    ]);
    assert!(plain.status.success() && sharded.status.success());
    let plain = String::from_utf8(plain.stdout).unwrap();
    let sharded = String::from_utf8(sharded.stdout).unwrap();
    // Everything except the trailing crosscheck verdict is identical:
    // shards are an execution strategy, never a result knob.
    assert!(sharded.starts_with(&plain), "--shards changed the report");
    assert!(
        sharded.contains("bit-identical to the single wheel"),
        "{sharded}"
    );

    let oversubscribed = run(&["--instructions", "5000", "--cores", "2", "--shards", "8"]);
    assert!(oversubscribed.status.success(), "{:?}", oversubscribed);
    let err = String::from_utf8(oversubscribed.stderr).unwrap();
    assert!(
        err.contains("warning: --shards 8 exceeds --cores 2"),
        "{err}"
    );

    for flag in ["--shards", "--channels"] {
        let zero = run(&[flag, "0"]);
        assert!(!zero.status.success(), "{flag} 0 should fail");
        let err = String::from_utf8(zero.stderr).unwrap();
        assert!(err.contains("need at least one"), "{err}");
    }
}

/// The worker-oversubscription warning keys off the pool's actual worker
/// count (available parallelism, absent an override) versus the
/// *effective* shard count min(shards, channels, cores) — and never
/// fires for a single effective shard.
#[test]
fn shards_warn_when_pool_workers_are_oversubscribed() {
    let out = run(&[
        "--instructions",
        "5000",
        "--cores",
        "4",
        "--channels",
        "4",
        "--shards",
        "4",
    ]);
    assert!(out.status.success(), "{:?}", out);
    let err = String::from_utf8(out.stderr).unwrap();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let expect_warning = workers < 4;
    assert_eq!(
        err.contains("shard wheel(s) share"),
        expect_warning,
        "workers = {workers}: {err}"
    );

    // One effective shard wheel cannot be oversubscribed, whatever the
    // nominal --shards count says.
    let single = run(&["--instructions", "5000", "--cores", "4", "--shards", "16"]);
    assert!(single.status.success(), "{:?}", single);
    let err = String::from_utf8(single.stderr).unwrap();
    assert!(!err.contains("shard wheel(s) share"), "{err}");
}

fn committed_repro() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/repros/region-starved-panic.json")
}

/// A committed (fixed) repro replays clean: exit 0 and a provenance line.
#[test]
fn repro_replay_of_a_fixed_bug_exits_zero() {
    let path = committed_repro();
    let out = run(&["--repro", path.to_str().unwrap()]);
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("campaign seed 1"), "{stdout}");
    assert!(stdout.contains("replay     : clean"), "{stdout}");
}

/// `--repro` is self-contained; every run-shaping flag conflicts with it,
/// in either order, and the error names the offending flag.
#[test]
fn repro_rejects_run_shaping_flags() {
    let path = committed_repro();
    let path = path.to_str().unwrap();
    for extra in [
        ["--cores", "4"],
        ["--policy", "mapg"],
        ["--seed", "7"],
        ["--fault-plan", "light"],
        ["--compare", "--safe-mode"],
    ] {
        let out = run(&["--repro", path, extra[0], extra[1]]);
        assert!(!out.status.success(), "{extra:?} should conflict");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("error: --repro replays"), "{err}");
        assert!(err.contains(extra[0]), "{err} should name {}", extra[0]);
    }
    // Flag order must not matter.
    let out = run(&["--workload", "mixed", "--repro", path]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--workload"), "{err}");
}

/// A missing repro file gets a usage-style diagnostic that names the
/// offending path, and the exit is nonzero.
#[test]
fn repro_with_missing_file_is_a_clean_error() {
    let out = run(&["--repro", "/nonexistent-dir/repro.json"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error: --repro: cannot read"), "{err}");
    assert!(err.contains("/nonexistent-dir/repro.json"), "{err}");
    assert!(err.contains("usage: mapgsim --repro FILE"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
}

/// An unparsable repro file likewise: nonzero exit, the path, and the
/// usage hint.
#[test]
fn repro_with_garbage_json_is_a_clean_error() {
    let path = temp_file("mapgsim-cli-repro-test", "garbage.json");
    std::fs::write(&path, "{\"schema\": 1, \"truncated").unwrap();
    let out = run(&["--repro", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error: --repro:"), "{err}");
    assert!(err.contains("is not a valid repro file"), "{err}");
    assert!(err.contains(path.to_str().unwrap()), "{err}");
    assert!(err.contains("usage: mapgsim --repro FILE"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
    std::fs::remove_file(&path).ok();
}

/// A generous deadline routes the run through the supervised engine and
/// still prints the normal report; a zero deadline is rejected.
#[test]
fn deadline_runs_are_supervised_and_validated() {
    let supervised = run(&["--instructions", "20000", "--deadline-ms", "600000"]);
    assert!(supervised.status.success(), "{:?}", supervised);
    let plain = run(&["--instructions", "20000"]);
    assert_eq!(
        String::from_utf8(supervised.stdout).unwrap(),
        String::from_utf8(plain.stdout).unwrap(),
        "supervision must not perturb the report"
    );

    let zero = run(&["--deadline-ms", "0"]);
    assert!(!zero.status.success());
    let err = String::from_utf8(zero.stderr).unwrap();
    assert!(err.contains("--deadline-ms"), "{err}");
}

/// `--deadline-ms` shapes a run, so it conflicts with `--repro`.
#[test]
fn deadline_conflicts_with_repro() {
    let path = committed_repro();
    let out = run(&["--repro", path.to_str().unwrap(), "--deadline-ms", "1000"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--deadline-ms"), "{err}");
}
