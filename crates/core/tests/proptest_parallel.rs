//! Property tests for parallel execution: fanning the suite matrix across
//! the thread pool must never change a single bit of any report, at any
//! job count, for any configuration — determinism is enforced, not
//! assumed (DESIGN.md §7).

#![deny(unused)]

use proptest::prelude::*;

use mapg::{PolicyKind, SimConfig, SuiteRunner};
use mapg_trace::WorkloadSuite;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_suite_matrix_equals_serial_bit_for_bit(
        seed in any::<u64>(),
        instructions in 5_000u64..25_000,
        cores in 1usize..3,
        jobs in 2usize..9,
        policy_count in 1usize..4,
    ) {
        let policies = [
            PolicyKind::Mapg,
            PolicyKind::NoGating,
            PolicyKind::NaiveOnMiss,
        ];
        let policies = &policies[..policy_count];
        let base = SimConfig::default()
            .with_instructions(instructions)
            .with_cores(cores)
            .with_seed(seed);
        let runner = SuiteRunner::new(WorkloadSuite::extremes(), base);

        let serial = runner.clone().with_jobs(1).run(policies);
        let parallel = runner.with_jobs(jobs).run(policies);

        prop_assert_eq!(serial.reports().len(), parallel.reports().len());
        for (s, p) in serial.reports().iter().zip(parallel.reports()) {
            prop_assert_eq!(s, p, "jobs={} diverged from serial", jobs);
        }
    }

    #[test]
    fn ambient_jobs_override_matches_serial(
        seed in any::<u64>(),
        jobs in 2usize..6,
    ) {
        // The thread-local default (what the experiments binary pins per
        // worker) must behave exactly like the explicit builder.
        let base = SimConfig::default()
            .with_instructions(8_000)
            .with_seed(seed);
        let runner = SuiteRunner::new(WorkloadSuite::extremes(), base);
        let policies = [PolicyKind::NoGating, PolicyKind::Mapg];

        let serial = runner.clone().with_jobs(1).run(&policies);
        let ambient = mapg_pool::with_default_jobs(jobs, || runner.run(&policies));

        prop_assert_eq!(serial.reports(), ambient.reports());
    }
}
