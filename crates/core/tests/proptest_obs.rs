//! Property tests over the observability layer.
//!
//! The trace is only worth regressing against if it obeys hard laws:
//! per-scope timestamps never run backwards, every span that opens
//! closes, and the trace-derived gated-cycle sums reconcile *exactly*
//! with the run report's gating statistics — for arbitrary seeds, core
//! counts, fault plans, and token capacities.

#![deny(unused)]

use proptest::prelude::*;

use mapg::{FaultPlan, PolicyKind, SimConfig, Simulation};
use mapg_obs::{EventKind, Scope, TraceBuffer};

fn fault_plan(choice: usize) -> FaultPlan {
    match choice {
        0 => FaultPlan::none(),
        1 => FaultPlan::light(),
        2 => FaultPlan::moderate(),
        _ => FaultPlan::heavy(),
    }
}

fn observed_config(
    seed: u64,
    cores: usize,
    plan_choice: usize,
    tokens: usize,
    watchdog: bool,
) -> SimConfig {
    let mut config = SimConfig::default()
        .with_cores(cores)
        .with_instructions(5_000)
        .with_seed(seed)
        .with_fault_plan(fault_plan(plan_choice))
        // Large enough that no smoke-scale run ever wraps the ring: a
        // dropped record would silently break reconciliation.
        .with_trace_capacity(1 << 22)
        .with_metrics();
    if tokens > 0 {
        config = config.with_tokens(tokens);
    }
    if watchdog {
        config = config.with_safe_mode_default();
    }
    config
}

/// Asserts that `begin`/`end` events alternate strictly (never two opens
/// without a close) and balance exactly within one scope's stream.
fn assert_balanced(
    trace: &TraceBuffer,
    scope: Scope,
    begin: EventKind,
    end: EventKind,
) -> Result<(), String> {
    let mut open = 0i64;
    for record in trace.iter().filter(|r| r.scope == scope) {
        if record.kind == begin {
            open += 1;
            if open > 1 {
                return Err(format!("{scope}: {begin:?} opened twice at {}", record.at));
            }
        } else if record.kind == end {
            open -= 1;
            if open < 0 {
                return Err(format!(
                    "{scope}: {end:?} without {begin:?} at {}",
                    record.at
                ));
            }
        }
    }
    if open != 0 {
        return Err(format!("{scope}: {open} unclosed {begin:?} span(s)"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn trace_laws_hold_for_arbitrary_runs(
        seed in 0u64..1_000,
        cores in 1usize..5,
        plan_choice in 0usize..4,
        tokens in 0usize..3,
        watchdog in any::<bool>(),
    ) {
        let config = observed_config(seed, cores, plan_choice, tokens, watchdog);
        let report = Simulation::new(config, PolicyKind::Mapg).run();
        let trace = report.trace.as_ref().expect("trace was requested");
        prop_assert_eq!(trace.dropped(), 0, "ring wrapped at smoke scale");
        prop_assert!(!trace.is_empty(), "mem-bound run must gate");

        // Per-scope timestamps are non-decreasing in emission order.
        let mut last_at: std::collections::BTreeMap<Scope, u64> =
            std::collections::BTreeMap::new();
        for record in trace.iter() {
            let last = last_at.entry(record.scope).or_insert(0);
            prop_assert!(
                record.at >= *last,
                "{}: {:?} at {} regresses behind {}",
                record.scope, record.kind, record.at, *last
            );
            *last = record.at;
        }

        // Every span opens once and closes once, in every scope.
        for core in 0..cores as u32 {
            let scope = Scope::Core(core);
            for (begin, end) in [
                (EventKind::StallBegin, EventKind::StallEnd),
                (EventKind::SleepEnter, EventKind::SleepExit),
                (EventKind::WakeStart, EventKind::WakeDone),
            ] {
                if let Err(problem) = assert_balanced(trace, scope, begin, end) {
                    prop_assert!(false, "{}", problem);
                }
            }
        }
        if let Err(problem) = assert_balanced(
            trace,
            Scope::Global,
            EventKind::SafeModeEnter,
            EventKind::SafeModeExit,
        ) {
            prop_assert!(false, "{}", problem);
        }
    }

    #[test]
    fn trace_and_metrics_reconcile_with_the_report(
        seed in 0u64..1_000,
        cores in 1usize..5,
        plan_choice in 0usize..4,
        tokens in 0usize..3,
        watchdog in any::<bool>(),
    ) {
        let config = observed_config(seed, cores, plan_choice, tokens, watchdog);
        let report = Simulation::new(config, PolicyKind::Mapg).run();
        let trace = report.trace.as_ref().expect("trace was requested");
        let metrics = report.metrics.as_ref().expect("metrics were requested");

        // Sleep spans in the trace sum exactly to the report's gated
        // cycles — the load-bearing cross-check between the two layers.
        let per_core = trace.gated_cycles_per_core();
        let traced: u64 = per_core.values().sum();
        prop_assert_eq!(traced, report.gating.gated_cycles);

        // Counter reconciliation against the independently-kept stats.
        prop_assert_eq!(metrics.counter("gates"), report.gating.gated);
        prop_assert_eq!(metrics.counter("regates"), report.gating.regates);
        prop_assert_eq!(
            metrics.counter("fsm_sleeping_cycles"),
            report.gating.gated_cycles,
            "FSM residency must agree with the gating ledger"
        );
        let gated_hist = metrics
            .histogram("gated_duration")
            .expect("every gate observes its duration");
        prop_assert_eq!(
            gated_hist.count(),
            report.gating.gated + report.gating.regates
        );
        prop_assert_eq!(gated_hist.sum(), report.gating.gated_cycles);

        // Event counts match the stats' view of gating activity.
        let enters = trace.count_kind(EventKind::SleepEnter) as u64;
        prop_assert_eq!(enters, report.gating.gated + report.gating.regates);
    }

    #[test]
    fn traces_are_deterministic(
        seed in 0u64..1_000,
        cores in 1usize..4,
        plan_choice in 0usize..4,
    ) {
        let run = || {
            let config = observed_config(seed, cores, plan_choice, 2, true);
            Simulation::new(config, PolicyKind::Mapg).run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.trace.as_ref(), b.trace.as_ref());
        prop_assert_eq!(a.metrics.as_ref(), b.metrics.as_ref());
        prop_assert_eq!(
            a.trace.as_ref().map(TraceBuffer::to_chrome_trace),
            b.trace.as_ref().map(TraceBuffer::to_chrome_trace)
        );
    }
}
