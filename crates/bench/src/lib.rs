//! Experiment harness for the MAPG reproduction.
//!
//! Everything the `experiments` binary, the criterion benches and the
//! workspace integration tests share:
//!
//! - [`Scale`] — smoke / quick / paper instruction budgets;
//! - [`Table`] — the text/CSV result format;
//! - [`experiments`] — one module per reconstructed table/figure, plus the
//!   [`experiments::all`] registry;
//! - [`ThroughputReport`] — the `--bench-throughput` harness measuring
//!   simulated-cycles-per-second (event-wheel vs reference scheduler).
//!
//! # Regenerating the paper's evaluation
//!
//! ```bash
//! cargo run -p mapg-bench --release --bin experiments            # all, paper scale
//! cargo run -p mapg-bench --release --bin experiments -- rt3    # one experiment
//! cargo run -p mapg-bench --release --bin experiments -- --scale quick rf5
//! ```
//!
//! # Programmatic use
//!
//! ```
//! use mapg_bench::{experiments, Scale};
//!
//! let rt1 = experiments::find("rt1").expect("registered");
//! let tables = (rt1.run)(Scale::Smoke);
//! assert_eq!(tables[0].id(), "R-T1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod daemon;
mod engine;
pub mod experiments;
mod fuzz;
mod journal;
mod manifest;
mod scale;
mod table;
mod throughput;

pub use client::{Client, ClientError, JobResult, JobStatus, StreamEnd, StreamEvent};
pub use daemon::{Daemon, DaemonConfig, PROTOCOL_VERSION};
pub use engine::{render_tables, ExperimentJob, ExperimentOutput, OutputFormat};
pub use fuzz::{
    run_campaign, run_campaign_supervised, CampaignConfig, CampaignFailure, CampaignFinding,
    CampaignReport,
};
pub use journal::{fnv1a64, Journal, JournalEntry, JournalError, JOURNAL_SCHEMA};
pub use manifest::{
    FuzzFindingSummary, FuzzProvenance, Manifest, ManifestEntry, TableSummary, MANIFEST_SCHEMA,
};
pub use scale::Scale;
pub use table::{pct, ratio, Table};
pub use throughput::{
    run_shard_throughput_cli, run_throughput_cli, ShardCase, ShardReport, ThreadPoint,
    ThroughputCase, ThroughputReport, CORE_COUNTS, SHARD_SCHEMA, SHARD_TOPOLOGIES,
    SHARD_TRACE_POOL, THREAD_CURVE_SEGMENTS, THROUGHPUT_SCHEMA, THROUGHPUT_TOLERANCE,
};
