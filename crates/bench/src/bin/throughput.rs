//! The dedicated throughput-benchmark binary.
//!
//! Runs exactly the `experiments --bench-throughput` mode and nothing
//! else. The measurement lives in its own binary on purpose: linking the
//! timed hot loop into the full experiment driver demonstrably shifts
//! LTO inlining and code layout enough to slow the optimized stack by
//! ~25% while leaving the reference stack untouched, which corrupts the
//! committed speedup ratios. Keeping this binary minimal lets dead-code
//! elimination strip the driver before LTO, so the measured code matches
//! what a focused consumer of the simulator would build.
//!
//! Usage: `throughput FILE [--throughput-baseline FILE] [--repeats N]
//! [--scale smoke|quick|paper|full] [--shards N] [--threads N]
//! [--thread-curve]`
//!
//! With `--shards N` the binary measures the *sharded-engine* suite
//! instead (1024–65536-core clusters, single global wheel vs N shard
//! wheels; `BENCH_9.json` format). `--threads N` pins the sharded
//! side's worker pool (default: the host's available parallelism) —
//! the effective concurrency is min(shards, channels, threads), and
//! `--threads 1` produces the single-thread locality ratios CI gates
//! on. `--thread-curve` additionally sweeps worker counts up to the
//! host parallelism on the largest topology, through a persistent
//! multi-segment shard session, and records the curve in the report.

use std::process::ExitCode;

use mapg_bench::{run_shard_throughput_cli, run_throughput_cli, Scale, SHARD_TOPOLOGIES};

const USAGE: &str = "usage: throughput FILE [--throughput-baseline FILE] [--repeats N] \
     [--scale smoke|quick|paper|full] [--shards N] [--threads N] [--thread-curve]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut scale = Scale::Smoke;
    let mut repeats = 7usize;
    let mut shards: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut thread_curve = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => {
                let Some(value) = iter.next() else {
                    eprintln!("--threads needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(parsed) if parsed > 0 => threads = Some(parsed),
                    _ => {
                        eprintln!("--threads needs a positive integer, got '{value}'\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--thread-curve" => {
                thread_curve = true;
            }
            "--shards" => {
                let Some(value) = iter.next() else {
                    eprintln!("--shards needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(parsed) if parsed > 0 => shards = Some(parsed),
                    _ => {
                        eprintln!("--shards needs a positive integer, got '{value}'\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--scale" => {
                let Some(name) = iter.next() else {
                    eprintln!("--scale needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                let Some(parsed) = Scale::parse(name) else {
                    eprintln!("unknown scale '{name}'\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                scale = parsed;
            }
            "--repeats" => {
                let Some(value) = iter.next() else {
                    eprintln!("--repeats needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(parsed) if parsed > 0 => repeats = parsed,
                    _ => {
                        eprintln!("--repeats needs a positive integer, got '{value}'\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--throughput-baseline" => {
                let Some(path) = iter.next() else {
                    eprintln!("--throughput-baseline needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                baseline_path = Some(path.clone());
            }
            other if !other.starts_with('-') && out_path.is_none() => {
                out_path = Some(other.to_owned());
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(out_path) = out_path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match shards {
        Some(shards) => {
            let min_cores = SHARD_TOPOLOGIES.iter().map(|&(c, _)| c).min().unwrap_or(0);
            if shards > min_cores {
                eprintln!(
                    "warning: --shards {shards} exceeds the smallest measured cluster \
                     ({min_cores} cores); at most min(cores, channels) shard wheels \
                     can make progress"
                );
            }
            run_shard_throughput_cli(
                &out_path,
                baseline_path.as_deref(),
                scale,
                repeats,
                shards,
                threads,
                thread_curve,
            )
        }
        None => {
            if threads.is_some() || thread_curve {
                eprintln!("--threads/--thread-curve only apply to --shards mode\n{USAGE}");
                return ExitCode::FAILURE;
            }
            run_throughput_cli(&out_path, baseline_path.as_deref(), scale, repeats)
        }
    }
}
