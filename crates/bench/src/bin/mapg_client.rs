//! `mapg-client` — CLI for the `mapgd` daemon.
//!
//! ```bash
//! mapg-client --addr HOST:PORT submit R-T1 [--scale smoke] [--format csv]
//!             [--client NAME] [--priority N] [--wait]
//! mapg-client --addr HOST:PORT status ID
//! mapg-client --addr HOST:PORT cancel ID
//! mapg-client --addr HOST:PORT fetch ID          # payload to stdout
//! mapg-client --addr HOST:PORT stream ID         # event lines to stdout
//! mapg-client --addr HOST:PORT stats | ping | pause | resume | shutdown
//! mapg-client --addr HOST:PORT quota CLIENT N
//! ```
//!
//! `fetch` writes the job's rendered payload to stdout verbatim — for
//! CSV jobs those bytes diff cleanly against the `experiments` binary's
//! output and the committed goldens.

use std::process::ExitCode;
use std::time::Duration;

use mapg::fuzz::write_json;
use mapg_bench::{Client, ClientError};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(error) => {
            eprintln!("mapg-client: {error}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, ClientError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = std::env::var("MAPGD_ADDR").unwrap_or_default();
    let mut rest = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--addr" {
            match iter.next() {
                Some(value) => addr = value,
                None => return Ok(usage("--addr needs a host:port")),
            }
        } else {
            rest.push(arg);
        }
    }
    if addr.is_empty() {
        return Ok(usage("no daemon address (--addr or MAPGD_ADDR)"));
    }
    let client = Client::new(addr);
    let Some(command) = rest.first().map(String::as_str) else {
        return Ok(usage("no command"));
    };
    match command {
        "ping" => {
            let protocol = client.ping()?;
            println!("mapgd protocol v{protocol}");
        }
        "submit" => {
            let mut experiment = None;
            let mut scale = "smoke".to_owned();
            let mut format = "csv".to_owned();
            let mut client_name = "cli".to_owned();
            let mut priority = 0u8;
            let mut wait = false;
            let mut iter = rest[1..].iter();
            while let Some(arg) = iter.next() {
                match arg.as_str() {
                    "--scale" => match iter.next() {
                        Some(value) => scale = value.clone(),
                        None => return Ok(usage("--scale needs a value")),
                    },
                    "--format" => match iter.next() {
                        Some(value) => format = value.clone(),
                        None => return Ok(usage("--format needs a value")),
                    },
                    "--client" => match iter.next() {
                        Some(value) => client_name = value.clone(),
                        None => return Ok(usage("--client needs a value")),
                    },
                    "--priority" => match iter.next().and_then(|v| v.parse().ok()) {
                        Some(value) => priority = value,
                        None => return Ok(usage("--priority needs 0-255")),
                    },
                    "--wait" => wait = true,
                    other if experiment.is_none() => experiment = Some(other.to_owned()),
                    other => return Ok(usage(&format!("unexpected argument '{other}'"))),
                }
            }
            let Some(experiment) = experiment else {
                return Ok(usage("submit needs an experiment id"));
            };
            let id = client.submit(&client_name, &experiment, &scale, &format, priority)?;
            eprintln!("job {id} submitted");
            if wait {
                let status = client.wait_terminal(id, Duration::from_secs(600))?;
                eprintln!("job {id} {}", status.state);
                if status.state != "done" {
                    return Ok(ExitCode::FAILURE);
                }
                print!("{}", client.fetch(id)?.payload);
            } else {
                println!("{id}");
            }
        }
        "status" => {
            let status = client.status(parse_id(&rest)?)?;
            let seq = status
                .started_seq
                .map(|s| format!(" started_seq={s}"))
                .unwrap_or_default();
            let error = status
                .error
                .map(|e| format!(" error={e:?}"))
                .unwrap_or_default();
            println!(
                "job {} {}{}{}{}",
                status.id,
                status.state,
                if status.replayed { " (replayed)" } else { "" },
                seq,
                error
            );
            if !status.terminal {
                return Ok(ExitCode::from(2)); // distinguishable "still going"
            }
        }
        "cancel" => {
            let id = parse_id(&rest)?;
            let cancelled = client.cancel(id)?;
            eprintln!(
                "job {id} {}",
                if cancelled {
                    "cancelled"
                } else {
                    "not cancellable"
                }
            );
            if !cancelled {
                return Ok(ExitCode::FAILURE);
            }
        }
        "fetch" => {
            let result = client.fetch(parse_id(&rest)?)?;
            print!("{}", result.payload);
        }
        "stream" => {
            let id = parse_id(&rest)?;
            let end = client.stream(id, 0, |event| {
                println!("{} {} {} {}", event.seq, event.at, event.scope, event.kind);
            })?;
            eprintln!(
                "stream end: total={} missed={} dropped={} state={}",
                end.total, end.missed, end.dropped, end.state
            );
        }
        "stats" => {
            println!("{}", write_json(&client.stats()?));
        }
        "quota" => {
            let (Some(client_name), Some(quota)) = (
                rest.get(1),
                rest.get(2).and_then(|v| v.parse::<usize>().ok()),
            ) else {
                return Ok(usage("quota needs CLIENT and N"));
            };
            client.set_quota(client_name, quota)?;
            eprintln!("quota for '{client_name}' set to {quota}");
        }
        "pause" => client.pause()?,
        "resume" => client.resume()?,
        "shutdown" => client.shutdown()?,
        other => return Ok(usage(&format!("unknown command '{other}'"))),
    }
    Ok(ExitCode::SUCCESS)
}

fn parse_id(rest: &[String]) -> Result<u64, ClientError> {
    rest.get(1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ClientError::Protocol("this command needs a numeric job id".into()))
}

const USAGE: &str = "\
mapg-client — CLI for the mapgd daemon

USAGE:
    mapg-client --addr HOST:PORT COMMAND [ARGS]
    (MAPGD_ADDR env var also sets the address)

COMMANDS:
    ping
    submit EXPERIMENT [--scale S] [--format F] [--client C]
                      [--priority P] [--wait]
    status ID
    cancel ID
    fetch ID
    stream ID
    stats
    quota CLIENT N
    pause | resume | shutdown";

fn usage(error: &str) -> ExitCode {
    eprintln!("mapg-client: {error}\n\n{USAGE}");
    ExitCode::FAILURE
}
