//! `mapgd` — the MAPG simulation-as-a-service daemon.
//!
//! ```bash
//! mapgd [--addr 127.0.0.1:7070] [--max-jobs N] [--workers N]
//!       [--quota N] [--feed-capacity N] [--journal PATH]
//!       [--port-file PATH] [--paused]
//! ```
//!
//! Serves the line-delimited JSON protocol described in DESIGN.md §15.
//! `--port-file` writes the bound `host:port` atomically once
//! listening — the handshake a launcher (or the CI smoke step) uses
//! with `--addr 127.0.0.1:0`. Runs until a client sends `shutdown`.

use std::process::ExitCode;

use mapg_bench::{Daemon, DaemonConfig};

fn main() -> ExitCode {
    let mut config = DaemonConfig::default();
    let mut port_file: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => return usage("--addr needs a host:port"),
            },
            "--max-jobs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.max_jobs = n,
                _ => return usage("--max-jobs needs an integer >= 1"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.workers_total = n,
                _ => return usage("--workers needs an integer >= 1"),
            },
            "--quota" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.default_quota = n,
                _ => return usage("--quota needs an integer >= 1"),
            },
            "--feed-capacity" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.feed_capacity = n,
                _ => return usage("--feed-capacity needs an integer >= 1"),
            },
            "--journal" => match args.next() {
                Some(path) => config.journal = Some(path.into()),
                None => return usage("--journal needs a path"),
            },
            "--port-file" => match args.next() {
                Some(path) => port_file = Some(path.into()),
                None => return usage("--port-file needs a path"),
            },
            "--paused" => config.paused = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let daemon = match Daemon::start(config) {
        Ok(daemon) => daemon,
        Err(error) => {
            eprintln!("mapgd: {error}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = port_file {
        let addr = daemon.local_addr().to_string();
        if let Err(error) = mapg::write_atomic(&path, addr.as_bytes()) {
            eprintln!("mapgd: cannot write port file {}: {error}", path.display());
            daemon.shutdown();
            daemon.wait();
            return ExitCode::FAILURE;
        }
    }
    daemon.wait();
    ExitCode::SUCCESS
}

const USAGE: &str = "\
mapgd — MAPG simulation-as-a-service daemon

USAGE:
    mapgd [OPTIONS]

OPTIONS:
    --addr HOST:PORT     bind address (default 127.0.0.1:0 = free port)
    --max-jobs N         concurrently running jobs (default 2)
    --workers N          host worker budget split across jobs
    --quota N            default per-client in-flight quota (default 2)
    --feed-capacity N    retained trace records per job feed
    --journal PATH       completion journal (replay results on restart)
    --port-file PATH     write the bound host:port here once listening
    --paused             start with dispatch paused ('resume' op starts it)";

fn usage(error: &str) -> ExitCode {
    eprintln!("mapgd: {error}\n\n{USAGE}");
    ExitCode::FAILURE
}
