//! Regenerates the reconstructed tables and figures of the MAPG
//! reproduction.
//!
//! ```bash
//! experiments                      # everything, paper scale
//! experiments rt1 rf5              # selected experiments
//! experiments --scale quick        # smaller runs (full is an alias for paper)
//! experiments --csv rf2            # CSV instead of aligned text
//! experiments --jobs 8             # parallel run (output still registry order)
//! experiments --shards 4 --csv     # sharded substrate; output byte-identical
//! experiments --manifest run.json  # machine-readable run record
//! experiments --journal j.json     # crash-safe completion journal
//! experiments --resume j.json      # replay completed work, run the rest
//! experiments --list               # registry
//! ```
//!
//! Experiments run concurrently under a supervised pool: a panicking
//! experiment is quarantined (the rest of the suite completes), a
//! `--deadline-ms` overrun abandons the hung job, and `--retries`
//! re-runs failures with backoff. Per-experiment outcomes land in the
//! manifest (schema v4) and the run exits nonzero when anything failed.
//!
//! With `--journal FILE` every completed experiment is appended to a
//! crash-safe journal (atomic rewrite per append); `--resume FILE`
//! replays journaled payloads verbatim and runs only the rest, so the
//! CSV/manifest outputs of an interrupted-then-resumed run are
//! byte-identical to an uninterrupted one. Journaled manifests zero
//! all wall times and omit metrics to keep that comparison exact.
//!
//! Tables are buffered per experiment and printed in registry order, so
//! stdout is byte-identical at any job count (the `--jobs 1` serial run
//! is the reference).

use std::path::Path;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mapg_bench::experiments::Experiment;
use mapg_bench::{
    experiments, ExperimentJob, Journal, JournalEntry, Manifest, ManifestEntry, OutputFormat, Scale,
};
use mapg_pool::{JobOutcome, Supervisor};

const USAGE: &str = "usage: experiments [--scale smoke|quick|paper|full] [--csv] [--jobs N] \
     [--shards N] [--manifest FILE] [--metrics FILE] [--out-dir DIR] \
     [--journal FILE | --resume FILE] \
     [--deadline-ms N] [--retries N] [--list] [IDS...]\n\
       experiments --bench-throughput FILE [--throughput-baseline FILE] [--repeats N] \
     [--scale ...]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut csv = false;
    let mut jobs = mapg_pool::default_jobs();
    let mut shards: usize = 1;
    let mut manifest_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut journal_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut retries: u32 = 1;
    let mut inject_panic: Option<String> = None;
    let mut inject_hang: Option<String> = None;
    let mut inject_flaky: Option<String> = None;
    let mut throughput_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut repeats: usize = 3;
    let mut selected: Vec<String> = Vec::new();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for experiment in experiments::all() {
                    println!("{:<7} {}", experiment.id, experiment.title);
                }
                return ExitCode::SUCCESS;
            }
            "--csv" => csv = true,
            "--scale" => {
                let Some(name) = iter.next() else {
                    eprintln!("--scale needs a value (smoke|quick|paper|full)");
                    return ExitCode::FAILURE;
                };
                let Some(parsed) = Scale::parse(name) else {
                    eprintln!("unknown scale '{name}' (smoke|quick|paper|full)");
                    return ExitCode::FAILURE;
                };
                scale = parsed;
            }
            "--jobs" => {
                let Some(value) = iter.next() else {
                    eprintln!("--jobs needs a value (a worker count >= 1)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = n,
                    _ => {
                        eprintln!("invalid job count '{value}' (need an integer >= 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--shards" => {
                // Shards partition an experiment's *simulated* memory
                // channels; --jobs sizes the *host* worker pool that runs
                // experiments (and shard wheels) concurrently. The two
                // compose: effective shard concurrency is
                // min(shards, channels, jobs). Reports are identical at
                // any shard count, so this flag must never change output.
                let Some(value) = iter.next() else {
                    eprintln!("--shards needs a value (a shard count >= 1)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => shards = n,
                    _ => {
                        eprintln!("invalid shard count '{value}' (need an integer >= 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--manifest" => {
                let Some(path) = iter.next() else {
                    eprintln!("--manifest needs an output path");
                    return ExitCode::FAILURE;
                };
                manifest_path = Some(path.to_owned());
            }
            "--metrics" => {
                let Some(path) = iter.next() else {
                    eprintln!("--metrics needs an output path");
                    return ExitCode::FAILURE;
                };
                metrics_path = Some(path.to_owned());
            }
            "--out-dir" => {
                let Some(path) = iter.next() else {
                    eprintln!("--out-dir needs a directory path");
                    return ExitCode::FAILURE;
                };
                out_dir = Some(path.to_owned());
            }
            "--journal" => {
                let Some(path) = iter.next() else {
                    eprintln!("--journal needs a journal path");
                    return ExitCode::FAILURE;
                };
                journal_path = Some(path.to_owned());
            }
            "--resume" => {
                let Some(path) = iter.next() else {
                    eprintln!("--resume needs a journal path");
                    return ExitCode::FAILURE;
                };
                resume_path = Some(path.to_owned());
            }
            "--deadline-ms" => {
                let Some(value) = iter.next() else {
                    eprintln!("--deadline-ms needs a value (milliseconds >= 1)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => deadline_ms = Some(n),
                    _ => {
                        eprintln!("invalid deadline '{value}' (need an integer >= 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--retries" => {
                let Some(value) = iter.next() else {
                    eprintln!("--retries needs a value (max attempts >= 1)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<u32>() {
                    Ok(n) if n >= 1 => retries = n,
                    _ => {
                        eprintln!("invalid retry count '{value}' (need an integer >= 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--inject-panic" | "--inject-hang" | "--inject-flaky" => {
                let Some(value) = iter.next() else {
                    eprintln!("{arg} needs an experiment id");
                    return ExitCode::FAILURE;
                };
                let Some(experiment) = experiments::find(value) else {
                    eprintln!("unknown experiment '{value}' for {arg}; try --list");
                    return ExitCode::FAILURE;
                };
                let slot = match arg.as_str() {
                    "--inject-panic" => &mut inject_panic,
                    "--inject-hang" => &mut inject_hang,
                    _ => &mut inject_flaky,
                };
                *slot = Some(experiment.id.to_owned());
            }
            "--bench-throughput" => {
                let Some(path) = iter.next() else {
                    eprintln!("--bench-throughput needs an output path");
                    return ExitCode::FAILURE;
                };
                throughput_path = Some(path.to_owned());
            }
            "--throughput-baseline" => {
                let Some(path) = iter.next() else {
                    eprintln!("--throughput-baseline needs a baseline path");
                    return ExitCode::FAILURE;
                };
                baseline_path = Some(path.to_owned());
            }
            "--repeats" => {
                let Some(value) = iter.next() else {
                    eprintln!("--repeats needs a value (a repeat count >= 1)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => repeats = n,
                    _ => {
                        eprintln!("invalid repeat count '{value}' (need an integer >= 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag '{flag}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
            id => selected.push(id.to_owned()),
        }
    }

    if let Some(path) = throughput_path {
        return bench_throughput(&path, baseline_path.as_deref(), scale, repeats);
    }
    if baseline_path.is_some() {
        eprintln!("--throughput-baseline only makes sense with --bench-throughput");
        return ExitCode::FAILURE;
    }
    if journal_path.is_some() && resume_path.is_some() {
        eprintln!("--journal and --resume are exclusive (resume continues its own journal)");
        return ExitCode::FAILURE;
    }
    if out_dir.is_some() && !csv {
        eprintln!("--out-dir writes per-experiment CSV files and requires --csv");
        return ExitCode::FAILURE;
    }
    if inject_hang.is_some() && deadline_ms.is_none() {
        eprintln!("--inject-hang would wedge the run forever; it requires --deadline-ms");
        return ExitCode::FAILURE;
    }
    let journaled = journal_path.is_some() || resume_path.is_some();
    if metrics_path.is_some() && journaled {
        eprintln!(
            "--metrics cannot be combined with --journal/--resume (metrics are not journaled)"
        );
        return ExitCode::FAILURE;
    }

    let to_run: Vec<Experiment> = if selected.is_empty() {
        experiments::all()
    } else {
        let mut list: Vec<Experiment> = Vec::new();
        for id in &selected {
            match experiments::find(id) {
                Some(experiment) => {
                    if list.iter().any(|e: &Experiment| e.id == experiment.id) {
                        eprintln!("warning: duplicate experiment '{id}' ignored");
                    } else {
                        list.push(experiment);
                    }
                }
                None => {
                    eprintln!("unknown experiment '{id}'; try --list");
                    return ExitCode::FAILURE;
                }
            }
        }
        list
    };

    // The journal context pins everything that shapes the deterministic
    // outputs — driver, scale, format, selection — and deliberately not
    // the job count or injection flags, which only change scheduling.
    let ids: Vec<&str> = to_run.iter().map(|e| e.id).collect();
    let context = format!(
        "experiments scale={} format={} ids={}",
        scale.name(),
        if csv { "csv" } else { "text" },
        ids.join(",")
    );
    let journal: Option<Arc<Mutex<Journal>>> =
        match resume_path.as_deref().or(journal_path.as_deref()) {
            None => None,
            Some(path) => {
                if resume_path.is_some() && !Path::new(path).exists() {
                    eprintln!("cannot resume: journal '{path}' does not exist");
                    return ExitCode::FAILURE;
                }
                match Journal::open(path, &context) {
                    Ok(journal) => Some(Arc::new(Mutex::new(journal))),
                    Err(error) => {
                        eprintln!("{error}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        };

    println!(
        "# MAPG reproduction — {} experiment(s) at {scale:?} scale\n",
        to_run.len()
    );

    // Split the registry-ordered selection into journaled completions
    // (replayed verbatim) and fresh work for the supervisor.
    enum Slot {
        Replayed(JournalEntry),
        Fresh(usize),
    }
    let mut slots: Vec<Slot> = Vec::with_capacity(to_run.len());
    let mut fresh: Vec<Experiment> = Vec::new();
    for experiment in &to_run {
        let replay = journal.as_ref().and_then(|j| {
            j.lock()
                .expect("journal lock")
                .completed("experiment", experiment.id)
                .cloned()
        });
        match replay {
            Some(entry) => slots.push(Slot::Replayed(entry)),
            None => {
                slots.push(Slot::Fresh(fresh.len()));
                fresh.push(*experiment);
            }
        }
    }

    // Fan the fresh experiments out under supervision, buffering each
    // one's rendered output; ordered results keep the printed stream
    // byte-identical to a serial run. The inner suite fan-out of each
    // experiment is pinned to the same job count.
    // Metrics collection is opt-in (a manifest or metrics file was
    // requested) and off for journaled runs, whose outputs must be
    // byte-stable across interruptions.
    let collect_metrics = !journaled && (manifest_path.is_some() || metrics_path.is_some());
    let run_started = Instant::now();
    let mut supervisor = Supervisor::new(jobs);
    if let Some(ms) = deadline_ms {
        supervisor = supervisor.with_deadline(Duration::from_millis(ms));
    }
    if retries > 1 {
        supervisor = supervisor.with_retries(retries, Duration::from_millis(25));
    }
    let job_journal = journal.clone();
    let injections = (inject_panic, inject_hang, inject_flaky);
    let reports = supervisor.map_supervised(fresh.clone(), move |experiment: &Experiment, ctx| {
        let (inject_panic, inject_hang, inject_flaky) = &injections;
        if inject_panic.as_deref() == Some(experiment.id) {
            panic!("injected panic in {}", experiment.id);
        }
        if inject_flaky.as_deref() == Some(experiment.id) && ctx.attempt == 1 {
            panic!("injected flaky panic in {} (attempt 1)", experiment.id);
        }
        if inject_hang.as_deref() == Some(experiment.id) {
            // Models a wedged job: ignores the cancel token on purpose,
            // so only the deadline monitor can release the worker.
            loop {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let started = Instant::now();
        // One hub per experiment: every simulation the experiment spawns
        // (its inner fan-out included) merges its registry in. Merging is
        // commutative, so the snapshot is deterministic at any job count.
        let hub = collect_metrics.then(mapg_obs::MetricsHub::new);
        let mut job = ExperimentJob::new(
            *experiment,
            scale,
            if csv {
                OutputFormat::Csv
            } else {
                OutputFormat::Text
            },
            jobs,
        );
        job.shards = shards;
        job.metrics_hub = hub.clone();
        let output = job.execute();
        let elapsed = started.elapsed();
        let rendered = output.rendered;
        let summaries = output.tables;
        // A worker abandoned by the deadline monitor sees its token
        // cancelled: its (now unwanted) result must not reach the
        // journal, or resume would disagree with the reported outcome.
        if !ctx.token.is_cancelled() {
            if let Some(journal) = &job_journal {
                let entry = JournalEntry::new(
                    "experiment",
                    experiment.id,
                    0,
                    ctx.attempt,
                    elapsed.as_secs_f64() * 1e3,
                    rendered.clone(),
                    summaries.clone(),
                );
                journal
                    .lock()
                    .expect("journal lock")
                    .append(entry)
                    .unwrap_or_else(|e| panic!("{e}"));
            }
        }
        let entry = ManifestEntry {
            id: experiment.id.to_owned(),
            title: experiment.title.to_owned(),
            outcome: "ok".to_owned(),
            attempts: ctx.attempt,
            wall_ms: if journaled {
                0.0
            } else {
                elapsed.as_secs_f64() * 1e3
            },
            metrics: hub.as_ref().map(mapg_obs::MetricsHub::snapshot),
            tables: summaries,
        };
        (experiment.id, rendered, elapsed, entry)
    });
    let total_wall = run_started.elapsed();

    if let Some(dir) = &out_dir {
        if let Err(error) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --out-dir '{dir}': {error}");
            return ExitCode::FAILURE;
        }
    }

    let mut reports: Vec<Option<_>> = reports.into_iter().map(Some).collect();
    let mut entries = Vec::with_capacity(to_run.len());
    let mut failed: Vec<String> = Vec::new();
    let mut ok_count = 0usize;
    let mut replayed_count = 0usize;
    for (experiment, slot) in to_run.iter().zip(slots) {
        let (payload, entry) = match slot {
            Slot::Replayed(journal_entry) => {
                replayed_count += 1;
                eprintln!("[{} replayed from journal]\n", experiment.id);
                let entry = ManifestEntry {
                    id: experiment.id.to_owned(),
                    title: experiment.title.to_owned(),
                    outcome: "ok".to_owned(),
                    attempts: journal_entry.attempts,
                    wall_ms: 0.0,
                    metrics: None,
                    tables: journal_entry.tables.clone(),
                };
                (Some(journal_entry.payload), entry)
            }
            Slot::Fresh(index) => {
                let report = reports[index].take().expect("one report per fresh job");
                match report.outcome {
                    JobOutcome::Ok((id, rendered, elapsed, entry)) => {
                        ok_count += 1;
                        eprintln!("[{id} done in {elapsed:.2?}]\n");
                        (Some(rendered), entry)
                    }
                    outcome => {
                        let label = outcome.label();
                        if let JobOutcome::Panicked { message } = &outcome {
                            eprintln!("[{}: panic: {message}]", experiment.id);
                        }
                        eprintln!(
                            "[{} {label} after {} attempt(s)]\n",
                            experiment.id, report.attempts
                        );
                        failed.push(format!(
                            "{} ({label} after {} attempt(s))",
                            experiment.id, report.attempts
                        ));
                        let entry = ManifestEntry {
                            id: experiment.id.to_owned(),
                            title: experiment.title.to_owned(),
                            outcome: label.to_owned(),
                            attempts: report.attempts,
                            wall_ms: if journaled {
                                0.0
                            } else {
                                report.wall.as_secs_f64() * 1e3
                            },
                            metrics: None,
                            tables: Vec::new(),
                        };
                        (None, entry)
                    }
                }
            }
        };
        if let Some(payload) = payload {
            print!("{payload}");
            if let Some(dir) = &out_dir {
                let path = Path::new(dir).join(format!("{}.csv", experiment.id));
                if let Err(error) = mapg::write_atomic(&path, payload.as_bytes()) {
                    eprintln!("cannot write '{}': {error}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        entries.push(entry);
    }
    eprintln!("[total: {total_wall:.2?} with {jobs} job(s)]");
    eprintln!(
        "[supervised: {ok_count} ok, {} failed, {replayed_count} replayed]",
        failed.len()
    );
    if !failed.is_empty() {
        eprintln!("[failed entries: {}]", failed.join("; "));
    }

    if let Some(path) = metrics_path {
        // The aggregate is a pure merge over per-experiment registries in
        // registry order — no wall times, no job count — so the file is
        // byte-identical across `--jobs` values.
        let mut combined = mapg_obs::MetricsRegistry::new();
        for entry in &entries {
            if let Some(metrics) = &entry.metrics {
                combined.merge(metrics);
            }
        }
        if let Err(error) = mapg::write_atomic(Path::new(&path), combined.to_json().as_bytes()) {
            eprintln!("cannot write metrics '{path}': {error}");
            return ExitCode::FAILURE;
        }
        eprintln!("[metrics written to {path}]");
    }

    if let Some(path) = manifest_path {
        let manifest = Manifest {
            scale,
            jobs,
            total_wall_ms: if journaled {
                0.0
            } else {
                total_wall.as_secs_f64() * 1e3
            },
            fuzz: None,
            experiments: entries,
        };
        if let Err(error) = mapg::write_atomic(Path::new(&path), manifest.to_json().as_bytes()) {
            eprintln!("cannot write manifest '{path}': {error}");
            return ExitCode::FAILURE;
        }
        eprintln!("[manifest written to {path}]");
    }
    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `--bench-throughput` mode, shared with the dedicated `throughput`
/// binary (which CI gates on — see `src/bin/throughput.rs` for why the
/// measurement prefers a binary of its own).
fn bench_throughput(
    out_path: &str,
    baseline_path: Option<&str>,
    scale: Scale,
    repeats: usize,
) -> ExitCode {
    mapg_bench::run_throughput_cli(out_path, baseline_path, scale, repeats)
}
