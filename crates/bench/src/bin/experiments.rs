//! Regenerates the reconstructed tables and figures of the MAPG
//! reproduction.
//!
//! ```bash
//! experiments                      # everything, paper scale
//! experiments rt1 rf5              # selected experiments
//! experiments --scale quick        # smaller runs
//! experiments --csv rf2            # CSV instead of aligned text
//! experiments --list               # registry
//! ```

use std::process::ExitCode;
use std::time::Instant;

use mapg_bench::{experiments, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut csv = false;
    let mut selected: Vec<String> = Vec::new();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for experiment in experiments::all() {
                    println!("{:<7} {}", experiment.id, experiment.title);
                }
                return ExitCode::SUCCESS;
            }
            "--csv" => csv = true,
            "--scale" => {
                let Some(name) = iter.next() else {
                    eprintln!("--scale needs a value (smoke|quick|paper)");
                    return ExitCode::FAILURE;
                };
                let Some(parsed) = Scale::parse(name) else {
                    eprintln!("unknown scale '{name}' (smoke|quick|paper)");
                    return ExitCode::FAILURE;
                };
                scale = parsed;
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--scale smoke|quick|paper] [--csv] [--list] [IDS...]"
                );
                return ExitCode::SUCCESS;
            }
            id => selected.push(id.to_owned()),
        }
    }

    let to_run: Vec<_> = if selected.is_empty() {
        experiments::all()
    } else {
        let mut list = Vec::new();
        for id in &selected {
            match experiments::find(id) {
                Some(experiment) => list.push(experiment),
                None => {
                    eprintln!("unknown experiment '{id}'; try --list");
                    return ExitCode::FAILURE;
                }
            }
        }
        list
    };

    println!(
        "# MAPG reproduction — {} experiment(s) at {scale:?} scale\n",
        to_run.len()
    );
    for experiment in to_run {
        let started = Instant::now();
        let tables = (experiment.run)(scale);
        let elapsed = started.elapsed();
        for table in &tables {
            if csv {
                println!("# {} — {}", table.id(), table.title());
                print!("{}", table.to_csv());
            } else {
                println!("{}", table.to_text());
            }
        }
        eprintln!("[{} done in {elapsed:.2?}]\n", experiment.id);
    }
    ExitCode::SUCCESS
}
