//! Regenerates the reconstructed tables and figures of the MAPG
//! reproduction.
//!
//! ```bash
//! experiments                      # everything, paper scale
//! experiments rt1 rf5              # selected experiments
//! experiments --scale quick        # smaller runs (full is an alias for paper)
//! experiments --csv rf2            # CSV instead of aligned text
//! experiments --jobs 8             # parallel run (output still registry order)
//! experiments --manifest run.json  # machine-readable run record
//! experiments --list               # registry
//! ```
//!
//! Experiments run concurrently across a work-sharing pool, and each
//! experiment's inner suite fan-out is pinned to the same `--jobs` value.
//! Tables are buffered per experiment and printed in registry order, so
//! stdout is byte-identical at any job count (the `--jobs 1` serial run is
//! the reference).

use std::process::ExitCode;
use std::time::Instant;

use mapg_bench::experiments::Experiment;
use mapg_bench::{
    experiments, Manifest, ManifestEntry, Scale, TableSummary, ThroughputReport,
    THROUGHPUT_TOLERANCE,
};
use mapg_pool::Pool;

const USAGE: &str = "usage: experiments [--scale smoke|quick|paper|full] [--csv] [--jobs N] \
     [--manifest FILE] [--metrics FILE] [--list] [IDS...]\n\
       experiments --bench-throughput FILE [--throughput-baseline FILE] [--repeats N] \
     [--scale ...]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut csv = false;
    let mut jobs = mapg_pool::default_jobs();
    let mut manifest_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut throughput_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut repeats: usize = 3;
    let mut selected: Vec<String> = Vec::new();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for experiment in experiments::all() {
                    println!("{:<7} {}", experiment.id, experiment.title);
                }
                return ExitCode::SUCCESS;
            }
            "--csv" => csv = true,
            "--scale" => {
                let Some(name) = iter.next() else {
                    eprintln!("--scale needs a value (smoke|quick|paper|full)");
                    return ExitCode::FAILURE;
                };
                let Some(parsed) = Scale::parse(name) else {
                    eprintln!("unknown scale '{name}' (smoke|quick|paper|full)");
                    return ExitCode::FAILURE;
                };
                scale = parsed;
            }
            "--jobs" => {
                let Some(value) = iter.next() else {
                    eprintln!("--jobs needs a value (a worker count >= 1)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = n,
                    _ => {
                        eprintln!("invalid job count '{value}' (need an integer >= 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--manifest" => {
                let Some(path) = iter.next() else {
                    eprintln!("--manifest needs an output path");
                    return ExitCode::FAILURE;
                };
                manifest_path = Some(path.to_owned());
            }
            "--metrics" => {
                let Some(path) = iter.next() else {
                    eprintln!("--metrics needs an output path");
                    return ExitCode::FAILURE;
                };
                metrics_path = Some(path.to_owned());
            }
            "--bench-throughput" => {
                let Some(path) = iter.next() else {
                    eprintln!("--bench-throughput needs an output path");
                    return ExitCode::FAILURE;
                };
                throughput_path = Some(path.to_owned());
            }
            "--throughput-baseline" => {
                let Some(path) = iter.next() else {
                    eprintln!("--throughput-baseline needs a baseline path");
                    return ExitCode::FAILURE;
                };
                baseline_path = Some(path.to_owned());
            }
            "--repeats" => {
                let Some(value) = iter.next() else {
                    eprintln!("--repeats needs a value (a repeat count >= 1)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => repeats = n,
                    _ => {
                        eprintln!("invalid repeat count '{value}' (need an integer >= 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag '{flag}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
            id => selected.push(id.to_owned()),
        }
    }

    if let Some(path) = throughput_path {
        return bench_throughput(&path, baseline_path.as_deref(), scale, repeats);
    }
    if baseline_path.is_some() {
        eprintln!("--throughput-baseline only makes sense with --bench-throughput");
        return ExitCode::FAILURE;
    }

    let to_run: Vec<Experiment> = if selected.is_empty() {
        experiments::all()
    } else {
        let mut list: Vec<Experiment> = Vec::new();
        for id in &selected {
            match experiments::find(id) {
                Some(experiment) => {
                    if list.iter().any(|e: &Experiment| e.id == experiment.id) {
                        eprintln!("warning: duplicate experiment '{id}' ignored");
                    } else {
                        list.push(experiment);
                    }
                }
                None => {
                    eprintln!("unknown experiment '{id}'; try --list");
                    return ExitCode::FAILURE;
                }
            }
        }
        list
    };

    println!(
        "# MAPG reproduction — {} experiment(s) at {scale:?} scale\n",
        to_run.len()
    );

    // Fan the experiments out, buffering each one's rendered output; the
    // ordered map returns them in registry order, so the printed stream is
    // byte-identical to a serial run. The inner suite fan-out of each
    // experiment is pinned to the same job count.
    // Metrics collection is opt-in (a manifest or metrics file was
    // requested); otherwise observability stays disabled and the run pays
    // only a never-taken branch per would-be event.
    let collect_metrics = manifest_path.is_some() || metrics_path.is_some();
    let run_started = Instant::now();
    let outputs = Pool::new(jobs).map(to_run, |experiment| {
        let started = Instant::now();
        let run = || mapg_pool::with_default_jobs(jobs, || (experiment.run)(scale));
        // One hub per experiment: every simulation the experiment spawns
        // (its inner fan-out included) merges its registry in. Merging is
        // commutative, so the snapshot is deterministic at any job count.
        let hub = collect_metrics.then(mapg_obs::MetricsHub::new);
        let tables = match &hub {
            Some(hub) => mapg_obs::with_ambient_hub(hub.clone(), run),
            None => run(),
        };
        let elapsed = started.elapsed();
        let mut rendered = String::new();
        for table in &tables {
            if csv {
                rendered.push_str(&format!("# {} — {}\n", table.id(), table.title()));
                rendered.push_str(&table.to_csv());
            } else {
                rendered.push_str(&table.to_text());
                rendered.push('\n');
            }
        }
        let entry = ManifestEntry {
            id: experiment.id.to_owned(),
            title: experiment.title.to_owned(),
            wall_ms: elapsed.as_secs_f64() * 1e3,
            metrics: hub.as_ref().map(mapg_obs::MetricsHub::snapshot),
            tables: tables.iter().map(TableSummary::of).collect(),
        };
        (experiment.id, rendered, elapsed, entry)
    });
    let total_wall = run_started.elapsed();

    let mut entries = Vec::with_capacity(outputs.len());
    for (id, rendered, elapsed, entry) in outputs {
        print!("{rendered}");
        eprintln!("[{id} done in {elapsed:.2?}]\n");
        entries.push(entry);
    }
    eprintln!("[total: {total_wall:.2?} with {jobs} job(s)]");

    if let Some(path) = metrics_path {
        // The aggregate is a pure merge over per-experiment registries in
        // registry order — no wall times, no job count — so the file is
        // byte-identical across `--jobs` values.
        let mut combined = mapg_obs::MetricsRegistry::new();
        for entry in &entries {
            if let Some(metrics) = &entry.metrics {
                combined.merge(metrics);
            }
        }
        if let Err(error) = std::fs::write(&path, combined.to_json()) {
            eprintln!("cannot write metrics '{path}': {error}");
            return ExitCode::FAILURE;
        }
        eprintln!("[metrics written to {path}]");
    }

    if let Some(path) = manifest_path {
        let manifest = Manifest {
            scale,
            jobs,
            total_wall_ms: total_wall.as_secs_f64() * 1e3,
            fuzz: None,
            experiments: entries,
        };
        if let Err(error) = std::fs::write(&path, manifest.to_json()) {
            eprintln!("cannot write manifest '{path}': {error}");
            return ExitCode::FAILURE;
        }
        eprintln!("[manifest written to {path}]");
    }
    ExitCode::SUCCESS
}

/// The `--bench-throughput` mode: measure, print, write the JSON record,
/// and (when a committed baseline is given) gate on speedup regressions.
fn bench_throughput(
    out_path: &str,
    baseline_path: Option<&str>,
    scale: Scale,
    repeats: usize,
) -> ExitCode {
    println!(
        "# MAPG throughput — event-wheel vs reference scheduler, {} scale, best of {repeats}\n",
        scale.name()
    );
    let report = ThroughputReport::measure(scale, repeats);
    println!(
        "{:<14} {:>6} {:>12} {:>16} {:>16} {:>8}",
        "case", "cores", "sim events", "wheel evt/s", "reference evt/s", "speedup"
    );
    for case in &report.cases {
        println!(
            "{:<14} {:>6} {:>12} {:>16.3e} {:>16.3e} {:>7.2}x",
            case.name,
            case.cores,
            case.simulated_events,
            case.heap_events_per_sec(),
            case.reference_events_per_sec(),
            case.speedup()
        );
    }
    println!(
        "\nheadline (geomean of largest-cluster speedups): {:.2}x",
        report.headline_speedup()
    );
    if let Err(error) = std::fs::write(out_path, report.to_json()) {
        eprintln!("cannot write throughput record '{out_path}': {error}");
        return ExitCode::FAILURE;
    }
    eprintln!("\n[throughput record written to {out_path}]");

    let Some(baseline_path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(contents) => contents,
        Err(error) => {
            eprintln!("cannot read throughput baseline '{baseline_path}': {error}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_speedups = ThroughputReport::parse_speedups(&baseline);
    if baseline_speedups.is_empty() {
        eprintln!("baseline '{baseline_path}' holds no speedup records");
        return ExitCode::FAILURE;
    }
    // Compare speedup ratios, not absolute rates: the ratio comes from one
    // process on one machine, so it transfers to whatever hardware CI runs
    // on, where the committed cycles/sec would not.
    let mut failed = false;
    for (name, baseline_speedup) in &baseline_speedups {
        let measured = if name == "headline" {
            report.headline_speedup()
        } else if let Some(case) = report.cases.iter().find(|c| &c.name == name) {
            case.speedup()
        } else {
            eprintln!("baseline case '{name}' was not measured in this run");
            failed = true;
            continue;
        };
        let floor = baseline_speedup * (1.0 - THROUGHPUT_TOLERANCE);
        if measured < floor {
            eprintln!(
                "regression: {name} speedup {measured:.2}x fell below {floor:.2}x \
                 (baseline {baseline_speedup:.2}x - {:.0}% tolerance)",
                THROUGHPUT_TOLERANCE * 100.0
            );
            failed = true;
        } else {
            eprintln!("[{name}: {measured:.2}x vs baseline {baseline_speedup:.2}x — ok]");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
