//! Seeded differential fuzz campaigns for the MAPG stack.
//!
//! ```bash
//! mapg-fuzz                                  # 200 scenarios, default seed
//! mapg-fuzz --scenarios 2000 --seed 7        # bigger sweep
//! mapg-fuzz --out fuzz-artifacts             # write repro JSONs on divergence
//! mapg-fuzz --max-seconds 60                 # wall-clock budget
//! mapg-fuzz --journal j.json                 # crash-safe completion journal
//! mapg-fuzz --resume j.json                  # replay completed scenarios
//! ```
//!
//! Every scenario runs through the live event-wheel stack and the frozen
//! reference stack; any disagreement (stats mismatch, broken invariant,
//! ledger non-reconciliation, trace/metrics asymmetry, panic) is shrunk
//! to a minimal scenario and written as a self-contained repro file that
//! `mapgsim --repro FILE` replays. Exit status is nonzero when any
//! scenario diverged or was quarantined, so CI can gate on a clean
//! campaign.
//!
//! `--max-seconds N` bounds the campaign's wall clock: once elapsed no
//! new scenario starts, in-flight scenarios finish, and the manifest /
//! journal stay valid with `executed < scenarios`. `--journal FILE`
//! records every completed scenario atomically; `--resume FILE` replays
//! those completions verbatim, producing byte-identical repro files and
//! manifest without re-executing finished work.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mapg_bench::{
    run_campaign_supervised, CampaignConfig, FuzzProvenance, Journal, Manifest, Scale,
};

const USAGE: &str = "usage: mapg-fuzz [--scenarios N] [--seed S] [--shrink-budget N] \
     [--jobs N] [--out DIR] [--manifest FILE] [--max-seconds N] \
     [--journal FILE | --resume FILE]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = CampaignConfig::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut manifest_path: Option<PathBuf> = None;
    let mut journal_path: Option<PathBuf> = None;
    let mut resume_path: Option<PathBuf> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scenarios" => {
                let Some(value) = iter.next() else {
                    eprintln!("--scenarios needs a value (a scenario count >= 1)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => config.scenarios = n,
                    _ => {
                        eprintln!("invalid scenario count '{value}' (need an integer >= 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                let Some(value) = iter.next() else {
                    eprintln!("--seed needs a value (a u64)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<u64>() {
                    Ok(seed) => config.seed = seed,
                    _ => {
                        eprintln!("invalid seed '{value}' (need a u64)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--shrink-budget" => {
                let Some(value) = iter.next() else {
                    eprintln!("--shrink-budget needs a value (candidate evaluations >= 1)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => config.shrink_budget = n,
                    _ => {
                        eprintln!("invalid shrink budget '{value}' (need an integer >= 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                let Some(value) = iter.next() else {
                    eprintln!("--jobs needs a value (a worker count >= 1)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => config.jobs = n,
                    _ => {
                        eprintln!("invalid job count '{value}' (need an integer >= 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--max-seconds" => {
                let Some(value) = iter.next() else {
                    eprintln!("--max-seconds needs a value (seconds > 0)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<f64>() {
                    Ok(n) if n > 0.0 && n.is_finite() => config.max_seconds = Some(n),
                    _ => {
                        eprintln!("invalid budget '{value}' (need seconds > 0)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => {
                let Some(path) = iter.next() else {
                    eprintln!("--out needs a directory path");
                    return ExitCode::FAILURE;
                };
                out_dir = Some(PathBuf::from(path));
            }
            "--manifest" => {
                let Some(path) = iter.next() else {
                    eprintln!("--manifest needs an output path");
                    return ExitCode::FAILURE;
                };
                manifest_path = Some(PathBuf::from(path));
            }
            "--journal" => {
                let Some(path) = iter.next() else {
                    eprintln!("--journal needs a journal path");
                    return ExitCode::FAILURE;
                };
                journal_path = Some(PathBuf::from(path));
            }
            "--resume" => {
                let Some(path) = iter.next() else {
                    eprintln!("--resume needs a journal path");
                    return ExitCode::FAILURE;
                };
                resume_path = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if journal_path.is_some() && resume_path.is_some() {
        eprintln!("--journal and --resume are exclusive (resume continues its own journal)");
        return ExitCode::FAILURE;
    }
    // The context pins the campaign identity; jobs and wall-clock budget
    // only change scheduling, never which scenario produces what.
    let context = format!(
        "mapg-fuzz seed={} scenarios={} shrink-budget={}",
        config.seed, config.scenarios, config.shrink_budget
    );
    let journal: Option<Arc<Mutex<Journal>>> =
        match resume_path.as_deref().or(journal_path.as_deref()) {
            None => None,
            Some(path) => {
                if resume_path.is_some() && !path.exists() {
                    eprintln!("cannot resume: journal '{}' does not exist", path.display());
                    return ExitCode::FAILURE;
                }
                match Journal::open(path, &context) {
                    Ok(journal) => Some(Arc::new(Mutex::new(journal))),
                    Err(error) => {
                        eprintln!("{error}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        };
    let journaled = journal.is_some();

    println!(
        "# MAPG differential fuzz — {} scenario(s), seed {}, {} job(s)",
        config.scenarios, config.seed, config.jobs
    );

    // Panics inside scenarios are an expected finding class and the differ
    // catches them; silence the default hook so a campaign over a panicking
    // build doesn't print thousands of backtraces. Restored on exit.
    let quiet_panics = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let started = Instant::now();
    let report = run_campaign_supervised(&config, journal);
    let elapsed = started.elapsed();
    std::panic::set_hook(quiet_panics);

    if let Some(dir) = &out_dir {
        if !report.findings.is_empty() {
            if let Err(error) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create '{}': {error}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }

    for finding in &report.findings {
        let outcome = &finding.outcome;
        println!(
            "FINDING scenario {:05}: {} after {} shrink step(s) ({} runs) — {}",
            finding.index,
            outcome.finding.class,
            outcome.steps,
            outcome.runs,
            outcome.finding.detail
        );
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("repro-{:05}.json", finding.index));
            let repro = finding.to_repro(report.seed);
            match repro.save(&path) {
                Ok(()) => eprintln!("[repro written to {}]", path.display()),
                Err(error) => {
                    eprintln!("{error}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    for failure in &report.failures {
        println!(
            "QUARANTINED scenario {:05}: {} after {} attempt(s)",
            failure.index, failure.outcome, failure.attempts
        );
    }

    if let Some(path) = &manifest_path {
        // Campaign manifests carry no experiments; the scale tag is
        // nominal (scenarios pick their own instruction budgets) and the
        // authoritative campaign size lives under `fuzz.scenarios`.
        // Journaled manifests zero the wall time so an interrupted-then-
        // resumed campaign's manifest is byte-identical to a clean one.
        let manifest = Manifest {
            scale: Scale::Smoke,
            jobs: config.jobs,
            total_wall_ms: if journaled {
                0.0
            } else {
                elapsed.as_secs_f64() * 1e3
            },
            fuzz: Some(FuzzProvenance::of(&report)),
            experiments: Vec::new(),
        };
        if let Err(error) = mapg::write_atomic(Path::new(path), manifest.to_json().as_bytes()) {
            eprintln!("cannot write manifest '{}': {error}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[manifest written to {}]", path.display());
    }

    let skipped = report.scenarios - report.executed - report.failures.len() as u64;
    if skipped > 0 {
        println!(
            "budget: {skipped} of {} scenario(s) not started (--max-seconds reached)",
            report.scenarios
        );
    }
    if report.is_clean() {
        println!(
            "clean: {} scenario(s) agreed across both stacks in {elapsed:.2?}",
            report.executed
        );
        ExitCode::SUCCESS
    } else {
        for (class, count) in report.class_counts() {
            println!("  {class}: {count}");
        }
        println!(
            "{} of {} scenario(s) diverged ({} quarantined) in {elapsed:.2?}",
            report.findings.len(),
            report.executed,
            report.failures.len()
        );
        ExitCode::FAILURE
    }
}
