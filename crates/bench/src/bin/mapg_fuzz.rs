//! Seeded differential fuzz campaigns for the MAPG stack.
//!
//! ```bash
//! mapg-fuzz                                  # 200 scenarios, default seed
//! mapg-fuzz --scenarios 2000 --seed 7        # bigger sweep
//! mapg-fuzz --out fuzz-artifacts             # write repro JSONs on divergence
//! ```
//!
//! Every scenario runs through the live event-wheel stack and the frozen
//! reference stack; any disagreement (stats mismatch, broken invariant,
//! ledger non-reconciliation, trace/metrics asymmetry, panic) is shrunk
//! to a minimal scenario and written as a self-contained repro file that
//! `mapgsim --repro FILE` replays. Exit status is nonzero when any
//! scenario diverged, so CI can gate on a clean campaign.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use mapg_bench::{run_campaign, CampaignConfig, FuzzProvenance, Manifest, Scale};

const USAGE: &str = "usage: mapg-fuzz [--scenarios N] [--seed S] [--shrink-budget N] \
     [--jobs N] [--out DIR] [--manifest FILE]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = CampaignConfig::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut manifest_path: Option<PathBuf> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scenarios" => {
                let Some(value) = iter.next() else {
                    eprintln!("--scenarios needs a value (a scenario count >= 1)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => config.scenarios = n,
                    _ => {
                        eprintln!("invalid scenario count '{value}' (need an integer >= 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                let Some(value) = iter.next() else {
                    eprintln!("--seed needs a value (a u64)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<u64>() {
                    Ok(seed) => config.seed = seed,
                    _ => {
                        eprintln!("invalid seed '{value}' (need a u64)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--shrink-budget" => {
                let Some(value) = iter.next() else {
                    eprintln!("--shrink-budget needs a value (candidate evaluations >= 1)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => config.shrink_budget = n,
                    _ => {
                        eprintln!("invalid shrink budget '{value}' (need an integer >= 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                let Some(value) = iter.next() else {
                    eprintln!("--jobs needs a value (a worker count >= 1)");
                    return ExitCode::FAILURE;
                };
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => config.jobs = n,
                    _ => {
                        eprintln!("invalid job count '{value}' (need an integer >= 1)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => {
                let Some(path) = iter.next() else {
                    eprintln!("--out needs a directory path");
                    return ExitCode::FAILURE;
                };
                out_dir = Some(PathBuf::from(path));
            }
            "--manifest" => {
                let Some(path) = iter.next() else {
                    eprintln!("--manifest needs an output path");
                    return ExitCode::FAILURE;
                };
                manifest_path = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "# MAPG differential fuzz — {} scenario(s), seed {}, {} job(s)",
        config.scenarios, config.seed, config.jobs
    );

    // Panics inside scenarios are an expected finding class and the differ
    // catches them; silence the default hook so a campaign over a panicking
    // build doesn't print thousands of backtraces. Restored on exit.
    let quiet_panics = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let started = Instant::now();
    let report = run_campaign(&config);
    let elapsed = started.elapsed();
    std::panic::set_hook(quiet_panics);

    if let Some(dir) = &out_dir {
        if !report.is_clean() {
            if let Err(error) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create '{}': {error}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }

    for finding in &report.findings {
        let outcome = &finding.outcome;
        println!(
            "FINDING scenario {:05}: {} after {} shrink step(s) ({} runs) — {}",
            finding.index,
            outcome.finding.class,
            outcome.steps,
            outcome.runs,
            outcome.finding.detail
        );
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("repro-{:05}.json", finding.index));
            let repro = finding.to_repro(report.seed);
            match repro.save(&path) {
                Ok(()) => eprintln!("[repro written to {}]", path.display()),
                Err(error) => {
                    eprintln!("{error}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if let Some(path) = &manifest_path {
        // Campaign manifests carry no experiments; the scale tag is
        // nominal (scenarios pick their own instruction budgets) and the
        // authoritative campaign size lives under `fuzz.scenarios`.
        let manifest = Manifest {
            scale: Scale::Smoke,
            jobs: config.jobs,
            total_wall_ms: elapsed.as_secs_f64() * 1e3,
            fuzz: Some(FuzzProvenance::of(&report)),
            experiments: Vec::new(),
        };
        if let Err(error) = std::fs::write(path, manifest.to_json()) {
            eprintln!("cannot write manifest '{}': {error}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[manifest written to {}]", path.display());
    }

    if report.is_clean() {
        println!(
            "clean: {} scenario(s) agreed across both stacks in {elapsed:.2?}",
            report.scenarios
        );
        ExitCode::SUCCESS
    } else {
        for (class, count) in report.class_counts() {
            println!("  {class}: {count}");
        }
        println!(
            "{} of {} scenario(s) diverged in {elapsed:.2?}",
            report.findings.len(),
            report.scenarios
        );
        ExitCode::FAILURE
    }
}
