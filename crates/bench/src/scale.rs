//! Experiment scales: every experiment runs at a chosen instruction budget
//! so the same code serves integration tests (fast), criterion benches
//! (medium) and the paper-regeneration run (full).

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny runs for unit/integration tests (~30 k instructions per run).
    Smoke,
    /// Medium runs for criterion benches (~100 k instructions).
    Quick,
    /// The full regeneration (~1 M instructions per run).
    Paper,
}

impl Scale {
    /// Instructions each simulated core retires per run.
    pub fn instructions(self) -> u64 {
        match self {
            Scale::Smoke => 30_000,
            Scale::Quick => 100_000,
            Scale::Paper => 1_000_000,
        }
    }

    /// Per-core instruction budget for the shard-scale throughput cases
    /// (1024–8192 cores). Deliberately far below [`Scale::instructions`]:
    /// the clusters are 64–512× larger than the classic suite's, and the
    /// committed metric is a wall-time *ratio* between two runs of the
    /// same budget, which stabilizes long before the per-core budget
    /// does.
    pub fn shard_instructions(self) -> u64 {
        match self {
            Scale::Smoke => 300,
            Scale::Quick => 1_500,
            Scale::Paper => 3_000,
        }
    }

    /// Whether the full 12-profile suite is used (smaller scales use the
    /// two-profile extremes suite).
    pub fn full_suite(self) -> bool {
        matches!(self, Scale::Paper)
    }

    /// The canonical lowercase name (`"paper"`, never the `"full"` alias).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }

    /// Parses a scale name.
    pub fn parse(name: &str) -> Option<Scale> {
        match name {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Smoke.instructions() < Scale::Quick.instructions());
        assert!(Scale::Quick.instructions() < Scale::Paper.instructions());
    }

    #[test]
    fn parsing() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for scale in [Scale::Smoke, Scale::Quick, Scale::Paper] {
            assert_eq!(Scale::parse(scale.name()), Some(scale));
        }
    }

    #[test]
    fn only_paper_uses_full_suite() {
        assert!(!Scale::Smoke.full_suite());
        assert!(!Scale::Quick.full_suite());
        assert!(Scale::Paper.full_suite());
    }
}
