//! The committed throughput baseline: simulated-events-per-second for the
//! cluster hot path, optimized stack vs the retained seed stack.
//!
//! `experiments --bench-throughput BENCH_7.json` measures the canonical
//! workload suite at each cluster size twice — once with the optimized
//! stack ([`mapg_cpu::Cluster::run`]: event-wheel scheduler, compute
//! batching, flattened caches/DRAM/MSHRs) and once with the frozen seed
//! stack ([`mapg_cpu::ReferenceCluster`]: per-event linear scan over the
//! seed memory hierarchy) — and records both rates plus their ratio. The
//! headline number is the geometric mean of the 16-core speedups across
//! the suite.
//!
//! The suite covers the three canonical workload profiles (memory-bound /
//! mixed / compute-bound), with the memory-bound profile additionally run
//! against the stream-prefetcher and closed-page hierarchies so the
//! DRAM/MSHR/prefetch hot path — not just the cache path — is on the
//! record. Those three cases share the profile tag `"mem"`, and their
//! 16-core geometric mean is committed as `mem_profile_speedup`, the
//! number the CI gate tracks for the mem-path optimization work.
//!
//! # Methodology
//!
//! - Workloads are **basic-block-granularity recordings**: each core's
//!   synthetic workload is recorded once, then
//!   [`quantize_compute(4)`](mapg_trace::RecordedTrace::quantize_compute)
//!   splits the coarse compute gaps into ~4-instruction quanta — the
//!   trace shape pintool-style frontends emit (one compute event per
//!   basic block) and the shape the scheduler + batching hot path is
//!   designed for. Both stacks replay the *identical* recording, so they
//!   simulate the identical cycle-level history (the equivalence oracle
//!   proves the interleavings match event for event).
//! - The suite spans the three canonical profiles because the win is
//!   workload-dependent: memory-bound runs are dominated by the (shared)
//!   cache/DRAM model, while compute-lean runs expose the per-event
//!   scheduling overhead the tentpole removes. The geometric mean over
//!   the suite is the honest single number.
//! - Each `(case, scheduler)` pair runs `repeats` times on a fresh
//!   cluster and keeps the **minimum** wall time — the standard noise
//!   filter for single-threaded microbenchmarks (anything above the
//!   minimum is interference, not work). The repeats for the two stacks
//!   **interleave** (heap, reference, heap, reference, …) so slow machine
//!   drifts hit both stacks equally and cancel out of the ratio.
//! - "Simulated events" is the number of trace events the cluster
//!   consumed (instruction-weighted work would double-count folded
//!   batches); rates are events over wall seconds.
//! - Regression checking compares **speedup ratios** (reference wall /
//!   heap wall), never absolute rates: both measurements come from the
//!   same process on the same machine, so the ratio transfers across CI
//!   hardware where raw events/sec would not.

use std::time::Instant;

use mapg_cpu::{Cluster, CoreConfig, PassiveHandler, ReferenceCluster};
use mapg_mem::{DramConfig, HierarchyConfig, PagePolicy};
use mapg_trace::{RecordedTrace, SyntheticWorkload, WorkloadProfile};

use crate::scale::Scale;

/// Schema version stamped into every `BENCH_7.json` (3: per-case
/// hierarchy configurations and the committed `mem_profile_speedup`).
pub const THROUGHPUT_SCHEMA: u32 = 3;

/// Core counts measured per run; the last one is the headline size.
pub const CORE_COUNTS: [usize; 3] = [1, 4, 16];

/// Basic-block quantum (instructions) the suite recordings are split to.
pub const BLOCK_QUANTUM: u64 = 4;

/// Fraction of the baseline speedup a fresh run must retain (the CI gate
/// fails below `baseline * (1 - THROUGHPUT_TOLERANCE)`).
pub const THROUGHPUT_TOLERANCE: f64 = 0.20;

/// One suite entry: a workload recording replayed against a specific
/// hierarchy configuration.
struct SuiteCase {
    /// Case-name stem (`"mem_pf"` → `"mem_pf_cores16"` etc.).
    key: &'static str,
    /// Profile tag the per-profile geomeans group on.
    profile: &'static str,
    workload: WorkloadProfile,
    hierarchy: HierarchyConfig,
}

/// The canonical workload suite. The memory-bound recording runs against
/// three hierarchies — baseline, stream prefetcher, closed page — because
/// those are the configurations that move work onto the DRAM/MSHR/
/// prefetch hot path; all three carry the `"mem"` profile tag.
fn suite() -> Vec<SuiteCase> {
    let closed_page = HierarchyConfig {
        dram: DramConfig::ddr3_1333().with_page_policy(PagePolicy::Closed),
        ..HierarchyConfig::baseline()
    };
    vec![
        SuiteCase {
            key: "mem",
            profile: "mem",
            workload: WorkloadProfile::mem_bound("throughput_mem"),
            hierarchy: HierarchyConfig::baseline(),
        },
        SuiteCase {
            key: "mem_pf",
            profile: "mem",
            workload: WorkloadProfile::mem_bound("throughput_mem"),
            hierarchy: HierarchyConfig::with_stream_prefetcher(),
        },
        SuiteCase {
            key: "mem_cp",
            profile: "mem",
            workload: WorkloadProfile::mem_bound("throughput_mem"),
            hierarchy: closed_page,
        },
        SuiteCase {
            key: "mixed",
            profile: "mixed",
            workload: WorkloadProfile::mixed("throughput_mixed"),
            hierarchy: HierarchyConfig::baseline(),
        },
        SuiteCase {
            key: "cpu",
            profile: "cpu",
            workload: WorkloadProfile::compute_bound("throughput_cpu"),
            hierarchy: HierarchyConfig::baseline(),
        },
    ]
}

/// One measured `(profile, cluster size)` configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputCase {
    /// Case name (`"mem_cores16"` etc.), the key baselines are matched on.
    pub name: String,
    /// Workload profile key (`"mem"`, `"mixed"`, `"cpu"`).
    pub profile: String,
    /// Number of cores in the cluster.
    pub cores: usize,
    /// Trace events consumed across all cores (identical for both stacks).
    pub simulated_events: u64,
    /// Best-of-`repeats` wall time of the event-wheel stack, seconds.
    pub heap_wall_s: f64,
    /// Best-of-`repeats` wall time of the seed reference stack, seconds.
    pub reference_wall_s: f64,
}

impl ThroughputCase {
    /// Simulated events per wall second with the event-wheel stack.
    pub fn heap_events_per_sec(&self) -> f64 {
        if self.heap_wall_s > 0.0 {
            self.simulated_events as f64 / self.heap_wall_s
        } else {
            0.0
        }
    }

    /// Simulated events per wall second with the reference stack.
    pub fn reference_events_per_sec(&self) -> f64 {
        if self.reference_wall_s > 0.0 {
            self.simulated_events as f64 / self.reference_wall_s
        } else {
            0.0
        }
    }

    /// Event-wheel speedup over the reference (>1 means faster).
    pub fn speedup(&self) -> f64 {
        if self.heap_wall_s > 0.0 {
            self.reference_wall_s / self.heap_wall_s
        } else {
            0.0
        }
    }
}

/// A full throughput measurement: the suite at one scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Scale the clusters ran at.
    pub scale: Scale,
    /// Timing repeats per `(case, scheduler)` pair.
    pub repeats: usize,
    /// Per-configuration measurements, profile-major in [`CORE_COUNTS`]
    /// order.
    pub cases: Vec<ThroughputCase>,
}

/// Records one basic-block-granularity trace per core.
fn record_suite_traces(
    profile: &WorkloadProfile,
    cores: usize,
    instructions: u64,
) -> Vec<RecordedTrace> {
    (0..cores)
        .map(|i| {
            let mut workload = SyntheticWorkload::new(profile, 1_000 + i as u64);
            RecordedTrace::record(&mut workload, instructions).quantize_compute(BLOCK_QUANTUM)
        })
        .collect()
}

/// Times both stacks over `repeats` interleaved rounds and returns the
/// best wall seconds as `(heap, reference)`.
///
/// The repeats alternate heap/reference rather than running one stack's
/// block after the other: the committed metric is their *ratio*, and
/// interleaving samples both stacks under near-identical machine
/// conditions, so slow drifts (frequency scaling, co-tenant load) cancel
/// out of the ratio instead of landing entirely on whichever stack ran
/// second.
fn time_pair(
    traces: &[RecordedTrace],
    hierarchy: HierarchyConfig,
    instructions: u64,
    repeats: usize,
) -> (f64, f64) {
    let mut best_heap = f64::INFINITY;
    let mut best_reference = f64::INFINITY;
    for _ in 0..repeats {
        let sources: Vec<_> = traces.iter().map(|t| t.replay()).collect();
        let mut cluster = Cluster::new(CoreConfig::baseline(), hierarchy, sources);
        let started = Instant::now();
        cluster.run(instructions, &mut PassiveHandler);
        best_heap = best_heap.min(started.elapsed().as_secs_f64());

        let sources: Vec<_> = traces.iter().map(|t| t.replay()).collect();
        let mut cluster = ReferenceCluster::new(CoreConfig::baseline(), hierarchy, sources);
        let started = Instant::now();
        cluster.run(instructions, &mut PassiveHandler);
        best_reference = best_reference.min(started.elapsed().as_secs_f64());
    }
    (best_heap, best_reference)
}

impl ThroughputReport {
    /// Measures every suite case at `scale`, `repeats` timings per
    /// scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `repeats` is zero.
    pub fn measure(scale: Scale, repeats: usize) -> Self {
        assert!(repeats > 0, "need at least one timing repeat");
        let instructions = scale.instructions();
        let mut cases = Vec::new();
        for entry in suite() {
            for &cores in &CORE_COUNTS {
                let traces = record_suite_traces(&entry.workload, cores, instructions);
                // The recordings cover >= `instructions` per core and the
                // replay wraps, so event consumption is deterministic and
                // identical across stacks; count one full pass per core.
                let simulated_events = traces.iter().map(|t| t.events().len() as u64).sum();
                let (heap_wall_s, reference_wall_s) =
                    time_pair(&traces, entry.hierarchy, instructions, repeats);
                cases.push(ThroughputCase {
                    name: format!("{}_cores{cores}", entry.key),
                    profile: entry.profile.to_owned(),
                    cores,
                    simulated_events,
                    heap_wall_s,
                    reference_wall_s,
                });
            }
        }
        ThroughputReport {
            scale,
            repeats,
            cases,
        }
    }

    /// The headline number: geometric mean of the largest-cluster
    /// speedups across the suite (0 when nothing was measured).
    pub fn headline_speedup(&self) -> f64 {
        self.geomean(|_| true)
    }

    /// Geometric mean of the largest-cluster speedups over the cases
    /// carrying `profile` (0 when none were measured). `"mem"` is the
    /// committed mem-profile ratio the CI gate tracks.
    pub fn profile_speedup(&self, profile: &str) -> f64 {
        self.geomean(|c| c.profile == profile)
    }

    fn geomean(&self, keep: impl Fn(&ThroughputCase) -> bool) -> f64 {
        let largest = self.cases.iter().map(|c| c.cores).max();
        let Some(largest) = largest else { return 0.0 };
        let speedups: Vec<f64> = self
            .cases
            .iter()
            .filter(|c| c.cores == largest && c.speedup() > 0.0 && keep(c))
            .map(|c| c.speedup())
            .collect();
        if speedups.is_empty() {
            return 0.0;
        }
        let log_sum: f64 = speedups.iter().map(|s| s.ln()).sum();
        (log_sum / speedups.len() as f64).exp()
    }

    /// Renders the report as pretty-printed JSON (trailing newline
    /// included); the format `BENCH_7.json` is committed in.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", THROUGHPUT_SCHEMA));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale.name()));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!("  \"block_quantum\": {},\n", BLOCK_QUANTUM));
        out.push_str(&format!(
            "  \"headline_speedup\": {},\n",
            json_float(self.headline_speedup())
        ));
        out.push_str(&format!(
            "  \"mem_profile_speedup\": {},\n",
            json_float(self.profile_speedup("mem"))
        ));
        out.push_str("  \"cases\": [");
        for (i, case) in self.cases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", case.name));
            out.push_str(&format!("      \"profile\": \"{}\",\n", case.profile));
            out.push_str(&format!("      \"cores\": {},\n", case.cores));
            out.push_str(&format!(
                "      \"simulated_events\": {},\n",
                case.simulated_events
            ));
            out.push_str(&format!(
                "      \"heap_wall_s\": {},\n",
                json_float(case.heap_wall_s)
            ));
            out.push_str(&format!(
                "      \"reference_wall_s\": {},\n",
                json_float(case.reference_wall_s)
            ));
            out.push_str(&format!(
                "      \"heap_events_per_sec\": {},\n",
                json_float(case.heap_events_per_sec())
            ));
            out.push_str(&format!(
                "      \"reference_events_per_sec\": {},\n",
                json_float(case.reference_events_per_sec())
            ));
            out.push_str(&format!(
                "      \"speedup\": {}\n",
                json_float(case.speedup())
            ));
            out.push_str("    }");
        }
        if !self.cases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Extracts `(name, speedup)` pairs from a rendered report — the only
    /// fields the regression gate needs, so the committed baseline stays
    /// readable by this crate without a JSON dependency. The top-level
    /// `headline_speedup` is reported under the name `"headline"` and
    /// `mem_profile_speedup` under `"mem_profile"`.
    /// Tolerates any field order as long as `"name"` precedes its case's
    /// `"speedup"` (which [`ThroughputReport::to_json`] guarantees).
    pub fn parse_speedups(json: &str) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        let mut name: Option<String> = None;
        for line in json.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("\"headline_speedup\": ") {
                if let Ok(v) = rest.trim_end_matches(',').parse() {
                    out.push(("headline".to_owned(), v));
                }
            } else if let Some(rest) = line.strip_prefix("\"mem_profile_speedup\": ") {
                if let Ok(v) = rest.trim_end_matches(',').parse() {
                    out.push(("mem_profile".to_owned(), v));
                }
            } else if let Some(rest) = line.strip_prefix("\"name\": \"") {
                if let Some(end) = rest.find('"') {
                    name = Some(rest[..end].to_owned());
                }
            } else if let Some(rest) = line.strip_prefix("\"speedup\": ") {
                if let (Some(n), Ok(v)) = (name.take(), rest.trim_end_matches(',').parse()) {
                    out.push((n, v));
                }
            }
        }
        out
    }
}

/// Measures the suite, prints the table, writes the JSON record to
/// `out_path`, and — when `baseline_path` is given — gates every
/// committed speedup against [`THROUGHPUT_TOLERANCE`].
///
/// This is the whole `--bench-throughput` mode, shared by the
/// `experiments` driver and the dedicated `throughput` binary. CI runs
/// the dedicated binary: the measured hot loop must not share a binary
/// with the full experiment driver, because co-locating it with that
/// much live code demonstrably shifts LTO inlining and code layout and
/// slows the measured stack by ~25% (the reference stack, which is not
/// inlining-sensitive, times identically in both binaries).
pub fn run_throughput_cli(
    out_path: &str,
    baseline_path: Option<&str>,
    scale: Scale,
    repeats: usize,
) -> std::process::ExitCode {
    use std::process::ExitCode;

    println!(
        "# MAPG throughput — event-wheel vs reference scheduler, {} scale, best of {repeats}\n",
        scale.name()
    );
    let report = ThroughputReport::measure(scale, repeats);
    println!(
        "{:<14} {:>6} {:>12} {:>16} {:>16} {:>8}",
        "case", "cores", "sim events", "wheel evt/s", "reference evt/s", "speedup"
    );
    for case in &report.cases {
        println!(
            "{:<14} {:>6} {:>12} {:>16.3e} {:>16.3e} {:>7.2}x",
            case.name,
            case.cores,
            case.simulated_events,
            case.heap_events_per_sec(),
            case.reference_events_per_sec(),
            case.speedup()
        );
    }
    println!(
        "\nheadline (geomean of largest-cluster speedups): {:.2}x",
        report.headline_speedup()
    );
    println!(
        "mem profile (geomean over the \"mem\"-tagged cases): {:.2}x",
        report.profile_speedup("mem")
    );
    if let Err(error) =
        mapg::write_atomic(std::path::Path::new(out_path), report.to_json().as_bytes())
    {
        eprintln!("cannot write throughput record '{out_path}': {error}");
        return ExitCode::FAILURE;
    }
    eprintln!("\n[throughput record written to {out_path}]");

    let Some(baseline_path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(contents) => contents,
        Err(error) => {
            eprintln!("cannot read throughput baseline '{baseline_path}': {error}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_speedups = ThroughputReport::parse_speedups(&baseline);
    if baseline_speedups.is_empty() {
        eprintln!("baseline '{baseline_path}' holds no speedup records");
        return ExitCode::FAILURE;
    }
    // Compare speedup ratios, not absolute rates: the ratio comes from one
    // process on one machine, so it transfers to whatever hardware CI runs
    // on, where the committed cycles/sec would not.
    let mut failed = false;
    for (name, baseline_speedup) in &baseline_speedups {
        let measured = if name == "headline" {
            report.headline_speedup()
        } else if name == "mem_profile" {
            report.profile_speedup("mem")
        } else if let Some(case) = report.cases.iter().find(|c| &c.name == name) {
            case.speedup()
        } else {
            eprintln!("baseline case '{name}' was not measured in this run");
            failed = true;
            continue;
        };
        let floor = baseline_speedup * (1.0 - THROUGHPUT_TOLERANCE);
        if measured < floor {
            eprintln!(
                "regression: {name} speedup {measured:.2}x fell below {floor:.2}x \
                 (baseline {baseline_speedup:.2}x - {:.0}% tolerance)",
                THROUGHPUT_TOLERANCE * 100.0
            );
            failed = true;
        } else {
            eprintln!("[{name}: {measured:.2}x vs baseline {baseline_speedup:.2}x — ok]");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Schema version stamped into every shard throughput record
/// (independent of [`THROUGHPUT_SCHEMA`]). Schema 2 adds
/// `worker_threads`, `available_parallelism`, and the optional
/// `thread_curve` array; the gate reader
/// ([`ThroughputReport::parse_speedups`]) reads schema-1 and schema-2
/// records alike, so committed `BENCH_8.json` baselines stay usable.
pub const SHARD_SCHEMA: u32 = 2;

/// The shard-scale topologies measured per run: `(cores, channels)`.
/// Cores map to channels round-robin, so every channel owns an equal
/// slice of the cluster (128 cores per channel in every case; the last
/// entry is the 65 536-core extreme the session engine is proven at).
pub const SHARD_TOPOLOGIES: [(usize, usize); 3] = [(1024, 8), (8192, 64), (65_536, 512)];

/// Distinct workload recordings the shard cases cycle over; core `i`
/// replays recording `i % SHARD_TRACE_POOL` (seed `1000 + i % 128`), so
/// an 8192-core cluster needs 128 recordings, not 8192.
pub const SHARD_TRACE_POOL: usize = 128;

/// One measured shard-scale configuration: the same channelled cluster
/// driven once by the single global wheel (`shards = 1`) and once by the
/// sharded engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCase {
    /// Case name (`"shard_cores8192"` etc.), the key baselines match on.
    pub name: String,
    /// Number of cores in the cluster.
    pub cores: usize,
    /// Independent memory channels (cores spread round-robin).
    pub channels: usize,
    /// Trace events consumed across all cores (identical for both runs —
    /// the sharded engine is proven bit-identical to the wheel).
    pub simulated_events: u64,
    /// Best-of-`repeats` wall time of the single global wheel, seconds.
    pub wheel_wall_s: f64,
    /// Best-of-`repeats` wall time of the sharded engine, seconds.
    pub sharded_wall_s: f64,
}

impl ShardCase {
    /// Simulated events per wall second on the single global wheel.
    pub fn wheel_events_per_sec(&self) -> f64 {
        if self.wheel_wall_s > 0.0 {
            self.simulated_events as f64 / self.wheel_wall_s
        } else {
            0.0
        }
    }

    /// Simulated events per wall second on the sharded engine.
    pub fn sharded_events_per_sec(&self) -> f64 {
        if self.sharded_wall_s > 0.0 {
            self.simulated_events as f64 / self.sharded_wall_s
        } else {
            0.0
        }
    }

    /// Sharded-engine speedup over the global wheel (>1 means faster).
    pub fn speedup(&self) -> f64 {
        if self.sharded_wall_s > 0.0 {
            self.wheel_wall_s / self.sharded_wall_s
        } else {
            0.0
        }
    }
}

/// One point of the worker-thread scaling curve: the largest topology
/// driven through a persistent [`mapg_cpu::ShardSession`] (several
/// segments per run, so the resident-arena path is what's timed) with
/// the worker pool pinned to `threads`.
///
/// Deliberately rendered without `"name"`/`"speedup"` keys: the curve is
/// machine-dependent context, and keeping those keys out means
/// [`ThroughputReport::parse_speedups`] — hence the CI gate — never
/// picks curve points up as gateable cases.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadPoint {
    /// Worker threads the pool was pinned to for this point.
    pub threads: usize,
    /// Session segments per timed run.
    pub segments: usize,
    /// Trace events consumed across all cores per timed run.
    pub simulated_events: u64,
    /// Best-of-`repeats` wall time of the session run, seconds.
    pub sharded_wall_s: f64,
}

impl ThreadPoint {
    /// Simulated events per wall second at this thread count.
    pub fn sharded_events_per_sec(&self) -> f64 {
        if self.sharded_wall_s > 0.0 {
            self.simulated_events as f64 / self.sharded_wall_s
        } else {
            0.0
        }
    }
}

/// A full sharded-engine throughput measurement — the record the CI
/// shard gate compares against (`BENCH_9.json`; schema-1 `BENCH_8.json`
/// baselines parse with the same reader).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Scale the clusters ran at (per-core budget is
    /// [`Scale::shard_instructions`]).
    pub scale: Scale,
    /// Timing repeats per `(case, engine)` pair.
    pub repeats: usize,
    /// Shard count the sharded engine ran at (the wheel side is always
    /// `shards = 1` by definition).
    pub shards: usize,
    /// Worker threads the sharded side's pool was pinned to. At 1 the
    /// case speedups isolate channel-locality wins from parallelism —
    /// the only ratios stable enough to gate on shared 1-CPU runners.
    pub worker_threads: usize,
    /// `std::thread::available_parallelism()` on the measuring host,
    /// recorded so a reader can judge how much the curve was allowed to
    /// show.
    pub available_parallelism: usize,
    /// Worker-thread scaling curve (empty unless `--thread-curve` ran).
    pub thread_curve: Vec<ThreadPoint>,
    /// Per-topology measurements in [`SHARD_TOPOLOGIES`] order.
    pub cases: Vec<ShardCase>,
}

/// The host's available parallelism, defaulting to 1 where unknown.
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Records the shared shard workload pool (one recording per
/// [`SHARD_TRACE_POOL`] slot; core `i` replays slot `i % pool`).
fn record_shard_pool(instructions: u64) -> Vec<RecordedTrace> {
    let profile = WorkloadProfile::mem_bound("throughput_shard");
    (0..SHARD_TRACE_POOL)
        .map(|i| {
            let mut workload = SyntheticWorkload::new(&profile, 1_000 + i as u64);
            RecordedTrace::record(&mut workload, instructions).quantize_compute(BLOCK_QUANTUM)
        })
        .collect()
}

impl ShardReport {
    /// Measures every shard topology at `scale`, `repeats` timings per
    /// engine, with the sharded side at `shards` shards.
    ///
    /// Both engines replay the identical recordings on the identical
    /// channelled cluster, so they simulate the identical history (the
    /// cpu crate's shard tests prove the results bit-identical); the
    /// measured difference is pure scheduling: one 8192-entry wheel
    /// striding across 64 hierarchies versus 64 independent 128-entry
    /// wheels, each with a channel-local working set. Repeats interleave
    /// wheel/sharded for the same reason [`time_pair`] interleaves.
    ///
    /// The sharded side runs with the worker pool pinned to `threads`
    /// (the wheel side is single-threaded by construction). At
    /// `threads = 1` the case speedups are pure locality ratios —
    /// machine-transferable the same way the classic speedups are.
    ///
    /// # Panics
    ///
    /// Panics if `repeats`, `shards`, or `threads` is zero.
    pub fn measure(scale: Scale, repeats: usize, shards: usize, threads: usize) -> Self {
        Self::measure_topologies(scale, repeats, shards, threads, &SHARD_TOPOLOGIES)
    }

    /// [`ShardReport::measure`] over explicit `(cores, channels)`
    /// topologies — the committed record always uses
    /// [`SHARD_TOPOLOGIES`]; tests and one-off probes can measure
    /// smaller clusters.
    ///
    /// # Panics
    ///
    /// Panics if `repeats`, `shards`, or `threads` is zero.
    pub fn measure_topologies(
        scale: Scale,
        repeats: usize,
        shards: usize,
        threads: usize,
        topologies: &[(usize, usize)],
    ) -> Self {
        assert!(repeats > 0, "need at least one timing repeat");
        assert!(shards > 0, "need at least one shard");
        assert!(threads > 0, "need at least one worker thread");
        let instructions = scale.shard_instructions();
        let pool = record_shard_pool(instructions);
        let mut cases = Vec::new();
        for &(cores, channels) in topologies {
            let simulated_events = (0..cores)
                .map(|i| pool[i % SHARD_TRACE_POOL].events().len() as u64)
                .sum();
            let build = || {
                let sources: Vec<_> = (0..cores)
                    .map(|i| pool[i % SHARD_TRACE_POOL].replay())
                    .collect();
                Cluster::try_new_with_channels(
                    CoreConfig::baseline(),
                    HierarchyConfig::baseline(),
                    sources,
                    channels,
                )
                .expect("shard-case topology is valid")
            };
            let mut wheel_wall_s = f64::INFINITY;
            let mut sharded_wall_s = f64::INFINITY;
            for _ in 0..repeats {
                let mut cluster = build();
                let started = Instant::now();
                cluster
                    .try_run(instructions, &mut PassiveHandler)
                    .expect("wheel run");
                wheel_wall_s = wheel_wall_s.min(started.elapsed().as_secs_f64());

                let mut cluster = build();
                let started = Instant::now();
                mapg_pool::with_default_jobs(threads, || {
                    cluster.try_run_sharded(instructions, &PassiveHandler, shards)
                })
                .expect("sharded run");
                sharded_wall_s = sharded_wall_s.min(started.elapsed().as_secs_f64());
            }
            cases.push(ShardCase {
                name: format!("shard_cores{cores}"),
                cores,
                channels,
                simulated_events,
                wheel_wall_s,
                sharded_wall_s,
            });
        }
        ShardReport {
            scale,
            repeats,
            shards,
            worker_threads: threads,
            available_parallelism: host_parallelism(),
            thread_curve: Vec::new(),
            cases,
        }
    }

    /// Measures the worker-thread scaling curve on `topology`: one
    /// persistent [`mapg_cpu::ShardSession`] per timed run, advanced
    /// through `segments` equal segments (so arena reuse and the
    /// per-segment merge — not session setup — dominate), swept over
    /// power-of-two thread counts up to the host's parallelism (plus the
    /// exact host count when it is not a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `repeats`, `shards`, or `segments` is zero.
    pub fn measure_thread_curve(
        scale: Scale,
        repeats: usize,
        shards: usize,
        segments: usize,
        topology: (usize, usize),
    ) -> Vec<ThreadPoint> {
        assert!(repeats > 0, "need at least one timing repeat");
        assert!(shards > 0, "need at least one shard");
        assert!(segments > 0, "need at least one segment");
        let instructions = scale.shard_instructions();
        let per_segment = (instructions / segments as u64).max(1);
        let pool = record_shard_pool(instructions);
        let (cores, channels) = topology;
        let simulated_events = (0..cores)
            .map(|i| pool[i % SHARD_TRACE_POOL].events().len() as u64)
            .sum();
        let parallelism = host_parallelism();
        let mut sweep: Vec<usize> = (0..)
            .map(|p| 1usize << p)
            .take_while(|&t| t <= parallelism)
            .collect();
        if sweep.last() != Some(&parallelism) {
            sweep.push(parallelism);
        }
        sweep
            .into_iter()
            .map(|threads| {
                let mut sharded_wall_s = f64::INFINITY;
                for _ in 0..repeats {
                    let sources: Vec<_> = (0..cores)
                        .map(|i| pool[i % SHARD_TRACE_POOL].replay())
                        .collect();
                    let mut cluster = Cluster::try_new_with_channels(
                        CoreConfig::baseline(),
                        HierarchyConfig::baseline(),
                        sources,
                        channels,
                    )
                    .expect("curve topology is valid");
                    let started = Instant::now();
                    mapg_pool::with_default_jobs(threads, || {
                        cluster.shard_session(shards, &PassiveHandler, |session| {
                            for _ in 0..segments {
                                session.try_run(per_segment).expect("curve segment");
                            }
                        })
                    })
                    .expect("curve session");
                    sharded_wall_s = sharded_wall_s.min(started.elapsed().as_secs_f64());
                }
                ThreadPoint {
                    threads,
                    segments,
                    simulated_events,
                    sharded_wall_s,
                }
            })
            .collect()
    }

    /// Renders the report as pretty-printed JSON (trailing newline
    /// included); the format `BENCH_9.json` is committed in. Case
    /// `"name"`/`"speedup"` lines parse with
    /// [`ThroughputReport::parse_speedups`], so the shard gate reuses the
    /// classic gate's baseline reader — and the `thread_curve` array
    /// deliberately avoids both keys, so curve points are context, not
    /// gates.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", SHARD_SCHEMA));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale.name()));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"worker_threads\": {},\n", self.worker_threads));
        out.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        out.push_str(&format!("  \"block_quantum\": {},\n", BLOCK_QUANTUM));
        out.push_str("  \"thread_curve\": [");
        let reference_wall = self
            .thread_curve
            .first()
            .map(|p| p.sharded_wall_s)
            .unwrap_or(0.0);
        for (i, point) in self.thread_curve.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"threads\": {},\n", point.threads));
            out.push_str(&format!("      \"segments\": {},\n", point.segments));
            out.push_str(&format!(
                "      \"simulated_events\": {},\n",
                point.simulated_events
            ));
            out.push_str(&format!(
                "      \"sharded_wall_s\": {},\n",
                json_float(point.sharded_wall_s)
            ));
            out.push_str(&format!(
                "      \"sharded_events_per_sec\": {},\n",
                json_float(point.sharded_events_per_sec())
            ));
            let scaling = if point.sharded_wall_s > 0.0 {
                reference_wall / point.sharded_wall_s
            } else {
                0.0
            };
            out.push_str(&format!("      \"scaling_x\": {}\n", json_float(scaling)));
            out.push_str("    }");
        }
        if !self.thread_curve.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"cases\": [");
        for (i, case) in self.cases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", case.name));
            out.push_str(&format!("      \"cores\": {},\n", case.cores));
            out.push_str(&format!("      \"channels\": {},\n", case.channels));
            out.push_str(&format!(
                "      \"simulated_events\": {},\n",
                case.simulated_events
            ));
            out.push_str(&format!(
                "      \"wheel_wall_s\": {},\n",
                json_float(case.wheel_wall_s)
            ));
            out.push_str(&format!(
                "      \"sharded_wall_s\": {},\n",
                json_float(case.sharded_wall_s)
            ));
            out.push_str(&format!(
                "      \"wheel_events_per_sec\": {},\n",
                json_float(case.wheel_events_per_sec())
            ));
            out.push_str(&format!(
                "      \"sharded_events_per_sec\": {},\n",
                json_float(case.sharded_events_per_sec())
            ));
            out.push_str(&format!(
                "      \"speedup\": {}\n",
                json_float(case.speedup())
            ));
            out.push_str("    }");
        }
        if !self.cases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Session segments per thread-curve timed run (enough that resident
/// arenas and the per-segment merge dominate the wall, not session
/// setup).
pub const THREAD_CURVE_SEGMENTS: usize = 4;

/// The `--shards` mode of the throughput binary: measures the sharded
/// engine against the single global wheel at shard scale, writes the
/// `BENCH_9.json`-format record, and — when `baseline_path` is given —
/// gates every committed shard speedup against [`THROUGHPUT_TOLERANCE`].
///
/// `threads` pins the sharded side's worker pool (`None` uses
/// [`mapg_pool::default_jobs`], i.e. the host parallelism); `curve`
/// additionally sweeps the worker-thread scaling curve on the largest
/// topology. The gate itself only ever compares case speedup ratios —
/// with `threads = 1` those are single-thread locality ratios, the form
/// CI pins on 1-CPU runners.
pub fn run_shard_throughput_cli(
    out_path: &str,
    baseline_path: Option<&str>,
    scale: Scale,
    repeats: usize,
    shards: usize,
    threads: Option<usize>,
    curve: bool,
) -> std::process::ExitCode {
    use std::process::ExitCode;

    let threads = threads.unwrap_or_else(mapg_pool::default_jobs);
    if threads == 1 {
        eprintln!(
            "warning: effective worker pool has 1 thread; sharded timings measure \
             single-thread channel locality, not parallel speedup"
        );
    }
    println!(
        "# MAPG shard throughput — {shards}-shard engine ({threads} worker threads) \
         vs single wheel, {} scale, best of {repeats}\n",
        scale.name()
    );
    let mut report = ShardReport::measure(scale, repeats, shards, threads);
    if curve {
        let topology = *SHARD_TOPOLOGIES
            .last()
            .expect("at least one shard topology");
        report.thread_curve = ShardReport::measure_thread_curve(
            scale,
            repeats,
            shards,
            THREAD_CURVE_SEGMENTS,
            topology,
        );
    } else {
        eprintln!("[thread-scaling curve skipped — pass --thread-curve to record it]");
    }
    println!(
        "{:<16} {:>6} {:>9} {:>12} {:>16} {:>16} {:>8}",
        "case", "cores", "channels", "sim events", "wheel evt/s", "sharded evt/s", "speedup"
    );
    for case in &report.cases {
        println!(
            "{:<16} {:>6} {:>9} {:>12} {:>16.3e} {:>16.3e} {:>7.2}x",
            case.name,
            case.cores,
            case.channels,
            case.simulated_events,
            case.wheel_events_per_sec(),
            case.sharded_events_per_sec(),
            case.speedup()
        );
    }
    if !report.thread_curve.is_empty() {
        let (cores, _) = *SHARD_TOPOLOGIES.last().expect("topology");
        println!(
            "\nthread-scaling curve (shard_cores{cores}, {THREAD_CURVE_SEGMENTS} segments \
             per run, host parallelism {}):",
            report.available_parallelism
        );
        println!(
            "{:<10} {:>12} {:>16} {:>9}",
            "threads", "wall_s", "sharded evt/s", "scaling"
        );
        let reference_wall = report.thread_curve[0].sharded_wall_s;
        for point in &report.thread_curve {
            let scaling = if point.sharded_wall_s > 0.0 {
                reference_wall / point.sharded_wall_s
            } else {
                0.0
            };
            println!(
                "{:<10} {:>12.6} {:>16.3e} {:>8.2}x",
                point.threads,
                point.sharded_wall_s,
                point.sharded_events_per_sec(),
                scaling
            );
        }
    }
    if let Err(error) =
        mapg::write_atomic(std::path::Path::new(out_path), report.to_json().as_bytes())
    {
        eprintln!("cannot write shard throughput record '{out_path}': {error}");
        return ExitCode::FAILURE;
    }
    eprintln!("\n[shard throughput record written to {out_path}]");

    let Some(baseline_path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(contents) => contents,
        Err(error) => {
            eprintln!("cannot read shard baseline '{baseline_path}': {error}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_speedups = ThroughputReport::parse_speedups(&baseline);
    if baseline_speedups.is_empty() {
        eprintln!("baseline '{baseline_path}' holds no speedup records");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for (name, baseline_speedup) in &baseline_speedups {
        let Some(case) = report.cases.iter().find(|c| &c.name == name) else {
            eprintln!("baseline case '{name}' was not measured in this run");
            failed = true;
            continue;
        };
        let measured = case.speedup();
        let floor = baseline_speedup * (1.0 - THROUGHPUT_TOLERANCE);
        if measured < floor {
            eprintln!(
                "regression: {name} shard speedup {measured:.2}x fell below {floor:.2}x \
                 (baseline {baseline_speedup:.2}x - {:.0}% tolerance)",
                THROUGHPUT_TOLERANCE * 100.0
            );
            failed = true;
        } else {
            eprintln!("[{name}: {measured:.2}x vs baseline {baseline_speedup:.2}x — ok]");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders a finite float with enough digits for sub-microsecond walls;
/// non-finite values degrade to `0`.
fn json_float(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ThroughputReport {
        ThroughputReport {
            scale: Scale::Smoke,
            repeats: 2,
            cases: vec![
                ThroughputCase {
                    name: "mem_cores1".to_owned(),
                    profile: "mem".to_owned(),
                    cores: 1,
                    simulated_events: 1_000_000,
                    heap_wall_s: 0.5,
                    reference_wall_s: 0.75,
                },
                ThroughputCase {
                    name: "mem_cores16".to_owned(),
                    profile: "mem".to_owned(),
                    cores: 16,
                    simulated_events: 16_000_000,
                    heap_wall_s: 0.25,
                    reference_wall_s: 1.0,
                },
                ThroughputCase {
                    name: "cpu_cores16".to_owned(),
                    profile: "cpu".to_owned(),
                    cores: 16,
                    simulated_events: 4_000_000,
                    heap_wall_s: 0.1,
                    reference_wall_s: 0.9,
                },
            ],
        }
    }

    #[test]
    fn derived_rates_and_speedup() {
        let case = &sample().cases[1];
        assert!((case.speedup() - 4.0).abs() < 1e-12);
        assert!((case.heap_events_per_sec() - 64e6).abs() < 1e-3);
        assert!((case.reference_events_per_sec() - 16e6).abs() < 1e-3);
        let degenerate = ThroughputCase {
            heap_wall_s: 0.0,
            reference_wall_s: 0.0,
            ..case.clone()
        };
        assert_eq!(degenerate.speedup(), 0.0);
        assert_eq!(degenerate.heap_events_per_sec(), 0.0);
        assert_eq!(degenerate.reference_events_per_sec(), 0.0);
    }

    #[test]
    fn headline_is_geomean_of_largest_cluster() {
        let report = sample();
        // 16-core speedups: 4.0 (mem) and 9.0 (cpu); geomean = 6.0.
        assert!((report.headline_speedup() - 6.0).abs() < 1e-9);
        let empty = ThroughputReport {
            cases: Vec::new(),
            ..report
        };
        assert_eq!(empty.headline_speedup(), 0.0);
    }

    #[test]
    fn profile_speedup_groups_on_the_profile_tag() {
        let report = sample();
        // Only mem_cores16 carries "mem" at the largest cluster size.
        assert!((report.profile_speedup("mem") - 4.0).abs() < 1e-9);
        assert!((report.profile_speedup("cpu") - 9.0).abs() < 1e-9);
        assert_eq!(report.profile_speedup("no_such_profile"), 0.0);
    }

    #[test]
    fn json_round_trips_through_parse_speedups() {
        let report = sample();
        let json = report.to_json();
        assert!(json.contains("\"schema\": 3"), "{json}");
        assert!(json.contains("\"scale\": \"smoke\""), "{json}");
        assert!(json.contains("\"block_quantum\": 4"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
        let speedups = ThroughputReport::parse_speedups(&json);
        assert_eq!(speedups.len(), 5);
        assert_eq!(speedups[0].0, "headline");
        assert!((speedups[0].1 - 6.0).abs() < 1e-6);
        assert_eq!(speedups[1].0, "mem_profile");
        assert!((speedups[1].1 - 4.0).abs() < 1e-6);
        assert_eq!(speedups[2].0, "mem_cores1");
        assert!((speedups[2].1 - 1.5).abs() < 1e-6);
        assert_eq!(speedups[3].0, "mem_cores16");
        assert!((speedups[3].1 - 4.0).abs() < 1e-6);
        assert_eq!(speedups[4].0, "cpu_cores16");
        assert!((speedups[4].1 - 9.0).abs() < 1e-6);
    }

    #[test]
    fn parse_ignores_garbage() {
        assert!(ThroughputReport::parse_speedups("not json at all").is_empty());
        // A speedup with no preceding name is dropped.
        assert!(ThroughputReport::parse_speedups("\"speedup\": 2.0\n").is_empty());
    }

    fn shard_sample() -> ShardReport {
        ShardReport {
            scale: Scale::Smoke,
            repeats: 2,
            shards: 8,
            worker_threads: 1,
            available_parallelism: 4,
            thread_curve: vec![
                ThreadPoint {
                    threads: 1,
                    segments: 4,
                    simulated_events: 16_000_000,
                    sharded_wall_s: 2.0,
                },
                ThreadPoint {
                    threads: 4,
                    segments: 4,
                    simulated_events: 16_000_000,
                    sharded_wall_s: 0.8,
                },
            ],
            cases: vec![
                ShardCase {
                    name: "shard_cores1024".to_owned(),
                    cores: 1024,
                    channels: 8,
                    simulated_events: 2_000_000,
                    wheel_wall_s: 0.8,
                    sharded_wall_s: 0.4,
                },
                ShardCase {
                    name: "shard_cores8192".to_owned(),
                    cores: 8192,
                    channels: 64,
                    simulated_events: 16_000_000,
                    wheel_wall_s: 4.0,
                    sharded_wall_s: 2.0,
                },
            ],
        }
    }

    #[test]
    fn shard_case_rates_and_speedup() {
        let case = &shard_sample().cases[0];
        assert!((case.speedup() - 2.0).abs() < 1e-12);
        assert!((case.wheel_events_per_sec() - 2.5e6).abs() < 1e-3);
        assert!((case.sharded_events_per_sec() - 5e6).abs() < 1e-3);
        let degenerate = ShardCase {
            wheel_wall_s: 0.0,
            sharded_wall_s: 0.0,
            ..case.clone()
        };
        assert_eq!(degenerate.speedup(), 0.0);
        assert_eq!(degenerate.wheel_events_per_sec(), 0.0);
        assert_eq!(degenerate.sharded_events_per_sec(), 0.0);
    }

    /// The shard record's name/speedup lines parse with the classic
    /// gate's baseline reader — the invariant the CI shard gate rests
    /// on — and the thread curve contributes *no* gateable entries.
    #[test]
    fn shard_json_parses_with_the_classic_speedup_reader() {
        let report = shard_sample();
        let json = report.to_json();
        assert!(json.contains("\"schema\": 2"), "{json}");
        assert!(json.contains("\"shards\": 8"), "{json}");
        assert!(json.contains("\"worker_threads\": 1"), "{json}");
        assert!(json.contains("\"available_parallelism\": 4"), "{json}");
        assert!(json.contains("\"threads\": 4"), "{json}");
        assert!(json.contains("\"scaling_x\": 2.500000"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
        let speedups = ThroughputReport::parse_speedups(&json);
        assert_eq!(speedups.len(), 2, "curve points must not be gateable");
        assert_eq!(speedups[0].0, "shard_cores1024");
        assert!((speedups[0].1 - 2.0).abs() < 1e-6);
        assert_eq!(speedups[1].0, "shard_cores8192");
        assert!((speedups[1].1 - 2.0).abs() < 1e-6);
    }

    /// The gate reader must keep accepting schema-1 records: committed
    /// `BENCH_8.json` baselines predate `worker_threads` /
    /// `thread_curve` and still have to gate fresh schema-2 runs.
    #[test]
    fn gate_reader_tolerates_the_schema_1_baseline() {
        let legacy = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json"));
        assert!(
            legacy.contains("\"schema\": 1"),
            "fixture is the old schema"
        );
        let speedups = ThroughputReport::parse_speedups(legacy);
        assert_eq!(speedups.len(), 2);
        assert!(speedups.iter().any(|(n, _)| n == "shard_cores1024"));
        assert!(speedups.iter().any(|(n, _)| n == "shard_cores8192"));
        assert!(speedups.iter().all(|(_, s)| *s > 0.0));
    }

    /// An empty curve renders as an empty array and round-trips through
    /// the reader without phantom cases.
    #[test]
    fn empty_thread_curve_renders_cleanly() {
        let report = ShardReport {
            thread_curve: Vec::new(),
            ..shard_sample()
        };
        let json = report.to_json();
        assert!(json.contains("\"thread_curve\": [],"), "{json}");
        assert_eq!(ThroughputReport::parse_speedups(&json).len(), 2);
    }

    /// A live curve measurement over a tiny stand-in topology exercises
    /// the session path end to end and keeps walls positive.
    #[test]
    fn thread_curve_measures_through_the_session_path() {
        let curve = ShardReport::measure_thread_curve(Scale::Smoke, 1, 3, 2, (32, 4));
        assert!(!curve.is_empty());
        assert_eq!(curve[0].threads, 1, "sweep starts at one worker");
        for point in &curve {
            assert_eq!(point.segments, 2);
            assert!(point.simulated_events > 0);
            assert!(point.sharded_wall_s > 0.0);
            assert!(point.sharded_events_per_sec() > 0.0);
        }
    }

    /// A live shard measurement over a deliberately tiny topology: both
    /// engines consume the same event count and produce positive walls.
    /// (The committed `SHARD_TOPOLOGIES` sizes are release-bench-only;
    /// debug-mode tests measure a 32-core stand-in through the same
    /// code path.)
    #[test]
    fn shard_measure_produces_consistent_cases() {
        let report = ShardReport::measure_topologies(Scale::Smoke, 1, 3, 2, &[(32, 4)]);
        assert_eq!(report.cases.len(), 1);
        assert_eq!(report.worker_threads, 2);
        assert!(report.available_parallelism >= 1);
        assert!(report.thread_curve.is_empty());
        let case = &report.cases[0];
        assert_eq!(case.name, "shard_cores32");
        assert_eq!((case.cores, case.channels), (32, 4));
        assert!(case.simulated_events > 0);
        assert!(case.wheel_wall_s > 0.0);
        assert!(case.sharded_wall_s > 0.0);
        assert!(case.speedup() > 0.0);
    }

    #[test]
    fn measure_produces_consistent_cases() {
        // Tiny repeats at smoke scale: this is a correctness test of the
        // harness plumbing, not a benchmark.
        let report = ThroughputReport::measure(Scale::Smoke, 1);
        assert_eq!(report.cases.len(), suite().len() * CORE_COUNTS.len());
        for case in &report.cases {
            assert!(
                case.name.ends_with(&format!("_cores{}", case.cores)),
                "{}",
                case.name
            );
            assert!(case.simulated_events > 0);
            assert!(case.heap_wall_s > 0.0);
            assert!(case.reference_wall_s > 0.0);
        }
        // The three "mem"-tagged hierarchies (baseline / prefetch /
        // closed-page) all appear at every core count.
        let mem_tagged = report.cases.iter().filter(|c| c.profile == "mem").count();
        assert_eq!(mem_tagged, 3 * CORE_COUNTS.len());
        assert!(report.headline_speedup() > 0.0);
        assert!(report.profile_speedup("mem") > 0.0);
    }
}
