//! The committed throughput baseline: simulated-events-per-second for the
//! cluster hot path, optimized stack vs the retained seed stack.
//!
//! `experiments --bench-throughput BENCH_4.json` measures the canonical
//! workload suite (memory-bound / mixed / compute-bound) at each cluster
//! size twice — once with the optimized stack ([`mapg_cpu::Cluster::run`]:
//! event-wheel scheduler, compute batching, flattened caches) and once
//! with the frozen seed stack ([`mapg_cpu::ReferenceCluster`]: per-event
//! linear scan over the seed memory hierarchy) — and records both rates
//! plus their ratio. The headline number is the geometric mean of the
//! 16-core speedups across the suite.
//!
//! # Methodology
//!
//! - Workloads are **basic-block-granularity recordings**: each core's
//!   synthetic workload is recorded once, then
//!   [`quantize_compute(4)`](mapg_trace::RecordedTrace::quantize_compute)
//!   splits the coarse compute gaps into ~4-instruction quanta — the
//!   trace shape pintool-style frontends emit (one compute event per
//!   basic block) and the shape the scheduler + batching hot path is
//!   designed for. Both stacks replay the *identical* recording, so they
//!   simulate the identical cycle-level history (the equivalence oracle
//!   proves the interleavings match event for event).
//! - The suite spans the three canonical profiles because the win is
//!   workload-dependent: memory-bound runs are dominated by the (shared)
//!   cache/DRAM model, while compute-lean runs expose the per-event
//!   scheduling overhead the tentpole removes. The geometric mean over
//!   the suite is the honest single number.
//! - Each `(case, scheduler)` pair runs `repeats` times on a fresh
//!   cluster and keeps the **minimum** wall time — the standard noise
//!   filter for single-threaded microbenchmarks (anything above the
//!   minimum is interference, not work).
//! - "Simulated events" is the number of trace events the cluster
//!   consumed (instruction-weighted work would double-count folded
//!   batches); rates are events over wall seconds.
//! - Regression checking compares **speedup ratios** (reference wall /
//!   heap wall), never absolute rates: both measurements come from the
//!   same process on the same machine, so the ratio transfers across CI
//!   hardware where raw events/sec would not.

use std::time::Instant;

use mapg_cpu::{Cluster, CoreConfig, PassiveHandler, ReferenceCluster};
use mapg_mem::HierarchyConfig;
use mapg_trace::{RecordedTrace, SyntheticWorkload, WorkloadProfile};

use crate::scale::Scale;

/// Schema version stamped into every `BENCH_4.json`.
pub const THROUGHPUT_SCHEMA: u32 = 2;

/// Core counts measured per run; the last one is the headline size.
pub const CORE_COUNTS: [usize; 3] = [1, 4, 16];

/// Basic-block quantum (instructions) the suite recordings are split to.
pub const BLOCK_QUANTUM: u64 = 4;

/// Fraction of the baseline speedup a fresh run must retain (the CI gate
/// fails below `baseline * (1 - THROUGHPUT_TOLERANCE)`).
pub const THROUGHPUT_TOLERANCE: f64 = 0.20;

/// The canonical workload suite, one profile constructor per entry.
fn suite() -> Vec<(&'static str, WorkloadProfile)> {
    vec![
        ("mem", WorkloadProfile::mem_bound("throughput_mem")),
        ("mixed", WorkloadProfile::mixed("throughput_mixed")),
        ("cpu", WorkloadProfile::compute_bound("throughput_cpu")),
    ]
}

/// One measured `(profile, cluster size)` configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputCase {
    /// Case name (`"mem_cores16"` etc.), the key baselines are matched on.
    pub name: String,
    /// Workload profile key (`"mem"`, `"mixed"`, `"cpu"`).
    pub profile: String,
    /// Number of cores in the cluster.
    pub cores: usize,
    /// Trace events consumed across all cores (identical for both stacks).
    pub simulated_events: u64,
    /// Best-of-`repeats` wall time of the event-wheel stack, seconds.
    pub heap_wall_s: f64,
    /// Best-of-`repeats` wall time of the seed reference stack, seconds.
    pub reference_wall_s: f64,
}

impl ThroughputCase {
    /// Simulated events per wall second with the event-wheel stack.
    pub fn heap_events_per_sec(&self) -> f64 {
        if self.heap_wall_s > 0.0 {
            self.simulated_events as f64 / self.heap_wall_s
        } else {
            0.0
        }
    }

    /// Simulated events per wall second with the reference stack.
    pub fn reference_events_per_sec(&self) -> f64 {
        if self.reference_wall_s > 0.0 {
            self.simulated_events as f64 / self.reference_wall_s
        } else {
            0.0
        }
    }

    /// Event-wheel speedup over the reference (>1 means faster).
    pub fn speedup(&self) -> f64 {
        if self.heap_wall_s > 0.0 {
            self.reference_wall_s / self.heap_wall_s
        } else {
            0.0
        }
    }
}

/// A full throughput measurement: the suite at one scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Scale the clusters ran at.
    pub scale: Scale,
    /// Timing repeats per `(case, scheduler)` pair.
    pub repeats: usize,
    /// Per-configuration measurements, profile-major in [`CORE_COUNTS`]
    /// order.
    pub cases: Vec<ThroughputCase>,
}

/// Records one basic-block-granularity trace per core.
fn record_suite_traces(
    profile: &WorkloadProfile,
    cores: usize,
    instructions: u64,
) -> Vec<RecordedTrace> {
    (0..cores)
        .map(|i| {
            let mut workload = SyntheticWorkload::new(profile, 1_000 + i as u64);
            RecordedTrace::record(&mut workload, instructions).quantize_compute(BLOCK_QUANTUM)
        })
        .collect()
}

fn time_run(traces: &[RecordedTrace], instructions: u64, repeats: usize, reference: bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let sources: Vec<_> = traces.iter().map(|t| t.replay()).collect();
        let wall = if reference {
            let mut cluster =
                ReferenceCluster::new(CoreConfig::baseline(), HierarchyConfig::baseline(), sources);
            let started = Instant::now();
            cluster.run(instructions, &mut PassiveHandler);
            started.elapsed()
        } else {
            let mut cluster =
                Cluster::new(CoreConfig::baseline(), HierarchyConfig::baseline(), sources);
            let started = Instant::now();
            cluster.run(instructions, &mut PassiveHandler);
            started.elapsed()
        };
        best = best.min(wall.as_secs_f64());
    }
    best
}

impl ThroughputReport {
    /// Measures every suite case at `scale`, `repeats` timings per
    /// scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `repeats` is zero.
    pub fn measure(scale: Scale, repeats: usize) -> Self {
        assert!(repeats > 0, "need at least one timing repeat");
        let instructions = scale.instructions();
        let mut cases = Vec::new();
        for (key, profile) in suite() {
            for &cores in &CORE_COUNTS {
                let traces = record_suite_traces(&profile, cores, instructions);
                // The recordings cover >= `instructions` per core and the
                // replay wraps, so event consumption is deterministic and
                // identical across stacks; count one full pass per core.
                let simulated_events = traces.iter().map(|t| t.events().len() as u64).sum();
                let heap_wall_s = time_run(&traces, instructions, repeats, false);
                let reference_wall_s = time_run(&traces, instructions, repeats, true);
                cases.push(ThroughputCase {
                    name: format!("{key}_cores{cores}"),
                    profile: key.to_owned(),
                    cores,
                    simulated_events,
                    heap_wall_s,
                    reference_wall_s,
                });
            }
        }
        ThroughputReport {
            scale,
            repeats,
            cases,
        }
    }

    /// The headline number: geometric mean of the largest-cluster
    /// speedups across the suite (0 when nothing was measured).
    pub fn headline_speedup(&self) -> f64 {
        let largest = self.cases.iter().map(|c| c.cores).max();
        let Some(largest) = largest else { return 0.0 };
        let speedups: Vec<f64> = self
            .cases
            .iter()
            .filter(|c| c.cores == largest && c.speedup() > 0.0)
            .map(|c| c.speedup())
            .collect();
        if speedups.is_empty() {
            return 0.0;
        }
        let log_sum: f64 = speedups.iter().map(|s| s.ln()).sum();
        (log_sum / speedups.len() as f64).exp()
    }

    /// Renders the report as pretty-printed JSON (trailing newline
    /// included); the format `BENCH_4.json` is committed in.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", THROUGHPUT_SCHEMA));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale.name()));
        out.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        out.push_str(&format!("  \"block_quantum\": {},\n", BLOCK_QUANTUM));
        out.push_str(&format!(
            "  \"headline_speedup\": {},\n",
            json_float(self.headline_speedup())
        ));
        out.push_str("  \"cases\": [");
        for (i, case) in self.cases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", case.name));
            out.push_str(&format!("      \"profile\": \"{}\",\n", case.profile));
            out.push_str(&format!("      \"cores\": {},\n", case.cores));
            out.push_str(&format!(
                "      \"simulated_events\": {},\n",
                case.simulated_events
            ));
            out.push_str(&format!(
                "      \"heap_wall_s\": {},\n",
                json_float(case.heap_wall_s)
            ));
            out.push_str(&format!(
                "      \"reference_wall_s\": {},\n",
                json_float(case.reference_wall_s)
            ));
            out.push_str(&format!(
                "      \"heap_events_per_sec\": {},\n",
                json_float(case.heap_events_per_sec())
            ));
            out.push_str(&format!(
                "      \"reference_events_per_sec\": {},\n",
                json_float(case.reference_events_per_sec())
            ));
            out.push_str(&format!(
                "      \"speedup\": {}\n",
                json_float(case.speedup())
            ));
            out.push_str("    }");
        }
        if !self.cases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Extracts `(name, speedup)` pairs from a rendered report — the only
    /// fields the regression gate needs, so the committed baseline stays
    /// readable by this crate without a JSON dependency. The top-level
    /// `headline_speedup` is reported under the name `"headline"`.
    /// Tolerates any field order as long as `"name"` precedes its case's
    /// `"speedup"` (which [`ThroughputReport::to_json`] guarantees).
    pub fn parse_speedups(json: &str) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        let mut name: Option<String> = None;
        for line in json.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("\"headline_speedup\": ") {
                if let Ok(v) = rest.trim_end_matches(',').parse() {
                    out.push(("headline".to_owned(), v));
                }
            } else if let Some(rest) = line.strip_prefix("\"name\": \"") {
                if let Some(end) = rest.find('"') {
                    name = Some(rest[..end].to_owned());
                }
            } else if let Some(rest) = line.strip_prefix("\"speedup\": ") {
                if let (Some(n), Ok(v)) = (name.take(), rest.trim_end_matches(',').parse()) {
                    out.push((n, v));
                }
            }
        }
        out
    }
}

/// Renders a finite float with enough digits for sub-microsecond walls;
/// non-finite values degrade to `0`.
fn json_float(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ThroughputReport {
        ThroughputReport {
            scale: Scale::Smoke,
            repeats: 2,
            cases: vec![
                ThroughputCase {
                    name: "mem_cores1".to_owned(),
                    profile: "mem".to_owned(),
                    cores: 1,
                    simulated_events: 1_000_000,
                    heap_wall_s: 0.5,
                    reference_wall_s: 0.75,
                },
                ThroughputCase {
                    name: "mem_cores16".to_owned(),
                    profile: "mem".to_owned(),
                    cores: 16,
                    simulated_events: 16_000_000,
                    heap_wall_s: 0.25,
                    reference_wall_s: 1.0,
                },
                ThroughputCase {
                    name: "cpu_cores16".to_owned(),
                    profile: "cpu".to_owned(),
                    cores: 16,
                    simulated_events: 4_000_000,
                    heap_wall_s: 0.1,
                    reference_wall_s: 0.9,
                },
            ],
        }
    }

    #[test]
    fn derived_rates_and_speedup() {
        let case = &sample().cases[1];
        assert!((case.speedup() - 4.0).abs() < 1e-12);
        assert!((case.heap_events_per_sec() - 64e6).abs() < 1e-3);
        assert!((case.reference_events_per_sec() - 16e6).abs() < 1e-3);
        let degenerate = ThroughputCase {
            heap_wall_s: 0.0,
            reference_wall_s: 0.0,
            ..case.clone()
        };
        assert_eq!(degenerate.speedup(), 0.0);
        assert_eq!(degenerate.heap_events_per_sec(), 0.0);
        assert_eq!(degenerate.reference_events_per_sec(), 0.0);
    }

    #[test]
    fn headline_is_geomean_of_largest_cluster() {
        let report = sample();
        // 16-core speedups: 4.0 (mem) and 9.0 (cpu); geomean = 6.0.
        assert!((report.headline_speedup() - 6.0).abs() < 1e-9);
        let empty = ThroughputReport {
            cases: Vec::new(),
            ..report
        };
        assert_eq!(empty.headline_speedup(), 0.0);
    }

    #[test]
    fn json_round_trips_through_parse_speedups() {
        let report = sample();
        let json = report.to_json();
        assert!(json.contains("\"schema\": 2"), "{json}");
        assert!(json.contains("\"scale\": \"smoke\""), "{json}");
        assert!(json.contains("\"block_quantum\": 4"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
        let speedups = ThroughputReport::parse_speedups(&json);
        assert_eq!(speedups.len(), 4);
        assert_eq!(speedups[0].0, "headline");
        assert!((speedups[0].1 - 6.0).abs() < 1e-6);
        assert_eq!(speedups[1].0, "mem_cores1");
        assert!((speedups[1].1 - 1.5).abs() < 1e-6);
        assert_eq!(speedups[2].0, "mem_cores16");
        assert!((speedups[2].1 - 4.0).abs() < 1e-6);
        assert_eq!(speedups[3].0, "cpu_cores16");
        assert!((speedups[3].1 - 9.0).abs() < 1e-6);
    }

    #[test]
    fn parse_ignores_garbage() {
        assert!(ThroughputReport::parse_speedups("not json at all").is_empty());
        // A speedup with no preceding name is dropped.
        assert!(ThroughputReport::parse_speedups("\"speedup\": 2.0\n").is_empty());
    }

    #[test]
    fn measure_produces_consistent_cases() {
        // Tiny repeats at smoke scale: this is a correctness test of the
        // harness plumbing, not a benchmark.
        let report = ThroughputReport::measure(Scale::Smoke, 1);
        assert_eq!(report.cases.len(), 3 * CORE_COUNTS.len());
        for case in &report.cases {
            assert_eq!(case.name, format!("{}_cores{}", case.profile, case.cores));
            assert!(case.simulated_events > 0);
            assert!(case.heap_wall_s > 0.0);
            assert!(case.reference_wall_s > 0.0);
        }
        assert!(report.headline_speedup() > 0.0);
    }
}
