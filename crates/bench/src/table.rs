//! Plain-text result tables: the output format of every experiment.

use core::fmt;

/// A rendered experiment result: an id, a caption, a header row and data
/// rows. [`Table::to_text`] produces the aligned form printed by the
/// `experiments` binary; [`Table::to_csv`] the machine-readable one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    id: String,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Starts a table with its experiment id, caption and column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(
        id: impl Into<String>,
        title: impl Into<String>,
        headers: Vec<S>,
    ) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            id: id.into(),
            title: title.into(),
            headers,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The experiment id (e.g. `R-T1`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The caption.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length does not match the header count.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert!(
            row.len() == self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Appends a footnote printed under the table.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Looks up a cell by row index and column header.
    pub fn cell(&self, row: usize, header: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// Renders the aligned text form.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n", self.id, self.title));
        let render = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = *w));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&render(&self.headers, &widths));
        out.push('\n');
        let rule_len = widths
            .iter()
            .map(|w| w + 2)
            .sum::<usize>()
            .saturating_sub(2);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Renders the CSV form (header row first; cells containing commas,
    /// quotes or line breaks are quoted per RFC 4180).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| {
            if cell.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Formats a fraction as a signed percentage (`0.183` → `"+18.3%"`).
pub fn pct(fraction: f64) -> String {
    format!("{:+.1}%", fraction * 100.0)
}

/// Formats a plain ratio with three decimals.
pub fn ratio(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("R-T9", "sample", vec!["name", "value"]);
        t.push_row(vec!["alpha", "1"]);
        t.push_row(vec!["beta", "22"]);
        t.push_note("a note");
        t
    }

    #[test]
    fn text_rendering_aligns() {
        let text = sample().to_text();
        assert!(text.contains("## R-T9 — sample"), "{text}");
        assert!(text.contains("alpha"), "{text}");
        assert!(text.contains("note: a note"), "{text}");
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "alpha,1");
        assert_eq!(lines[2], "beta,22");
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("X", "q", vec!["a"]);
        t.push_row(vec!["hello, world"]);
        assert!(t.to_csv().contains("\"hello, world\""));
    }

    #[test]
    fn csv_quotes_line_breaks() {
        // Regression: a multi-line cell used to escape unquoted and split
        // the row, corrupting the CSV structure.
        let mut t = Table::new("X", "q", vec!["a", "b"]);
        t.push_row(vec!["multi\nline", "cr\rcell"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"multi\nline\""), "{csv}");
        assert!(csv.contains("\"cr\rcell\""), "{csv}");
        // Unquoted parsing would see three records; quoted sees two
        // (header + one row): count record boundaries outside quotes.
        let mut records = 1;
        let mut in_quotes = false;
        for c in csv.trim_end().chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                '\n' if !in_quotes => records += 1,
                _ => {}
            }
        }
        assert_eq!(records, 2, "{csv}");
    }

    #[test]
    fn cell_lookup() {
        let t = sample();
        assert_eq!(t.cell(1, "value"), Some("22"));
        assert_eq!(t.cell(1, "missing"), None);
        assert_eq!(t.cell(9, "value"), None);
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("X", "t", vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.183), "+18.3%");
        assert_eq!(pct(-0.02), "-2.0%");
        assert_eq!(ratio(0.98765), "0.988");
    }
}
