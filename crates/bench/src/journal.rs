//! Crash-safe completion journals for long campaigns.
//!
//! `experiments --journal FILE` and `mapg-fuzz --journal FILE` append
//! one [`JournalEntry`] per *completed* job (experiment or fuzz
//! scenario). Every append rewrites the whole journal through
//! [`mapg::write_atomic`] (staged `*.tmp` + fsync + rename), so a
//! crash — including SIGKILL — at any instant leaves either the
//! previous journal or the new one at the final path, never a
//! truncated JSON. A stale partial `*.tmp` from a killed writer is
//! ignored (and overwritten) on resume.
//!
//! `--resume FILE` replays the journal instead of the work: a
//! digest-verified entry's payload (the rendered CSV, or a repro JSON)
//! is emitted verbatim, so the resumed run's CSV/manifest/repro
//! outputs are byte-identical to an uninterrupted run and no completed
//! job is re-executed.
//!
//! ```json
//! {
//!   "schema": 1,
//!   "context": "experiments scale=smoke csv ids=R-T1,R-F5",
//!   "entries": [
//!     {
//!       "kind": "experiment", "id": "R-T1", "seed": 0,
//!       "digest": 1234567890, "outcome": "ok", "attempts": 1,
//!       "wall_ms": 12.345, "payload": "...",
//!       "tables": [{"id": "R-T1", "rows": 7}]
//!     }
//!   ]
//! }
//! ```
//!
//! The `context` string pins what the journal belongs to (driver,
//! scale, selection, seed); resuming with a different configuration is
//! rejected instead of silently mixing incompatible runs. Entry order
//! is completion order (nondeterministic under parallelism) — readers
//! index by `(kind, id)` and re-emit in their own deterministic order.

use std::path::{Path, PathBuf};

use mapg::fuzz::{parse_json, write_json, JsonValue};

use crate::manifest::TableSummary;

/// Journal file schema version.
pub const JOURNAL_SCHEMA: u32 = 1;

/// One completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Job kind: `"experiment"` or `"scenario"`.
    pub kind: String,
    /// Job id: an experiment id (`R-T1`) or a scenario index.
    pub id: String,
    /// Seed the job ran under (0 when not applicable).
    pub seed: u64,
    /// FNV-1a digest of `payload` — verified on resume; a mismatch
    /// (corruption) re-runs the job instead of trusting the entry.
    pub digest: u64,
    /// Outcome label (`ok`; failed jobs are never journaled — they
    /// re-run on resume).
    pub outcome: String,
    /// Attempts the job took (retries included).
    pub attempts: u32,
    /// Wall time of the original execution, in milliseconds. Kept for
    /// observability only; deterministic outputs never include it.
    pub wall_ms: f64,
    /// The job's replayable output: the rendered CSV of an experiment,
    /// a repro JSON for a fuzz finding, or empty for a clean scenario.
    pub payload: String,
    /// Table summaries (experiments only; empty otherwise).
    pub tables: Vec<TableSummary>,
}

impl JournalEntry {
    /// Builds an entry, computing the payload digest.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: impl Into<String>,
        id: impl Into<String>,
        seed: u64,
        attempts: u32,
        wall_ms: f64,
        payload: impl Into<String>,
        tables: Vec<TableSummary>,
    ) -> Self {
        let payload = payload.into();
        JournalEntry {
            kind: kind.into(),
            id: id.into(),
            seed,
            digest: fnv1a64(payload.as_bytes()),
            outcome: "ok".to_owned(),
            attempts,
            wall_ms,
            payload,
            tables,
        }
    }

    /// True when the stored digest matches the payload (entry is
    /// trustworthy to replay).
    pub fn digest_ok(&self) -> bool {
        self.digest == fnv1a64(self.payload.as_bytes())
    }
}

/// A crash-safe completion journal bound to one file and one run
/// configuration.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    context: String,
    entries: Vec<JournalEntry>,
}

impl Journal {
    /// Opens the journal at `path` for the run described by `context`.
    ///
    /// A missing file starts an empty journal. An existing file is
    /// parsed and validated: its context must equal `context` (a
    /// journal from a different configuration is an error, not a
    /// silent skip-list). A sibling `*.tmp` left by a crashed writer
    /// is ignored.
    ///
    /// # Errors
    ///
    /// Returns a message when the file exists but is unreadable,
    /// malformed, a different schema, or from a different context.
    pub fn open(path: impl Into<PathBuf>, context: impl Into<String>) -> Result<Journal, String> {
        let path = path.into();
        let context = context.into();
        if !path.exists() {
            return Ok(Journal {
                path,
                context,
                entries: Vec::new(),
            });
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read journal '{}': {e}", path.display()))?;
        let journal = Journal::from_json_text(&path, &text)?;
        if journal.context != context {
            return Err(format!(
                "journal '{}' was written by a different run configuration\n  journal: {}\n  this run: {context}",
                path.display(),
                journal.context
            ));
        }
        Ok(journal)
    }

    /// The run-configuration string this journal is bound to.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// All entries, in completion order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// The digest-verified entry for `(kind, id)`, if completed.
    /// Corrupted entries (digest mismatch) are treated as absent so the
    /// job re-runs.
    pub fn completed(&self, kind: &str, id: &str) -> Option<&JournalEntry> {
        self.entries
            .iter()
            .find(|e| e.kind == kind && e.id == id && e.digest_ok())
    }

    /// Appends `entry` and atomically rewrites the journal file.
    ///
    /// # Errors
    ///
    /// Returns a message when the write fails; the in-memory entry is
    /// kept either way (the caller decides whether a journal write
    /// failure is fatal).
    pub fn append(&mut self, entry: JournalEntry) -> Result<(), String> {
        self.entries.push(entry);
        mapg::write_atomic(&self.path, self.to_json_text().as_bytes())
            .map_err(|e| format!("cannot write journal '{}': {e}", self.path.display()))
    }

    /// Renders the journal as JSON (trailing newline included).
    pub fn to_json_text(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let tables = e
                    .tables
                    .iter()
                    .map(|t| {
                        JsonValue::Object(vec![
                            ("id".into(), JsonValue::String(t.id.clone())),
                            ("rows".into(), JsonValue::Number(t.rows.to_string())),
                        ])
                    })
                    .collect();
                JsonValue::Object(vec![
                    ("kind".into(), JsonValue::String(e.kind.clone())),
                    ("id".into(), JsonValue::String(e.id.clone())),
                    ("seed".into(), JsonValue::Number(e.seed.to_string())),
                    ("digest".into(), JsonValue::Number(e.digest.to_string())),
                    ("outcome".into(), JsonValue::String(e.outcome.clone())),
                    ("attempts".into(), JsonValue::Number(e.attempts.to_string())),
                    (
                        "wall_ms".into(),
                        JsonValue::Number(format!("{:.3}", e.wall_ms.max(0.0))),
                    ),
                    ("payload".into(), JsonValue::String(e.payload.clone())),
                    ("tables".into(), JsonValue::Array(tables)),
                ])
            })
            .collect();
        let doc = JsonValue::Object(vec![
            (
                "schema".into(),
                JsonValue::Number(JOURNAL_SCHEMA.to_string()),
            ),
            ("context".into(), JsonValue::String(self.context.clone())),
            ("entries".into(), JsonValue::Array(entries)),
        ]);
        let mut text = write_json(&doc);
        text.push('\n');
        text
    }

    /// Parses a journal document.
    fn from_json_text(path: &Path, text: &str) -> Result<Journal, String> {
        let fail = |what: &str| format!("journal '{}': {what}", path.display());
        let doc = parse_json(text).map_err(|e| fail(&format!("malformed JSON ({e})")))?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_u32)
            .ok_or_else(|| fail("missing schema"))?;
        if schema != JOURNAL_SCHEMA {
            return Err(fail(&format!(
                "unsupported schema {schema} (this build reads {JOURNAL_SCHEMA})"
            )));
        }
        let context = doc
            .get("context")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| fail("missing context"))?
            .to_owned();
        let entries = match doc.get("entries") {
            Some(JsonValue::Array(items)) => items,
            _ => return Err(fail("missing entries array")),
        };
        let mut parsed = Vec::with_capacity(entries.len());
        for (i, item) in entries.iter().enumerate() {
            let field =
                |name: &str| fail(&format!("entry {i}: field '{name}' missing or mistyped"));
            let get_str = |name: &str| {
                item.get(name)
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| field(name))
            };
            let get_u64 = |name: &str| {
                item.get(name)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| field(name))
            };
            let wall_ms = item
                .get("wall_ms")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| field("wall_ms"))?;
            let mut tables = Vec::new();
            if let Some(JsonValue::Array(summaries)) = item.get("tables") {
                for summary in summaries {
                    tables.push(TableSummary {
                        id: summary
                            .get("id")
                            .and_then(JsonValue::as_str)
                            .ok_or_else(|| field("tables.id"))?
                            .to_owned(),
                        rows: summary
                            .get("rows")
                            .and_then(JsonValue::as_u64)
                            .ok_or_else(|| field("tables.rows"))?
                            as usize,
                    });
                }
            } else {
                return Err(field("tables"));
            }
            parsed.push(JournalEntry {
                kind: get_str("kind")?,
                id: get_str("id")?,
                seed: get_u64("seed")?,
                digest: get_u64("digest")?,
                outcome: get_str("outcome")?,
                attempts: get_u64("attempts")? as u32,
                wall_ms,
                payload: get_str("payload")?,
                tables,
            });
        }
        Ok(Journal {
            path: path.to_owned(),
            context,
            entries: parsed,
        })
    }
}

/// 64-bit FNV-1a over `bytes` — the journal's payload digest.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mapg-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn entry(id: &str, payload: &str) -> JournalEntry {
        JournalEntry::new(
            "experiment",
            id,
            0,
            1,
            3.25,
            payload,
            vec![TableSummary {
                id: id.to_owned(),
                rows: 2,
            }],
        )
    }

    #[test]
    fn appends_persist_and_reload() {
        let path = temp_path("roundtrip.json");
        std::fs::remove_file(&path).ok();
        let mut journal = Journal::open(&path, "test ctx").unwrap();
        journal.append(entry("R-T1", "a,b\n1,2\n")).unwrap();
        journal.append(entry("R-F5", "c\n3\n")).unwrap();

        let back = Journal::open(&path, "test ctx").unwrap();
        assert_eq!(back.entries(), journal.entries());
        assert_eq!(
            back.completed("experiment", "R-T1").unwrap().payload,
            "a,b\n1,2\n"
        );
        assert!(back.completed("experiment", "R-T9").is_none());
        assert!(back.completed("scenario", "R-T1").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_context_is_rejected() {
        let path = temp_path("context.json");
        std::fs::remove_file(&path).ok();
        let mut journal = Journal::open(&path, "scale=smoke").unwrap();
        journal.append(entry("R-T1", "x")).unwrap();
        let err = Journal::open(&path, "scale=paper").unwrap_err();
        assert!(err.contains("different run configuration"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    /// A partial `*.tmp` left by a killed writer must not affect the
    /// journal: the real file still loads, and the next append
    /// replaces the temp.
    #[test]
    fn partial_tmp_file_is_ignored_on_resume() {
        let path = temp_path("partial.json");
        std::fs::remove_file(&path).ok();
        let mut journal = Journal::open(&path, "ctx").unwrap();
        journal.append(entry("R-T1", "payload")).unwrap();
        // Simulate a crash mid-write of the *next* append.
        std::fs::write(
            mapg::fsutil::tmp_path(&path),
            b"{\"schema\": 1, \"context\": \"ctx\", \"entries\": [{\"kind\": \"exp",
        )
        .unwrap();

        let back = Journal::open(&path, "ctx").unwrap();
        assert_eq!(back.entries().len(), 1, "tmp garbage must be invisible");
        let mut back = back;
        back.append(entry("R-F5", "more")).unwrap();
        assert!(!mapg::fsutil::tmp_path(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_digest_reads_as_not_completed() {
        let path = temp_path("digest.json");
        std::fs::remove_file(&path).ok();
        let mut journal = Journal::open(&path, "ctx").unwrap();
        let mut bad = entry("R-T1", "payload");
        bad.digest ^= 0xFF;
        journal.append(bad).unwrap();
        let back = Journal::open(&path, "ctx").unwrap();
        assert!(
            back.completed("experiment", "R-T1").is_none(),
            "corrupted entry must re-run, not replay"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let path = temp_path("never-written.json");
        std::fs::remove_file(&path).ok();
        let journal = Journal::open(&path, "ctx").unwrap();
        assert!(journal.entries().is_empty());
        assert!(!path.exists(), "open must not create the file");
    }

    #[test]
    fn truncated_journal_is_a_clean_error() {
        let path = temp_path("truncated.json");
        std::fs::write(&path, "{\"schema\": 1, \"context\": \"ctx\", \"ent").unwrap();
        let err = Journal::open(&path, "ctx").unwrap_err();
        assert!(err.contains("malformed JSON"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payloads_with_newlines_and_quotes_round_trip() {
        let path = temp_path("escaping.json");
        std::fs::remove_file(&path).ok();
        let payload = "id,\"quoted\"\nline2\r\n\ttabbed";
        let mut journal = Journal::open(&path, "ctx").unwrap();
        journal.append(entry("R-T1", payload)).unwrap();
        let back = Journal::open(&path, "ctx").unwrap();
        assert_eq!(
            back.completed("experiment", "R-T1").unwrap().payload,
            payload
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
