//! Crash-safe completion journals for long campaigns.
//!
//! `experiments --journal FILE` and `mapg-fuzz --journal FILE` append
//! one [`JournalEntry`] per *completed* job (experiment or fuzz
//! scenario). Every append rewrites the whole journal through
//! [`mapg::write_atomic`] (staged `*.tmp` + fsync + rename), so a
//! crash — including SIGKILL — at any instant leaves either the
//! previous journal or the new one at the final path, never a
//! truncated JSON. A stale partial `*.tmp` from a killed writer is
//! ignored (and left for the next atomic rename) on resume.
//!
//! `--resume FILE` replays the journal instead of the work: a
//! digest-verified entry's payload (the rendered CSV, or a repro JSON)
//! is emitted verbatim, so the resumed run's CSV/manifest/repro
//! outputs are byte-identical to an uninterrupted run and no completed
//! job is re-executed.
//!
//! ```json
//! {
//!   "schema": 1,
//!   "context": "experiments scale=smoke csv ids=R-T1,R-F5",
//!   "entries": [
//!     {
//!       "kind": "experiment", "id": "R-T1", "seed": 0,
//!       "digest": 1234567890, "outcome": "ok", "attempts": 1,
//!       "wall_ms": 12.345, "payload": "...",
//!       "tables": [{"id": "R-T1", "rows": 7}]
//!     }
//!   ]
//! }
//! ```
//!
//! The `context` string pins what the journal belongs to (driver,
//! scale, selection, seed); resuming with a different configuration is
//! rejected instead of silently mixing incompatible runs. Entry order
//! is completion order (nondeterministic under parallelism) — readers
//! index by `(kind, id)` and re-emit in their own deterministic order.
//!
//! # Cross-process exclusivity
//!
//! Whole-file rewrites are atomic per append but not serialized across
//! *processes*: two resumers of the same file would interleave rewrites
//! and silently lose each other's completions. [`Journal::open`]
//! therefore takes an advisory lock — a sibling `<journal>.lock`
//! sentinel created with `create_new` and holding the owner's pid —
//! released when the `Journal` drops. A sentinel naming a dead pid
//! (the holder crashed or was SIGKILLed) is taken over; a live holder
//! yields the typed [`JournalError::Held`].

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use mapg::fuzz::{parse_json, write_json, JsonValue};

use crate::manifest::TableSummary;

/// Journal file schema version.
pub const JOURNAL_SCHEMA: u32 = 1;

/// Why a journal could not be opened, locked, read, or written.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// The journal's advisory lock is held by a live process.
    Held {
        /// The journal path that is locked.
        path: PathBuf,
        /// Pid of the holder; 0 when the sentinel exists but its
        /// holder could not be read.
        pid: u32,
    },
    /// An underlying I/O failure (reading or writing the journal, or
    /// creating its lock sentinel).
    Io {
        /// The journal path the operation targeted.
        path: PathBuf,
        /// What failed, including the OS error.
        detail: String,
    },
    /// The file exists but is not a valid journal document.
    Malformed {
        /// The journal path that failed to parse.
        path: PathBuf,
        /// What is wrong with the document.
        detail: String,
    },
    /// The journal was written under a different run configuration.
    ContextMismatch {
        /// The journal path.
        path: PathBuf,
        /// The context string stored in the journal.
        journal: String,
        /// The context string of the run trying to open it.
        run: String,
    },
    /// The journal was written by a different schema version.
    UnsupportedSchema {
        /// The journal path.
        path: PathBuf,
        /// The schema version found in the file.
        schema: u32,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Held { path, pid: 0 } => write!(
                f,
                "journal '{}' is locked by another process (holder unknown); \
                 remove '{}' if no other run is active",
                path.display(),
                lock_path(path).display()
            ),
            JournalError::Held { path, pid } => write!(
                f,
                "journal '{}' is locked by another process (pid {pid}); \
                 wait for it to finish or use a different --journal",
                path.display()
            ),
            JournalError::Io { path, detail } | JournalError::Malformed { path, detail } => {
                write!(f, "journal '{}': {detail}", path.display())
            }
            JournalError::ContextMismatch { path, journal, run } => write!(
                f,
                "journal '{}' was written by a different run configuration\n  journal: {journal}\n  this run: {run}",
                path.display()
            ),
            JournalError::UnsupportedSchema { path, schema } => write!(
                f,
                "journal '{}': unsupported schema {schema} (this build reads {JOURNAL_SCHEMA})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// Sibling lock-sentinel path for `journal`: `<journal>.lock`.
fn lock_path(journal: &Path) -> PathBuf {
    let mut name = journal
        .file_name()
        .map(|n| n.to_owned())
        .unwrap_or_default();
    name.push(".lock");
    journal.with_file_name(name)
}

/// True when `pid` names a live process. Checked via `/proc`; on hosts
/// without procfs the holder is conservatively assumed alive (no
/// stale-lock takeover, only an explicit sentinel removal unblocks).
/// A zombie (state `Z` in `/proc/<pid>/stat` — SIGKILLed but not yet
/// reaped, e.g. a daemon whose launching shell already exited) counts
/// as dead: it can never release the lock.
fn pid_alive(pid: u32) -> bool {
    if !Path::new("/proc").is_dir() {
        return true;
    }
    match std::fs::read_to_string(format!("/proc/{pid}/stat")) {
        // State is the field after the parenthesized comm (which may
        // itself contain spaces and parens — scan from the *last* `)`).
        Ok(stat) => !matches!(
            stat[stat.rfind(')').map_or(0, |i| i + 1)..]
                .split_whitespace()
                .next(),
            Some("Z") | Some("X")
        ),
        Err(_) => false,
    }
}

/// RAII advisory lock on a journal path (see the module docs).
#[derive(Debug)]
struct JournalLock {
    path: PathBuf,
}

impl JournalLock {
    const ATTEMPTS: u32 = 5;

    fn acquire(journal: &Path) -> Result<JournalLock, JournalError> {
        let path = lock_path(journal);
        // Each failed create either reports a live holder (typed
        // error), removes a stale sentinel and retries, or grants an
        // unreadable sentinel a grace period (its creator may be
        // between create_new and the pid write).
        for attempt in 1..=Self::ATTEMPTS {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    let _ = file.write_all(format!("{}\n", std::process::id()).as_bytes());
                    let _ = file.sync_all();
                    return Ok(JournalLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if pid != std::process::id() && !pid_alive(pid) => {
                            // Holder is gone (crashed / SIGKILLed): take
                            // over. Another contender may win the next
                            // create_new — the loop just re-checks.
                            let _ = std::fs::remove_file(&path);
                        }
                        Some(pid) => {
                            return Err(JournalError::Held {
                                path: journal.to_owned(),
                                pid,
                            });
                        }
                        None if attempt < Self::ATTEMPTS => {
                            std::thread::sleep(std::time::Duration::from_millis(10));
                        }
                        None => {
                            return Err(JournalError::Held {
                                path: journal.to_owned(),
                                pid: 0,
                            });
                        }
                    }
                }
                Err(e) => {
                    return Err(JournalError::Io {
                        path: journal.to_owned(),
                        detail: format!("cannot create lock file '{}': {e}", path.display()),
                    });
                }
            }
        }
        Err(JournalError::Held {
            path: journal.to_owned(),
            pid: 0,
        })
    }
}

impl Drop for JournalLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// One completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Job kind: `"experiment"` or `"scenario"`.
    pub kind: String,
    /// Job id: an experiment id (`R-T1`) or a scenario index.
    pub id: String,
    /// Seed the job ran under (0 when not applicable).
    pub seed: u64,
    /// FNV-1a digest of `payload` — verified on resume; a mismatch
    /// (corruption) re-runs the job instead of trusting the entry.
    pub digest: u64,
    /// Outcome label (`ok`; failed jobs are never journaled — they
    /// re-run on resume).
    pub outcome: String,
    /// Attempts the job took (retries included).
    pub attempts: u32,
    /// Wall time of the original execution, in milliseconds. Kept for
    /// observability only; deterministic outputs never include it.
    pub wall_ms: f64,
    /// The job's replayable output: the rendered CSV of an experiment,
    /// a repro JSON for a fuzz finding, or empty for a clean scenario.
    pub payload: String,
    /// Table summaries (experiments only; empty otherwise).
    pub tables: Vec<TableSummary>,
}

impl JournalEntry {
    /// Builds an entry, computing the payload digest.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: impl Into<String>,
        id: impl Into<String>,
        seed: u64,
        attempts: u32,
        wall_ms: f64,
        payload: impl Into<String>,
        tables: Vec<TableSummary>,
    ) -> Self {
        let payload = payload.into();
        JournalEntry {
            kind: kind.into(),
            id: id.into(),
            seed,
            digest: fnv1a64(payload.as_bytes()),
            outcome: "ok".to_owned(),
            attempts,
            wall_ms,
            payload,
            tables,
        }
    }

    /// True when the stored digest matches the payload (entry is
    /// trustworthy to replay).
    pub fn digest_ok(&self) -> bool {
        self.digest == fnv1a64(self.payload.as_bytes())
    }
}

/// A crash-safe completion journal bound to one file and one run
/// configuration. Holds the advisory cross-process lock for its whole
/// lifetime; dropping the journal releases it.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    context: String,
    entries: Vec<JournalEntry>,
    _lock: JournalLock,
}

impl Journal {
    /// Opens the journal at `path` for the run described by `context`,
    /// taking the advisory `<path>.lock` sentinel.
    ///
    /// A missing file starts an empty journal. An existing file is
    /// parsed and validated: its context must equal `context` (a
    /// journal from a different configuration is an error, not a
    /// silent skip-list). A sibling `*.tmp` left by a crashed writer
    /// is ignored, and that writer's stale lock sentinel is taken over.
    ///
    /// # Errors
    ///
    /// [`JournalError::Held`] when another live process holds the
    /// journal; otherwise the typed read/parse/validation errors.
    pub fn open(
        path: impl Into<PathBuf>,
        context: impl Into<String>,
    ) -> Result<Journal, JournalError> {
        let path = path.into();
        let context = context.into();
        let lock = JournalLock::acquire(&path)?;
        if !path.exists() {
            return Ok(Journal {
                path,
                context,
                entries: Vec::new(),
                _lock: lock,
            });
        }
        let text = std::fs::read_to_string(&path).map_err(|e| JournalError::Io {
            path: path.clone(),
            detail: format!("cannot read: {e}"),
        })?;
        let (stored_context, entries) = Journal::parse_document(&path, &text)?;
        if stored_context != context {
            return Err(JournalError::ContextMismatch {
                path,
                journal: stored_context,
                run: context,
            });
        }
        Ok(Journal {
            path,
            context,
            entries,
            _lock: lock,
        })
    }

    /// The run-configuration string this journal is bound to.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// All entries, in completion order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// The digest-verified entry for `(kind, id)`, if completed.
    /// Corrupted entries (digest mismatch) are treated as absent so the
    /// job re-runs.
    pub fn completed(&self, kind: &str, id: &str) -> Option<&JournalEntry> {
        self.entries
            .iter()
            .find(|e| e.kind == kind && e.id == id && e.digest_ok())
    }

    /// Appends `entry` and atomically rewrites the journal file.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the write fails; the in-memory entry
    /// is kept either way (the caller decides whether a journal write
    /// failure is fatal).
    pub fn append(&mut self, entry: JournalEntry) -> Result<(), JournalError> {
        self.entries.push(entry);
        mapg::write_atomic(&self.path, self.to_json_text().as_bytes()).map_err(|e| {
            JournalError::Io {
                path: self.path.clone(),
                detail: format!("cannot write: {e}"),
            }
        })
    }

    /// Renders the journal as JSON (trailing newline included).
    pub fn to_json_text(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let tables = e
                    .tables
                    .iter()
                    .map(|t| {
                        JsonValue::Object(vec![
                            ("id".into(), JsonValue::String(t.id.clone())),
                            ("rows".into(), JsonValue::Number(t.rows.to_string())),
                        ])
                    })
                    .collect();
                JsonValue::Object(vec![
                    ("kind".into(), JsonValue::String(e.kind.clone())),
                    ("id".into(), JsonValue::String(e.id.clone())),
                    ("seed".into(), JsonValue::Number(e.seed.to_string())),
                    ("digest".into(), JsonValue::Number(e.digest.to_string())),
                    ("outcome".into(), JsonValue::String(e.outcome.clone())),
                    ("attempts".into(), JsonValue::Number(e.attempts.to_string())),
                    (
                        "wall_ms".into(),
                        JsonValue::Number(format!("{:.3}", e.wall_ms.max(0.0))),
                    ),
                    ("payload".into(), JsonValue::String(e.payload.clone())),
                    ("tables".into(), JsonValue::Array(tables)),
                ])
            })
            .collect();
        let doc = JsonValue::Object(vec![
            (
                "schema".into(),
                JsonValue::Number(JOURNAL_SCHEMA.to_string()),
            ),
            ("context".into(), JsonValue::String(self.context.clone())),
            ("entries".into(), JsonValue::Array(entries)),
        ]);
        let mut text = write_json(&doc);
        text.push('\n');
        text
    }

    /// Parses a journal document into its `(context, entries)`.
    fn parse_document(
        path: &Path,
        text: &str,
    ) -> Result<(String, Vec<JournalEntry>), JournalError> {
        let fail = |what: String| JournalError::Malformed {
            path: path.to_owned(),
            detail: what,
        };
        let doc = parse_json(text).map_err(|e| fail(format!("malformed JSON ({e})")))?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_u32)
            .ok_or_else(|| fail("missing schema".into()))?;
        if schema != JOURNAL_SCHEMA {
            return Err(JournalError::UnsupportedSchema {
                path: path.to_owned(),
                schema,
            });
        }
        let context = doc
            .get("context")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| fail("missing context".into()))?
            .to_owned();
        let entries = match doc.get("entries") {
            Some(JsonValue::Array(items)) => items,
            _ => return Err(fail("missing entries array".into())),
        };
        let mut parsed = Vec::with_capacity(entries.len());
        for (i, item) in entries.iter().enumerate() {
            let field = |name: &str| fail(format!("entry {i}: field '{name}' missing or mistyped"));
            let get_str = |name: &str| {
                item.get(name)
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| field(name))
            };
            let get_u64 = |name: &str| {
                item.get(name)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| field(name))
            };
            let wall_ms = item
                .get("wall_ms")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| field("wall_ms"))?;
            let mut tables = Vec::new();
            if let Some(JsonValue::Array(summaries)) = item.get("tables") {
                for summary in summaries {
                    tables.push(TableSummary {
                        id: summary
                            .get("id")
                            .and_then(JsonValue::as_str)
                            .ok_or_else(|| field("tables.id"))?
                            .to_owned(),
                        rows: summary
                            .get("rows")
                            .and_then(JsonValue::as_u64)
                            .ok_or_else(|| field("tables.rows"))?
                            as usize,
                    });
                }
            } else {
                return Err(field("tables"));
            }
            parsed.push(JournalEntry {
                kind: get_str("kind")?,
                id: get_str("id")?,
                seed: get_u64("seed")?,
                digest: get_u64("digest")?,
                outcome: get_str("outcome")?,
                attempts: get_u64("attempts")? as u32,
                wall_ms,
                payload: get_str("payload")?,
                tables,
            });
        }
        Ok((context, parsed))
    }
}

/// 64-bit FNV-1a over `bytes` — the journal's payload digest.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mapg-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(lock_path(&path)).ok();
        path
    }

    fn entry(id: &str, payload: &str) -> JournalEntry {
        JournalEntry::new(
            "experiment",
            id,
            0,
            1,
            3.25,
            payload,
            vec![TableSummary {
                id: id.to_owned(),
                rows: 2,
            }],
        )
    }

    #[test]
    fn appends_persist_and_reload() {
        let path = temp_path("roundtrip.json");
        let mut journal = Journal::open(&path, "test ctx").unwrap();
        journal.append(entry("R-T1", "a,b\n1,2\n")).unwrap();
        journal.append(entry("R-F5", "c\n3\n")).unwrap();
        let written = journal.entries().to_vec();
        drop(journal);

        let back = Journal::open(&path, "test ctx").unwrap();
        assert_eq!(back.entries(), written.as_slice());
        assert_eq!(
            back.completed("experiment", "R-T1").unwrap().payload,
            "a,b\n1,2\n"
        );
        assert!(back.completed("experiment", "R-T9").is_none());
        assert!(back.completed("scenario", "R-T1").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_context_is_rejected() {
        let path = temp_path("context.json");
        let mut journal = Journal::open(&path, "scale=smoke").unwrap();
        journal.append(entry("R-T1", "x")).unwrap();
        drop(journal);
        let err = Journal::open(&path, "scale=paper").unwrap_err();
        assert!(
            matches!(err, JournalError::ContextMismatch { .. }),
            "{err:?}"
        );
        assert!(
            err.to_string().contains("different run configuration"),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    /// A partial `*.tmp` left by a killed writer must not affect the
    /// journal: the real file still loads, appends still land, and the
    /// stray is recognizable by name so directory scans can skip it.
    #[test]
    fn partial_tmp_file_is_ignored_on_resume() {
        let path = temp_path("partial.json");
        let mut journal = Journal::open(&path, "ctx").unwrap();
        journal.append(entry("R-T1", "payload")).unwrap();
        drop(journal);
        // Simulate a crash mid-write of the *next* append.
        let stale = path.with_file_name(format!("partial.json.{}.999999.tmp", std::process::id()));
        std::fs::write(
            &stale,
            b"{\"schema\": 1, \"context\": \"ctx\", \"entries\": [{\"kind\": \"exp",
        )
        .unwrap();

        let mut back = Journal::open(&path, "ctx").unwrap();
        assert_eq!(back.entries().len(), 1, "tmp garbage must be invisible");
        back.append(entry("R-F5", "more")).unwrap();
        drop(back);
        assert_eq!(Journal::open(&path, "ctx").unwrap().entries().len(), 2);
        assert!(mapg::fsutil::is_tmp_name(
            stale.file_name().unwrap().to_str().unwrap()
        ));
        std::fs::remove_file(&stale).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_digest_reads_as_not_completed() {
        let path = temp_path("digest.json");
        let mut journal = Journal::open(&path, "ctx").unwrap();
        let mut bad = entry("R-T1", "payload");
        bad.digest ^= 0xFF;
        journal.append(bad).unwrap();
        drop(journal);
        let back = Journal::open(&path, "ctx").unwrap();
        assert!(
            back.completed("experiment", "R-T1").is_none(),
            "corrupted entry must re-run, not replay"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let path = temp_path("never-written.json");
        let journal = Journal::open(&path, "ctx").unwrap();
        assert!(journal.entries().is_empty());
        assert!(!path.exists(), "open must not create the journal file");
    }

    #[test]
    fn truncated_journal_is_a_clean_error() {
        let path = temp_path("truncated.json");
        std::fs::write(&path, "{\"schema\": 1, \"context\": \"ctx\", \"ent").unwrap();
        let err = Journal::open(&path, "ctx").unwrap_err();
        assert!(matches!(err, JournalError::Malformed { .. }), "{err:?}");
        assert!(err.to_string().contains("malformed JSON"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsupported_schema_is_a_typed_error() {
        let path = temp_path("schema.json");
        std::fs::write(
            &path,
            "{\"schema\": 99, \"context\": \"ctx\", \"entries\": []}",
        )
        .unwrap();
        let err = Journal::open(&path, "ctx").unwrap_err();
        assert_eq!(
            err,
            JournalError::UnsupportedSchema {
                path: path.clone(),
                schema: 99
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payloads_with_newlines_and_quotes_round_trip() {
        let path = temp_path("escaping.json");
        let payload = "id,\"quoted\"\nline2\r\n\ttabbed";
        let mut journal = Journal::open(&path, "ctx").unwrap();
        journal.append(entry("R-T1", payload)).unwrap();
        drop(journal);
        let back = Journal::open(&path, "ctx").unwrap();
        assert_eq!(
            back.completed("experiment", "R-T1").unwrap().payload,
            payload
        );
        std::fs::remove_file(&path).ok();
    }

    /// The advisory lock makes a second open fail with the typed
    /// `Held` error while the first journal is alive, and succeed once
    /// it drops (sentinel removed with it).
    #[test]
    fn second_open_while_held_is_a_typed_error() {
        let path = temp_path("held.json");
        let journal = Journal::open(&path, "ctx").unwrap();
        assert!(lock_path(&path).exists(), "open must create the sentinel");
        let err = Journal::open(&path, "ctx").unwrap_err();
        assert_eq!(
            err,
            JournalError::Held {
                path: path.clone(),
                pid: std::process::id()
            },
            "a live holder (this process) must be reported, not taken over"
        );
        assert!(err.to_string().contains("locked by another process"));
        drop(journal);
        assert!(
            !lock_path(&path).exists(),
            "drop must remove the lock sentinel"
        );
        let reopened = Journal::open(&path, "ctx");
        assert!(reopened.is_ok(), "{reopened:?}");
    }

    /// A sentinel naming a dead pid — the holder crashed or was
    /// SIGKILLed — must be taken over instead of blocking forever.
    #[test]
    fn stale_lock_from_dead_pid_is_taken_over() {
        if !Path::new("/proc").is_dir() {
            return; // liveness is unknowable without procfs — no takeover
        }
        let dead = (3_999_000..4_000_000)
            .rev()
            .find(|&pid| !pid_alive(pid))
            .expect("some pid in range is dead");
        let path = temp_path("stale-lock.json");
        std::fs::write(lock_path(&path), format!("{dead}\n")).unwrap();
        let mut journal = Journal::open(&path, "ctx").expect("stale lock must be taken over");
        journal.append(entry("R-T1", "x")).unwrap();
        let held = std::fs::read_to_string(lock_path(&path)).unwrap();
        assert_eq!(
            held.trim(),
            std::process::id().to_string(),
            "takeover must re-stamp the sentinel with the new holder"
        );
        drop(journal);
        std::fs::remove_file(&path).ok();
    }

    /// A sentinel with no readable pid cannot prove its holder is dead:
    /// after a grace period it is reported as held (pid 0), never
    /// silently stolen.
    #[test]
    fn unreadable_sentinel_is_reported_held() {
        let path = temp_path("anon-lock.json");
        std::fs::write(lock_path(&path), b"").unwrap();
        let err = Journal::open(&path, "ctx").unwrap_err();
        assert_eq!(
            err,
            JournalError::Held {
                path: path.clone(),
                pid: 0
            }
        );
        assert!(err.to_string().contains(".lock"), "{err}");
        std::fs::remove_file(lock_path(&path)).ok();
    }

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
