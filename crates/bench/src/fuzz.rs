//! The differential fuzz campaign driver.
//!
//! Couples the `mapg::fuzz` primitives (scenario generation, the
//! live-vs-reference differ, shrinking, repro files) with the work-
//! sharing pool: scenarios fan out across workers, results come back in
//! index order, and the whole campaign is a pure function of
//! `(campaign seed, scenario count, shrink budget)` — job count only
//! changes wall-clock time.

use mapg::fuzz::{run_scenario, shrink, FindingClass, ReproFile, Scenario, ShrinkOutcome};
use mapg_pool::Pool;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed for the scenario stream.
    pub seed: u64,
    /// Scenarios to generate and run.
    pub scenarios: u64,
    /// Shrink budget per finding (candidate evaluations; each costs one
    /// live+reference pair).
    pub shrink_budget: u64,
    /// Worker threads.
    pub jobs: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0x4D41_5047, // "MAPG"
            scenarios: 200,
            shrink_budget: 150,
            jobs: mapg_pool::default_jobs(),
        }
    }
}

/// One divergence a campaign surfaced, already shrunk.
#[derive(Debug, Clone)]
pub struct CampaignFinding {
    /// Index of the generated scenario within the campaign.
    pub index: u64,
    /// The scenario exactly as generated (before shrinking).
    pub original: Scenario,
    /// Shrinking result: minimal scenario + surviving finding.
    pub outcome: ShrinkOutcome,
}

impl CampaignFinding {
    /// Packages the finding as a self-contained repro file.
    pub fn to_repro(&self, campaign_seed: u64) -> ReproFile {
        ReproFile {
            campaign_seed: Some(campaign_seed),
            scenario_index: Some(self.index),
            shrink_steps: self.outcome.steps,
            finding_class: self.outcome.finding.class,
            finding_detail: self.outcome.finding.detail.clone(),
            scenario: self.outcome.scenario.clone(),
        }
    }
}

/// A finished campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The seed the scenario stream was generated from.
    pub seed: u64,
    /// Scenarios executed.
    pub scenarios: u64,
    /// All divergences, in scenario-index order.
    pub findings: Vec<CampaignFinding>,
}

impl CampaignReport {
    /// True when no scenario diverged.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Finding counts per class, most severe class first (zero-count
    /// classes omitted).
    pub fn class_counts(&self) -> Vec<(FindingClass, u64)> {
        FindingClass::ALL
            .iter()
            .filter_map(|&class| {
                let count = self
                    .findings
                    .iter()
                    .filter(|f| f.outcome.finding.class == class)
                    .count() as u64;
                (count > 0).then_some((class, count))
            })
            .collect()
    }
}

/// Runs a campaign: generate, diff, shrink. Scenario `i` is
/// `Scenario::generate(config.seed, i)`; a scenario that produces a
/// finding is shrunk immediately on the same worker.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let indices: Vec<u64> = (0..config.scenarios).collect();
    let shrink_budget = config.shrink_budget;
    let seed = config.seed;
    let findings = Pool::new(config.jobs)
        .map(indices, |index| {
            let scenario = Scenario::generate(seed, index);
            // Generated scenarios are valid by construction; an Err here
            // would itself be a generator bug, surfaced as a panic.
            let finding = run_scenario(&scenario)
                .unwrap_or_else(|e| panic!("generated scenario {index} invalid: {e}"));
            finding.map(|finding| CampaignFinding {
                index,
                outcome: shrink(&scenario, &finding, shrink_budget),
                original: scenario,
            })
        })
        .into_iter()
        .flatten()
        .collect();
    CampaignReport {
        seed: config.seed,
        scenarios: config.scenarios,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaigns_are_deterministic() {
        let config = CampaignConfig {
            seed: 0xABCD,
            scenarios: 4,
            shrink_budget: 10,
            jobs: 2,
        };
        let a = run_campaign(&config);
        let b = run_campaign(&CampaignConfig { jobs: 1, ..config });
        assert_eq!(a.scenarios, b.scenarios);
        assert_eq!(a.findings.len(), b.findings.len());
        for (fa, fb) in a.findings.iter().zip(&b.findings) {
            assert_eq!(fa.index, fb.index);
            assert_eq!(fa.outcome.scenario, fb.outcome.scenario);
            assert_eq!(fa.outcome.finding, fb.outcome.finding);
        }
    }
}
