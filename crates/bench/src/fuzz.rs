//! The differential fuzz campaign driver.
//!
//! Couples the `mapg::fuzz` primitives (scenario generation, the
//! live-vs-reference differ, shrinking, repro files) with the
//! supervised pool: scenarios fan out across workers under optional
//! per-scenario deadlines and an optional campaign wall-clock budget,
//! results come back in index order, and an uninterrupted campaign is
//! a pure function of `(campaign seed, scenario count, shrink budget)`
//! — job count only changes wall-clock time.
//!
//! With a [`Journal`] attached ([`run_campaign_supervised`]), every
//! completed scenario is appended as it finishes (payload: the repro
//! JSON for a divergence, empty for a clean scenario). Resuming from
//! that journal replays completed scenarios verbatim instead of
//! re-executing them, reproducing the same report — and therefore the
//! same repro files and manifest — byte for byte.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mapg::fuzz::{run_scenario, shrink, Finding, FindingClass, ReproFile, Scenario, ShrinkOutcome};
use mapg_pool::{JobOutcome, Supervisor};

use crate::journal::{Journal, JournalEntry};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed for the scenario stream.
    pub seed: u64,
    /// Scenarios to generate and run.
    pub scenarios: u64,
    /// Shrink budget per finding (candidate evaluations; each costs one
    /// live+reference pair).
    pub shrink_budget: u64,
    /// Worker threads.
    pub jobs: usize,
    /// Per-scenario wall-clock deadline. A scenario (including its
    /// shrink) that exceeds it is quarantined as a
    /// [`CampaignFailure`] instead of hanging the campaign.
    pub deadline: Option<Duration>,
    /// Campaign wall-clock budget (`--max-seconds`). Once elapsed, no
    /// new scenario starts; in-flight scenarios finish and the report
    /// stays valid with `executed < scenarios`.
    pub max_seconds: Option<f64>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0x4D41_5047, // "MAPG"
            scenarios: 200,
            shrink_budget: 150,
            jobs: mapg_pool::default_jobs(),
            deadline: None,
            max_seconds: None,
        }
    }
}

/// One divergence a campaign surfaced, already shrunk.
#[derive(Debug, Clone)]
pub struct CampaignFinding {
    /// Index of the generated scenario within the campaign.
    pub index: u64,
    /// The scenario exactly as generated (before shrinking).
    pub original: Scenario,
    /// Shrinking result: minimal scenario + surviving finding.
    pub outcome: ShrinkOutcome,
}

impl CampaignFinding {
    /// Packages the finding as a self-contained repro file.
    pub fn to_repro(&self, campaign_seed: u64) -> ReproFile {
        ReproFile {
            campaign_seed: Some(campaign_seed),
            scenario_index: Some(self.index),
            shrink_steps: self.outcome.steps,
            finding_class: self.outcome.finding.class,
            finding_detail: self.outcome.finding.detail.clone(),
            scenario: self.outcome.scenario.clone(),
        }
    }

    /// Rebuilds a finding from its journaled repro payload. The
    /// shrink-run count is not stored in repro files and comes back as
    /// zero; every field that reaches a deterministic output (repro
    /// JSON, manifest summary) round-trips exactly.
    fn from_repro(repro: &ReproFile, campaign_seed: u64) -> Option<CampaignFinding> {
        let index = repro.scenario_index?;
        Some(CampaignFinding {
            index,
            original: Scenario::generate(campaign_seed, index),
            outcome: ShrinkOutcome {
                scenario: repro.scenario.clone(),
                finding: Finding {
                    class: repro.finding_class,
                    detail: repro.finding_detail.clone(),
                },
                steps: repro.shrink_steps,
                runs: 0,
            },
        })
    }
}

/// A scenario the supervisor quarantined instead of finishing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignFailure {
    /// Index of the scenario within the campaign.
    pub index: u64,
    /// Outcome label: `panicked`, `timed-out`, or `cancelled`.
    pub outcome: String,
    /// Attempts the supervisor made.
    pub attempts: u32,
}

/// A finished campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The seed the scenario stream was generated from.
    pub seed: u64,
    /// Scenarios the campaign was asked for.
    pub scenarios: u64,
    /// Scenarios that completed (fresh or replayed from a journal).
    /// Less than `scenarios` when a `--max-seconds` budget stopped the
    /// campaign early or the supervisor quarantined jobs.
    pub executed: u64,
    /// All divergences, in scenario-index order.
    pub findings: Vec<CampaignFinding>,
    /// Quarantined scenarios (panicked / timed out), in index order.
    pub failures: Vec<CampaignFailure>,
}

impl CampaignReport {
    /// True when every executed scenario completed without divergence
    /// and nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.failures.is_empty()
    }

    /// Finding counts per class, most severe class first (zero-count
    /// classes omitted).
    pub fn class_counts(&self) -> Vec<(FindingClass, u64)> {
        FindingClass::ALL
            .iter()
            .filter_map(|&class| {
                let count = self
                    .findings
                    .iter()
                    .filter(|f| f.outcome.finding.class == class)
                    .count() as u64;
                (count > 0).then_some((class, count))
            })
            .collect()
    }
}

/// What one supervised scenario job produced.
enum RunSlot {
    /// Ran to completion (divergence or clean).
    Done(Box<Option<CampaignFinding>>),
    /// Not started: the campaign budget was already exhausted.
    Skipped,
}

/// Runs a campaign: generate, diff, shrink. Scenario `i` is
/// `Scenario::generate(config.seed, i)`; a scenario that produces a
/// finding is shrunk immediately on the same worker. Equivalent to
/// [`run_campaign_supervised`] without a journal.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    run_campaign_supervised(config, None)
}

/// Runs a campaign under full supervision, optionally journaling every
/// completed scenario for crash-safe resume.
///
/// With `journal`, scenarios already recorded there (digest-verified)
/// are replayed from their stored payload instead of re-executed, and
/// every fresh completion is appended as it lands — a SIGKILL at any
/// instant loses at most the in-flight scenarios. Panics and deadline
/// overruns are quarantined into [`CampaignReport::failures`]; they
/// are never journaled, so they re-run on resume.
pub fn run_campaign_supervised(
    config: &CampaignConfig,
    journal: Option<Arc<Mutex<Journal>>>,
) -> CampaignReport {
    let seed = config.seed;
    let shrink_budget = config.shrink_budget;
    let mut findings: Vec<CampaignFinding> = Vec::new();
    let mut failures: Vec<CampaignFailure> = Vec::new();
    let mut executed: u64 = 0;

    // Replay journaled completions; only the rest run.
    let mut todo: Vec<u64> = Vec::new();
    for index in 0..config.scenarios {
        let entry = journal.as_ref().and_then(|j| {
            let guard = j.lock().expect("journal lock");
            guard
                .completed("scenario", &index.to_string())
                .map(|e| e.payload.clone())
        });
        match entry {
            Some(payload) => {
                executed += 1;
                if !payload.is_empty() {
                    let repro = ReproFile::from_json_text(&payload).unwrap_or_else(|e| {
                        panic!("journaled scenario {index} payload invalid: {e}")
                    });
                    findings.extend(CampaignFinding::from_repro(&repro, seed));
                }
            }
            None => todo.push(index),
        }
    }

    if !todo.is_empty() {
        let jobs = if config.jobs == 0 {
            mapg_pool::default_jobs()
        } else {
            config.jobs
        };
        let budget_end = config
            .max_seconds
            .map(|s| Instant::now() + Duration::from_secs_f64(s.max(0.0)));
        let mut supervisor = Supervisor::new(jobs);
        if let Some(deadline) = config.deadline {
            supervisor = supervisor.with_deadline(deadline);
        }
        let job_journal = journal.clone();
        let reports = supervisor.map_supervised(todo.clone(), move |&index, ctx| {
            if budget_end.is_some_and(|end| Instant::now() >= end) {
                return RunSlot::Skipped;
            }
            let started = Instant::now();
            let scenario = Scenario::generate(seed, index);
            // Generated scenarios are valid by construction; an Err here
            // would itself be a generator bug, surfaced as a panic.
            let finding = run_scenario(&scenario)
                .unwrap_or_else(|e| panic!("generated scenario {index} invalid: {e}"));
            let finding = finding.map(|finding| CampaignFinding {
                index,
                outcome: shrink(&scenario, &finding, shrink_budget),
                original: scenario,
            });
            // A worker abandoned by the deadline monitor sees its token
            // cancelled: its (now unwanted) result must not reach the
            // journal, or resume would disagree with the report.
            if !ctx.token.is_cancelled() {
                if let Some(journal) = &job_journal {
                    let payload = finding
                        .as_ref()
                        .map(|f| f.to_repro(seed).to_json_text())
                        .unwrap_or_default();
                    let entry = JournalEntry::new(
                        "scenario",
                        index.to_string(),
                        seed,
                        ctx.attempt,
                        started.elapsed().as_secs_f64() * 1e3,
                        payload,
                        Vec::new(),
                    );
                    journal
                        .lock()
                        .expect("journal lock")
                        .append(entry)
                        .unwrap_or_else(|e| panic!("{e}"));
                }
            }
            RunSlot::Done(Box::new(finding))
        });

        for (index, report) in todo.into_iter().zip(reports) {
            match report.outcome {
                JobOutcome::Ok(RunSlot::Done(finding)) => {
                    executed += 1;
                    findings.extend(*finding);
                }
                JobOutcome::Ok(RunSlot::Skipped) => {}
                outcome => failures.push(CampaignFailure {
                    index,
                    outcome: outcome.label().to_owned(),
                    attempts: report.attempts,
                }),
            }
        }
    }

    findings.sort_by_key(|f| f.index);
    failures.sort_by_key(|f| f.index);
    CampaignReport {
        seed: config.seed,
        scenarios: config.scenarios,
        executed,
        findings,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaigns_are_deterministic() {
        let config = CampaignConfig {
            seed: 0xABCD,
            scenarios: 4,
            shrink_budget: 10,
            jobs: 2,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&config);
        let b = run_campaign(&CampaignConfig { jobs: 1, ..config });
        assert_eq!(a.scenarios, b.scenarios);
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.findings.len(), b.findings.len());
        assert!(a.failures.is_empty() && b.failures.is_empty());
        for (fa, fb) in a.findings.iter().zip(&b.findings) {
            assert_eq!(fa.index, fb.index);
            assert_eq!(fa.outcome.scenario, fb.outcome.scenario);
            assert_eq!(fa.outcome.finding, fb.outcome.finding);
        }
    }

    #[test]
    fn zero_second_budget_executes_nothing_but_stays_valid() {
        let config = CampaignConfig {
            seed: 0xABCD,
            scenarios: 6,
            shrink_budget: 10,
            jobs: 2,
            max_seconds: Some(0.0),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&config);
        assert_eq!(report.scenarios, 6);
        assert_eq!(report.executed, 0);
        assert!(report.findings.is_empty());
        assert!(report.failures.is_empty());
    }

    /// A resumed campaign replays the journal instead of re-running:
    /// the reports match and the journal gains no entries.
    #[test]
    fn journaled_campaigns_resume_without_reexecution() {
        let dir = std::env::temp_dir().join(format!("mapg-fuzz-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.json");
        std::fs::remove_file(&path).ok();
        let config = CampaignConfig {
            seed: 0xABCD,
            scenarios: 4,
            shrink_budget: 10,
            jobs: 2,
            ..CampaignConfig::default()
        };
        let context = "fuzz test";

        let journal = Arc::new(Mutex::new(Journal::open(&path, context).unwrap()));
        let first = run_campaign_supervised(&config, Some(Arc::clone(&journal)));
        let entries_after_first = journal.lock().unwrap().entries().len();
        assert_eq!(entries_after_first as u64, first.executed);
        drop(journal); // release the advisory lock before reopening

        let journal = Arc::new(Mutex::new(Journal::open(&path, context).unwrap()));
        let second = run_campaign_supervised(&config, Some(Arc::clone(&journal)));
        assert_eq!(
            journal.lock().unwrap().entries().len(),
            entries_after_first,
            "a full journal must replay, not re-execute"
        );
        assert_eq!(first.executed, second.executed);
        assert_eq!(first.findings.len(), second.findings.len());
        for (fa, fb) in first.findings.iter().zip(&second.findings) {
            assert_eq!(
                fa.to_repro(config.seed).to_json_text(),
                fb.to_repro(config.seed).to_json_text(),
                "replayed finding must regenerate the identical repro"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
